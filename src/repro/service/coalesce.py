"""Request coalescing: identical in-flight requests share one computation.

A serving front end sees bursts of identical refine requests (the same
dashboard opened by many users, a retrying client).  Solving each copy is
pure waste — the problem is deterministic — so the coalescer keys every
computation by its canonical request key and lets late arrivals *join* the
in-flight leader instead of starting their own solve.  Results are not cached
past completion: coalescing only collapses concurrency, so a request arriving
after the leader finished computes afresh (sessions keep the heavy state warm,
which is the layer that makes the re-compute cheap).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable, TypeVar

from repro.analysis.debug_locks import guard_mapping
from repro.exceptions import DeadlineExceeded

T = TypeVar("T")


class _InFlight:
    """One leader computation plus the waiters that joined it."""

    __slots__ = ("done", "error", "result")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class RequestCoalescer:
    """Deduplicates concurrent computations by key.

    ``run(key, compute)`` either runs ``compute`` (the *leader* path) or, when
    another thread is already computing the same key, blocks until the leader
    finishes and returns its result.  A leader's exception propagates to every
    waiter (the same exception object — tracebacks point at the leader).

    Failure semantics: a raising leader removes the in-flight entry *before*
    waking the waiters (the ``finally`` below), so the key is never poisoned —
    the next request with the same key starts a fresh computation.  A waiter
    given a ``timeout`` (its own request deadline) that expires before the
    leader finishes raises the typed
    :class:`~repro.exceptions.DeadlineExceeded`; the leader and the other
    waiters are untouched.

    The counters make coalescing observable (and testable): ``started`` is
    the number of computations actually run, ``coalesced`` the number of
    requests that joined an in-flight one.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _InFlight] = guard_mapping(
            {}, self._lock, "RequestCoalescer._inflight"
        )
        self.started = 0
        self.coalesced = 0

    def run(
        self,
        key: Hashable,
        compute: Callable[[], T],
        timeout: float | None = None,
    ) -> T:
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None:
                entry = _InFlight()
                self._inflight[key] = entry
                self.started += 1
                leader = True
            else:
                self.coalesced += 1
                leader = False
        if leader:
            try:
                entry.result = compute()
            except BaseException as error:
                entry.error = error
                raise
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                entry.done.set()
        else:
            if not entry.done.wait(timeout):
                raise DeadlineExceeded(
                    "request deadline expired while waiting on a coalesced "
                    "in-flight computation"
                )
            if entry.error is not None:
                raise entry.error
        return entry.result


__all__ = ["RequestCoalescer"]
