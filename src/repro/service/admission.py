"""Admission control: a bounded queue and concurrency limiter for the engine.

Every refine request passes through :class:`AdmissionController` before any
solve starts.  At most ``max_concurrency`` requests compute at once; up to
``max_queue`` more wait for a slot (bounded by their own deadline and the
``queue_timeout_s`` cap); everything beyond that is *shed* immediately with a
typed, retryable error — the overload-control stance that a fast 429/503 with
``Retry-After`` beats a slow timeout:

* queue full → :class:`~repro.exceptions.QueueFullError` (HTTP 429);
* queued past the budget → :class:`~repro.exceptions.AdmissionTimeoutError`
  (HTTP 503);
* server draining for shutdown → :class:`~repro.exceptions.DrainingError`
  (HTTP 503).

Shutdown is *draining*: :meth:`begin_drain` sheds new arrivals while
:meth:`drain` waits for in-flight work to finish, so a restart never kills a
solve mid-flight.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.core.deadline import Deadline
from repro.exceptions import (
    AdmissionTimeoutError,
    DrainingError,
    QueueFullError,
)

#: Concurrent solves admitted by default (solves share one machine).
DEFAULT_MAX_CONCURRENCY = 4
#: Requests allowed to wait for a slot before shedding starts.
DEFAULT_MAX_QUEUE = 16
#: Longest a request may wait queued when it carries no deadline.
DEFAULT_QUEUE_TIMEOUT_S = 10.0
#: ``Retry-After`` hint attached to shed responses.
DEFAULT_RETRY_AFTER_S = 1.0


class AdmissionController:
    """Counting semaphore + bounded wait queue with typed shedding.

    All state (``_active``, ``_queued``, ``_draining`` and the counters) is
    guarded by ``_lock``, which also backs the condition variable waiters
    block on.  :meth:`admit` is a context manager: the slot is held for the
    duration of the ``with`` body and released (waking one waiter) on exit,
    error or not.
    """

    def __init__(
        self,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        max_queue: int = DEFAULT_MAX_QUEUE,
        queue_timeout_s: float = DEFAULT_QUEUE_TIMEOUT_S,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        if max_queue < 0:
            raise ValueError("max_queue cannot be negative")
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self.queue_timeout_s = queue_timeout_s
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._active = 0
        self._queued = 0
        self._draining = False
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_timeout = 0
        self.shed_draining = 0

    # -- admission --------------------------------------------------------------------

    def _shed(self, error: QueueFullError | AdmissionTimeoutError | DrainingError) -> None:
        """Attach the back-off hint and raise (counters already updated)."""
        error.retry_after_s = self.retry_after_s
        raise error

    def _acquire(self, deadline: Deadline | None) -> None:
        with self._slot_freed:
            if self._draining:
                self.shed_draining += 1
                self._shed(DrainingError("server is draining; retry elsewhere"))
            if self._active < self.max_concurrency:
                self._active += 1
                self.admitted += 1
                return
            if self._queued >= self.max_queue:
                self.shed_queue_full += 1
                self._shed(
                    QueueFullError(
                        f"admission queue is full ({self._queued} waiting, "
                        f"{self._active} active)"
                    )
                )
            self._queued += 1
            # The wait is bounded by whichever is tighter: the queue-wait cap
            # or the request's own end-to-end deadline (both monotonic).
            expires_at = time.monotonic() + self.queue_timeout_s
            if deadline is not None:
                expires_at = min(expires_at, deadline.expires_at)
            try:
                while True:
                    if self._draining:
                        self.shed_draining += 1
                        self._shed(DrainingError("server is draining; retry elsewhere"))
                    if self._active < self.max_concurrency:
                        self._active += 1
                        self.admitted += 1
                        return
                    remaining = expires_at - time.monotonic()
                    if remaining <= 0:
                        self.shed_timeout += 1
                        self._shed(
                            AdmissionTimeoutError(
                                "queued past the request budget without a free slot"
                            )
                        )
                    self._slot_freed.wait(timeout=remaining)
            finally:
                self._queued -= 1

    def _release(self) -> None:
        with self._slot_freed:
            self._active -= 1
            # notify_all, not notify: a drainer waiting for ``active == 0``
            # shares this condition with queued requests, and waking only one
            # waiter could starve it.  The queue is bounded, so this is cheap.
            self._slot_freed.notify_all()

    @contextmanager
    def admit(self, deadline: Deadline | None = None) -> Iterator[None]:
        """Hold one concurrency slot for the duration of the block."""
        self._acquire(deadline)
        try:
            yield
        finally:
            self._release()

    # -- draining shutdown ------------------------------------------------------------

    def begin_drain(self) -> None:
        """Shed new arrivals from now on; in-flight work keeps its slots."""
        with self._slot_freed:
            self._draining = True
            self._slot_freed.notify_all()

    def drain(self, timeout_s: float) -> bool:
        """Wait (up to ``timeout_s``) for in-flight work to finish.

        Returns ``True`` when the controller emptied out — callers that get
        ``False`` proceed with shutdown anyway; daemon worker threads are
        abandoned rather than blocked on forever.
        """
        self.begin_drain()
        waited_until = time.monotonic() + timeout_s
        with self._slot_freed:
            while self._active > 0:
                remaining = waited_until - time.monotonic()
                if remaining <= 0:
                    return False
                self._slot_freed.wait(timeout=remaining)
            return True

    @property
    def draining(self) -> bool:
        with self._slot_freed:
            return self._draining

    # -- observability ----------------------------------------------------------------

    def stats(self) -> dict[str, int | bool]:
        with self._slot_freed:
            return {
                "max_concurrency": self.max_concurrency,
                "max_queue": self.max_queue,
                "active": self._active,
                "queued": self._queued,
                "draining": self._draining,
                "admitted": self.admitted,
                "shed_queue_full": self.shed_queue_full,
                "shed_timeout": self.shed_timeout,
                "shed_draining": self.shed_draining,
            }


__all__ = [
    "DEFAULT_MAX_CONCURRENCY",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_QUEUE_TIMEOUT_S",
    "AdmissionController",
]
