"""Refinement-as-a-service: the long-lived serving layer over the solvers.

The one-shot CLI pays the full warm-up — dataset build, join + sort,
provenance annotation, mask indexes, MILP lowering — on every invocation.
This subpackage keeps that state alive across requests:

* :mod:`repro.service.engine` — :class:`RefinementEngine`, the single facade
  unifying the four solve paths (``naive``, ``naive+prov``, ``milp``/
  ``milp+opt``, ``erica``) behind one :class:`RefineRequest` /
  :class:`RefineResponse` dataclass pair with a stable JSON serialization;
* :mod:`repro.service.session` — :class:`DatasetSession` (per-dataset warm
  state: shared executor, cached annotation, mask-index data, prepared MILPs)
  and :class:`SessionPool` (an LRU over sessions);
* :mod:`repro.service.admission` — :class:`AdmissionController` (bounded
  admission queue + concurrency limiter with typed 429/503 shedding and
  draining shutdown);
* :mod:`repro.service.coalesce` — :class:`RequestCoalescer` (identical
  in-flight requests share one computation);
* :mod:`repro.service.server` — the threaded HTTP/JSON front end behind the
  ``repro serve`` CLI subcommand;
* :mod:`repro.service.shadow` — :class:`ShadowEngine`, the legacy/candidate
  rollout facade with a ``shadow_sample_rate``.
"""

from repro.service.admission import AdmissionController
from repro.service.coalesce import RequestCoalescer
from repro.service.engine import (
    ConstraintSpec,
    RefinementEngine,
    RefineRequest,
    RefineResponse,
)
from repro.service.server import RefinementServer
from repro.service.session import DatasetSession, SessionPool
from repro.service.shadow import ShadowEngine, ShadowReport

__all__ = [
    "AdmissionController",
    "ConstraintSpec",
    "DatasetSession",
    "RefineRequest",
    "RefineResponse",
    "RefinementEngine",
    "RefinementServer",
    "RequestCoalescer",
    "SessionPool",
    "ShadowEngine",
    "ShadowReport",
]
