"""The threaded HTTP/JSON front end behind ``repro serve``.

Endpoints:

* ``POST /refine`` — body is a :class:`~repro.service.engine.RefineRequest`
  in wire form; the response body is the :class:`RefineResponse` dict (the
  same serialization ``repro refine --json`` prints, plus timings).  Invalid
  requests get ``400`` with an ``error`` field; infeasible problems are still
  ``200`` (``feasible: false`` is an answer, not a failure).
* ``GET /health`` — liveness probe.
* ``GET /datasets`` — the registered dataset names.
* ``GET /stats`` — session pool, coalescer and (if enabled) shadow report.

The server is a stock :class:`~http.server.ThreadingHTTPServer`: one thread
per connection, all of them sharing one engine.  Concurrency safety is the
layer below's job (locked executor caches, per-thread sqlite connections,
coalesced duplicate solves) — the handler itself is stateless.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.datasets.registry import DATASET_BUILDERS
from repro.exceptions import RefinementError
from repro.service.engine import RefinementEngine, RefineRequest, RefineResponse
from repro.service.shadow import ShadowEngine


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the engine the server was built around."""

    # Set by RefinementServer when the handler class is bound.
    server_facade: "RefinementServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.server_facade.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/health":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/datasets":
            self._send_json(200, {"datasets": sorted(DATASET_BUILDERS)})
        elif self.path == "/stats":
            self._send_json(200, self.server_facade.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/refine":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            request = RefineRequest.from_dict(payload)
            response = self.server_facade.refine(request)
        except (RefinementError, ValueError, KeyError, TypeError) as error:
            self._send_json(400, {"error": str(error)})
            return
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
            return
        self._send_json(200, response.to_dict())


class RefinementServer:
    """Owns the engine, the listening socket and the serving thread.

    Usable either blocking (:meth:`serve_forever`, the CLI path) or as a
    context manager that serves from a background thread (the test path)::

        with RefinementServer(port=0) as server:
            url = f"http://127.0.0.1:{server.port}/refine"
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8373,
        engine: RefinementEngine | None = None,
        shadow: ShadowEngine | None = None,
        verbose: bool = False,
        default_deadline_s: float | None = None,
    ) -> None:
        self.engine = engine or (shadow.engine if shadow else RefinementEngine())
        self.shadow = shadow
        self.verbose = verbose
        # The serving-level SLA knob: portfolio requests that do not name
        # their own deadline inherit this one.
        self.default_deadline_s = default_deadline_s
        handler = type("BoundHandler", (_Handler,), {"server_facade": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        # daemon_threads: an in-flight solve must not block process exit.
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` for an ephemeral one)."""
        return int(self._httpd.server_address[1])

    def refine(self, request: RefineRequest) -> RefineResponse:
        if (
            request.method == "portfolio"
            and request.deadline_s is None
            and self.default_deadline_s is not None
        ):
            request = dataclasses.replace(request, deadline_s=self.default_deadline_s)
        facade = self.shadow if self.shadow is not None else self.engine
        return facade.refine(request)

    def stats(self) -> dict:
        stats: dict = {
            "default_deadline_s": self.default_deadline_s,
            "requests_served": self.engine.requests_served,
            "coalescer": {
                "started": self.engine.coalescer.started,
                "coalesced": self.engine.coalescer.coalesced,
            },
            "sessions": self.engine.sessions.describe(),
        }
        if self.shadow is not None:
            stats["shadow"] = self.shadow.report_dict()
        return stats

    # -- lifecycle ------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (the CLI path)."""
        self._httpd.serve_forever()

    def start(self) -> "RefinementServer":
        """Serve from a daemon thread and return once the socket is live."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()
        self.engine.sessions.close()

    def __enter__(self) -> "RefinementServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


__all__ = ["RefinementServer"]
