"""The threaded HTTP/JSON front end behind ``repro serve``.

Endpoints:

* ``POST /refine`` — body is a :class:`~repro.service.engine.RefineRequest`
  in wire form; the response body is the :class:`RefineResponse` dict (the
  same serialization ``repro refine --json`` prints, plus timings).  Invalid
  requests get ``400`` with an ``error`` field; infeasible problems are still
  ``200`` (``feasible: false`` is an answer, not a failure).
* ``GET /health`` — liveness probe (reports ``draining`` during shutdown).
* ``GET /datasets`` — the registered dataset names.
* ``GET /stats`` — admission, session pool, coalescer and shadow report.

The server is a stock :class:`~http.server.ThreadingHTTPServer`: one thread
per connection, all of them sharing one engine.  Concurrency safety is the
layer below's job (locked executor caches, per-thread sqlite connections,
coalesced duplicate solves) — the handler itself is stateless.

Failure contract: *every* error answer is typed.  Oversized or malformed
bodies get 413/400 (never a handler traceback), overload sheds with 429/503
plus a ``Retry-After`` hint, expired deadlines answer 504, and anything
unexpected still serializes through
:func:`~repro.exceptions.error_payload` — zero untyped 500s.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.deadline import Deadline
from repro.datasets.registry import DATASET_BUILDERS
from repro.exceptions import (
    BodyTooLargeError,
    MalformedRequestError,
    ReproError,
    error_payload,
    http_status_for,
)
from repro.service.admission import AdmissionController
from repro.service.engine import RefinementEngine, RefineRequest, RefineResponse
from repro.service.shadow import ShadowEngine

#: Default request-body size guard (1 MiB: wire requests are a few KiB).
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: Default grace period for in-flight solves during a draining shutdown.
DEFAULT_DRAIN_TIMEOUT_S = 10.0


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the engine the server was built around."""

    # Set by RefinementServer when the handler class is bound.
    server_facade: "RefinementServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.server_facade.verbose:
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, error: BaseException) -> None:
        """Serialize any error through the typed taxonomy (no raw 500s)."""
        headers: dict[str, str] = {}
        if isinstance(error, ReproError) and error.retry_after_s is not None:
            headers["Retry-After"] = f"{error.retry_after_s:g}"
        self._send_json(http_status_for(error), error_payload(error), headers)

    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/health":
            draining = self.server_facade.admission.draining
            self._send_json(200, {"status": "draining" if draining else "ok"})
        elif self.path == "/datasets":
            self._send_json(200, {"datasets": sorted(DATASET_BUILDERS)})
        elif self.path == "/stats":
            self._send_json(200, self.server_facade.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _read_body(self) -> bytes:
        """The request body, guarded against missing/oversized lengths."""
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise MalformedRequestError("missing Content-Length header")
        try:
            length = int(raw_length)
        except ValueError:
            raise MalformedRequestError(
                f"invalid Content-Length {raw_length!r}"
            ) from None
        limit = self.server_facade.max_body_bytes
        if length < 0:
            raise MalformedRequestError(f"invalid Content-Length {length}")
        if length > limit:
            raise BodyTooLargeError(
                f"request body of {length} bytes exceeds the {limit}-byte limit"
            )
        return self.rfile.read(length)

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/refine":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            body = self._read_body()
            try:
                payload = json.loads(body or b"{}")
            except json.JSONDecodeError as error:
                raise MalformedRequestError(
                    f"request body is not valid JSON: {error}"
                ) from None
            if not isinstance(payload, dict):
                raise MalformedRequestError("request body must be a JSON object")
            request = RefineRequest.from_dict(payload)
            response = self.server_facade.refine(request)
        except ReproError as error:
            self._send_error(error)
            return
        except (ValueError, KeyError, TypeError) as error:
            # Defensive: wire-parsing slips that are not yet typed errors.
            self._send_json(400, error_payload(MalformedRequestError(str(error))))
            return
        except Exception as error:  # pragma: no cover - defensive
            self._send_error(error)
            return
        self._send_json(200, response.to_dict())


class RefinementServer:
    """Owns the engine, the listening socket and the serving thread.

    Usable either blocking (:meth:`serve_forever`, the CLI path) or as a
    context manager that serves from a background thread (the test path)::

        with RefinementServer(port=0) as server:
            url = f"http://127.0.0.1:{server.port}/refine"
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8373,
        engine: RefinementEngine | None = None,
        shadow: ShadowEngine | None = None,
        verbose: bool = False,
        default_deadline_s: float | None = None,
        admission: AdmissionController | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
    ) -> None:
        self.engine = engine or (shadow.engine if shadow else RefinementEngine())
        self.shadow = shadow
        self.verbose = verbose
        # The serving-level SLA knob: requests that do not name their own
        # deadline inherit this one end-to-end (queueing included).
        self.default_deadline_s = default_deadline_s
        self.admission = admission or AdmissionController()
        self.max_body_bytes = max_body_bytes
        self.drain_timeout_s = drain_timeout_s
        handler = type("BoundHandler", (_Handler,), {"server_facade": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        # daemon_threads: an in-flight solve must not block process exit.
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` for an ephemeral one)."""
        return int(self._httpd.server_address[1])

    def refine(self, request: RefineRequest) -> RefineResponse:
        if request.deadline_s is None and self.default_deadline_s is not None:
            request = dataclasses.replace(request, deadline_s=self.default_deadline_s)
        # The end-to-end clock starts here, before admission: time spent
        # queued for a slot is part of the request's SLA, not free.
        deadline = (
            Deadline.after(request.deadline_s) if request.deadline_s is not None else None
        )
        facade = self.shadow if self.shadow is not None else self.engine
        with self.admission.admit(deadline):
            return facade.refine(request, deadline=deadline)

    def stats(self) -> dict:
        stats: dict = {
            "default_deadline_s": self.default_deadline_s,
            "requests_served": self.engine.requests_served,
            "admission": self.admission.stats(),
            "coalescer": {
                "started": self.engine.coalescer.started,
                "coalesced": self.engine.coalescer.coalesced,
            },
            "sessions": self.engine.sessions.describe(),
        }
        if self.shadow is not None:
            stats["shadow"] = self.shadow.report_dict()
        return stats

    # -- lifecycle ------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (the CLI path)."""
        self._httpd.serve_forever()

    def start(self) -> "RefinementServer":
        """Serve from a daemon thread and return once the socket is live."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Drain then stop: finish in-flight work, shed new arrivals typed.

        ``begin_drain`` flips the admission gate (new requests get a typed
        503 immediately) while requests already holding a slot run to
        completion, bounded by ``drain_timeout_s``.
        """
        self.admission.begin_drain()
        self.admission.drain(self.drain_timeout_s)
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()
        self.engine.sessions.close()

    def __enter__(self) -> "RefinementServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


__all__ = [
    "DEFAULT_DRAIN_TIMEOUT_S",
    "DEFAULT_MAX_BODY_BYTES",
    "RefinementServer",
]
