"""The engine facade: one request/response pair over all four solve paths.

:class:`RefinementEngine` is the single entry point the CLI ``refine``
command, the HTTP server and the shadow rollout facade all call.  A
:class:`RefineRequest` names a dataset configuration, a constraint set and a
method (``naive``, ``naive+prov``, ``milp``, ``milp+opt``, ``erica`` or the
deadline-bounded ``portfolio`` race); the
engine resolves the dataset to a warm :class:`~repro.service.session
.DatasetSession`, dispatches to the matching solver with the session's shared
state, and returns a :class:`RefineResponse` whose JSON serialization is
stable: the CLI's ``--json`` output and the server's response body are the
same bytes for the same request (timings excluded — see
:meth:`RefineResponse.canonical_dict`).

Identical in-flight requests are coalesced into one computation
(:class:`~repro.service.coalesce.RequestCoalescer`); the engine's
``solves_started`` counter exposes how many solves actually ran.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.core.constraints import (
    BoundType,
    CardinalityConstraint,
    ConstraintSet,
    Group,
)
from repro.core.distances import get_distance
from repro.core.erica import EricaBaseline
from repro.core.naive import NaiveProvenanceSearch, NaiveSearch
from repro.core.portfolio import (
    DEFAULT_ENGINES,
    PORTFOLIO_METHODS,
    EngineSpec,
    PortfolioSolver,
)
from repro.core.deadline import Deadline, current_deadline, deadline_scope
from repro.core.solver import RefinementSolver
from repro.datasets.registry import DATASET_BUILDERS
from repro.exceptions import InfeasibleError, RefinementError, SolverError
from repro.relational.sqlgen import render_sql
from repro.service.coalesce import RequestCoalescer
from repro.service.session import DatasetSession, SessionPool

#: Methods the facade dispatches on, in documentation order.
METHODS = ("naive", "naive+prov", "milp", "milp+opt", "erica", "portfolio")

#: Dataset-builder parameters a request may override.
DATASET_PARAMETERS = ("num_rows", "scale_factor", "seed")

#: Wall-clock cap on an exhaustive fallback solve when the degraded request
#: carries neither a time limit nor a deadline (never run unbounded).
DEGRADED_FALLBACK_BUDGET_S = 30.0


@dataclass(frozen=True)
class ConstraintSpec:
    """One cardinality constraint in wire form.

    ``kind`` is ``"at_least"`` or ``"at_most"``; ``group`` maps categorical
    attributes to required values.  Conditions are stored sorted so equal
    constraints always serialize (and hash) identically.
    """

    kind: str
    bound: int
    k: int
    group: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if self.kind not in ("at_least", "at_most"):
            raise RefinementError(
                f"unknown constraint kind {self.kind!r}; "
                "use 'at_least' or 'at_most'"
            )
        object.__setattr__(self, "group", tuple(sorted(self.group)))
        if not self.group:
            raise RefinementError("a constraint group needs at least one condition")

    @classmethod
    def from_constraint(cls, constraint: CardinalityConstraint) -> "ConstraintSpec":
        kind = "at_least" if constraint.bound_type is BoundType.LOWER else "at_most"
        return cls(
            kind=kind,
            bound=constraint.bound,
            k=constraint.k,
            group=tuple(
                (str(attribute), str(value))
                for attribute, value in constraint.group.condition_map.items()
            ),
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "ConstraintSpec":
        return cls(
            kind=str(data["kind"]),
            bound=int(data["bound"]),
            k=int(data["k"]),
            group=tuple((str(a), str(v)) for a, v in dict(data["group"]).items()),
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "bound": self.bound,
            "k": self.k,
            "group": dict(self.group),
        }

    def to_constraint(self) -> CardinalityConstraint:
        bound_type = BoundType.LOWER if self.kind == "at_least" else BoundType.UPPER
        return CardinalityConstraint(
            group=Group(dict(self.group)),
            k=self.k,
            bound=self.bound,
            bound_type=bound_type,
        )


@dataclass(frozen=True)
class RefineRequest:
    """One refinement problem in wire form.

    ``dataset_parameters`` feeds the dataset builder (``num_rows``,
    ``scale_factor``, ``seed``); everything else mirrors the solver
    constructor arguments.  :meth:`cache_key` is the canonical identity used
    for request coalescing and session-level MILP caching.
    """

    dataset: str
    constraints: tuple[ConstraintSpec, ...]
    dataset_parameters: tuple[tuple[str, object], ...] = ()
    epsilon: float = 0.5
    distance: str = "pred"
    method: str = "milp+opt"
    backend: str = "auto"
    time_limit: float | None = None
    jobs: int | None = None
    max_candidates: int | None = None
    num_solutions: int = 1
    output_size: int | None = None
    #: End-to-end wall-clock SLA of the request, in seconds.  Required for
    #: ``method="portfolio"`` (the race budget); optional everywhere else,
    #: where it clamps the solver's ``time_limit`` and bounds queueing,
    #: session acquisition and store retries.
    deadline_s: float | None = None
    #: Engine methods a ``portfolio`` request races (empty = the default
    #: portfolio).
    engines: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "constraints", tuple(self.constraints))
        object.__setattr__(
            self, "dataset_parameters", tuple(sorted(dict(self.dataset_parameters).items()))
        )
        object.__setattr__(self, "engines", tuple(str(name) for name in self.engines))

    def validate(self) -> None:
        if self.dataset not in DATASET_BUILDERS:
            raise RefinementError(
                f"unknown dataset {self.dataset!r}; "
                f"available: {sorted(DATASET_BUILDERS)}"
            )
        if self.method not in METHODS:
            raise RefinementError(
                f"unknown method {self.method!r}; available: {list(METHODS)}"
            )
        if not self.constraints:
            raise RefinementError("a refine request needs at least one constraint")
        for name, _ in self.dataset_parameters:
            if name not in DATASET_PARAMETERS:
                raise RefinementError(
                    f"unknown dataset parameter {name!r}; "
                    f"available: {list(DATASET_PARAMETERS)}"
                )
        if self.method == "erica" and self.distance != "pred":
            raise RefinementError(
                "the erica baseline minimises the predicate distance; "
                "use distance='pred'"
            )
        if self.num_solutions < 1:
            raise RefinementError("num_solutions must be at least 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise RefinementError(
                "deadline_s must be positive (the request's wall-clock SLA)"
            )
        if self.method == "portfolio":
            if self.deadline_s is None:
                raise RefinementError(
                    "method='portfolio' needs a positive deadline_s "
                    "(the race's wall-clock SLA)"
                )
            for name in self.engines:
                if name not in PORTFOLIO_METHODS:
                    raise RefinementError(
                        f"unknown portfolio engine {name!r}; "
                        f"available: {list(PORTFOLIO_METHODS)}"
                    )
        elif self.engines:
            raise RefinementError("engines is only valid with method='portfolio'")

    # -- identity -------------------------------------------------------------------

    def cache_key(self) -> tuple:
        """Canonical identity for coalescing: identical requests share one solve."""
        return (
            self.dataset,
            self.dataset_parameters,
            self.constraints,
            self.epsilon,
            self.distance,
            self.method,
            self.backend,
            self.time_limit,
            self.jobs,
            self.max_candidates,
            self.num_solutions,
            self.output_size,
            # A 0.1s and a 30s race are different computations: the deadline
            # (and the engine list) must split the coalescing key.
            self.deadline_s,
            self.engines,
        )

    def milp_key(self) -> tuple:
        """Identity of the *prepared model* (solve-time knobs excluded)."""
        return (self.constraints, self.epsilon, self.distance, self.method)

    def constraint_set(self) -> ConstraintSet:
        return ConstraintSet(spec.to_constraint() for spec in self.constraints)

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> dict:
        data: dict = {
            "dataset": self.dataset,
            "constraints": [spec.to_dict() for spec in self.constraints],
            "epsilon": self.epsilon,
            "distance": self.distance,
            "method": self.method,
            "backend": self.backend,
        }
        if self.dataset_parameters:
            data["dataset_parameters"] = dict(self.dataset_parameters)
        for name in ("time_limit", "jobs", "max_candidates", "output_size", "deadline_s"):
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        if self.num_solutions != 1:
            data["num_solutions"] = self.num_solutions
        if self.engines:
            data["engines"] = list(self.engines)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "RefineRequest":
        try:
            constraints = tuple(
                ConstraintSpec.from_dict(spec) for spec in data["constraints"]
            )
        except KeyError:
            raise RefinementError("refine request is missing 'constraints'") from None
        try:
            dataset = str(data["dataset"])
        except KeyError:
            raise RefinementError("refine request is missing 'dataset'") from None
        parameters = dict(data.get("dataset_parameters") or {})
        return cls(
            dataset=dataset,
            constraints=constraints,
            dataset_parameters=tuple(parameters.items()),
            epsilon=float(data.get("epsilon", 0.5)),
            distance=str(data.get("distance", "pred")),
            method=str(data.get("method", "milp+opt")),
            backend=str(data.get("backend", "auto")),
            time_limit=(
                None if data.get("time_limit") is None else float(data["time_limit"])
            ),
            jobs=None if data.get("jobs") is None else int(data["jobs"]),
            max_candidates=(
                None
                if data.get("max_candidates") is None
                else int(data["max_candidates"])
            ),
            num_solutions=int(data.get("num_solutions", 1)),
            output_size=(
                None if data.get("output_size") is None else int(data["output_size"])
            ),
            deadline_s=(
                None if data.get("deadline_s") is None else float(data["deadline_s"])
            ),
            engines=tuple(str(name) for name in data.get("engines") or ()),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


@dataclass
class RefineResponse:
    """The unified outcome of one refine request, engine-agnostic.

    ``engine`` names the solve path family (``"milp"``, ``"exhaustive"`` or
    ``"erica"``); ``statistics`` carries the family-specific extras (model
    statistics, candidates examined, …).  ``refinements`` lists Erica's
    enumerated solutions (empty elsewhere).  Timings live under ``timings``
    and are excluded from :meth:`canonical_dict`, which is the byte-stable
    form: a server response and a one-shot CLI run of the same request
    canonicalise to identical JSON.
    """

    request: RefineRequest
    engine: str
    method: str
    distance_code: str
    status: str
    feasible: bool
    distance_value: float | None = None
    deviation: float | None = None
    objective_value: float | None = None
    refinement: str | None = None
    refined_sql: str | None = None
    constraint_counts: dict[str, int] = field(default_factory=dict)
    statistics: dict = field(default_factory=dict)
    refinements: list[dict] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    #: Portfolio provenance (winner, per-engine statuses, bounds timeline).
    #: Race-dependent, so — like timings — excluded from the canonical form.
    race: dict = field(default_factory=dict)

    def canonical_dict(self) -> dict:
        """The deterministic part of the response (no timings)."""
        return {
            "request": self.request.to_dict(),
            "engine": self.engine,
            "method": self.method,
            "distance_code": self.distance_code,
            "status": self.status,
            "feasible": self.feasible,
            "distance_value": self.distance_value,
            "deviation": self.deviation,
            "objective_value": self.objective_value,
            "refinement": self.refinement,
            "refined_sql": self.refined_sql,
            "constraint_counts": dict(self.constraint_counts),
            "statistics": dict(self.statistics),
            "refinements": list(self.refinements),
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical_dict(), sort_keys=True)

    def to_dict(self) -> dict:
        data = self.canonical_dict()
        data["timings"] = dict(self.timings)
        if self.race:
            data["race"] = dict(self.race)
        return data

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping) -> "RefineResponse":
        return cls(
            request=RefineRequest.from_dict(data["request"]),
            engine=str(data["engine"]),
            method=str(data["method"]),
            distance_code=str(data["distance_code"]),
            status=str(data["status"]),
            feasible=bool(data["feasible"]),
            distance_value=data.get("distance_value"),
            deviation=data.get("deviation"),
            objective_value=data.get("objective_value"),
            refinement=data.get("refinement"),
            refined_sql=data.get("refined_sql"),
            constraint_counts=dict(data.get("constraint_counts") or {}),
            statistics=dict(data.get("statistics") or {}),
            refinements=list(data.get("refinements") or []),
            timings=dict(data.get("timings") or {}),
            race=dict(data.get("race") or {}),
        )


class RefinementEngine:
    """The facade every front end calls: ``refine(request) -> response``.

    Owns (or borrows) a :class:`SessionPool` for warm per-dataset state and a
    :class:`RequestCoalescer` so identical concurrent requests share one
    computation.
    """

    def __init__(
        self,
        sessions: SessionPool | None = None,
        coalescer: RequestCoalescer | None = None,
    ) -> None:
        self.sessions = sessions or SessionPool()
        self.coalescer = coalescer or RequestCoalescer()
        self.requests_served = 0

    @property
    def solves_started(self) -> int:
        """Computations actually run (requests minus coalesced joins)."""
        return self.coalescer.started

    def refine(
        self, request: RefineRequest, deadline: Deadline | None = None
    ) -> RefineResponse:
        """Solve ``request``, bounded end-to-end by ``deadline``.

        Without an explicit ``deadline`` (the serving layer passes the one it
        started at admission time, which already accounts for queueing), a
        request carrying ``deadline_s`` gets a fresh budget here so the CLI
        path is bounded too.  The deadline travels ambiently
        (:func:`~repro.core.deadline.deadline_scope`) to every layer below:
        session acquisition, solver cutoffs, store retries.  A coalesced
        waiter waits at most its own remaining budget — a slow leader cannot
        hold it past its SLA.
        """
        request.validate()
        self.requests_served += 1
        if deadline is None and request.deadline_s is not None:
            deadline = Deadline.after(request.deadline_s)
        timeout = None if deadline is None else deadline.remaining()

        def compute() -> RefineResponse:
            with deadline_scope(deadline):
                return self._refine(request)

        return self.coalescer.run(request.cache_key(), compute, timeout=timeout)

    # -- dispatch -------------------------------------------------------------------

    @staticmethod
    def _clamped_limit(limit: float | None, what: str) -> float | None:
        """``limit`` bounded by the ambient deadline (which must not be spent)."""
        deadline = current_deadline()
        if deadline is None:
            return limit
        deadline.require(what)
        return deadline.clamp(limit)

    def _refine(self, request: RefineRequest) -> RefineResponse:
        ambient = current_deadline()
        if ambient is not None:
            # Queueing may have eaten the whole budget; fail before the
            # (potentially expensive) session build, not after.
            ambient.require("session acquisition")
        session = self.sessions.get(request.dataset, dict(request.dataset_parameters))
        if request.method == "portfolio":
            return self._refine_portfolio(session, request)
        if request.method in ("milp", "milp+opt"):
            return self._refine_milp(session, request)
        if request.method in ("naive", "naive+prov"):
            return self._refine_exhaustive(session, request)
        return self._refine_erica(session, request)

    def _refine_portfolio(
        self, session: DatasetSession, request: RefineRequest
    ) -> RefineResponse:
        assert request.deadline_s is not None  # validate() enforced this
        # The race budget is the *remaining* end-to-end budget: queueing and
        # session acquisition already spent part of the SLA.
        race_budget = self._clamped_limit(request.deadline_s, "the portfolio race")
        assert race_budget is not None
        specs = tuple(
            EngineSpec(
                method=name,
                backend=request.backend,
                jobs=request.jobs,
                max_candidates=request.max_candidates,
            )
            for name in (request.engines or DEFAULT_ENGINES)
        )
        solver = PortfolioSolver(
            session.database,
            session.query,
            request.constraint_set(),
            epsilon=request.epsilon,
            distance=request.distance,
            engines=specs,
            deadline=race_budget,
            executor=session.executor,
            annotated=session.annotated(),
            mask_data=session.mask_data(),
        )
        result = solver.solve()
        response = RefineResponse(
            request=request,
            engine="portfolio",
            method=result.method,
            distance_code=result.distance_code,
            status=result.status,
            feasible=result.feasible,
            statistics={
                "engines": [spec.label for spec in specs],
                # The *requested* SLA, not the clamped race budget: the
                # canonical response must stay byte-stable across serving
                # conditions (queue wait varies run to run).
                "deadline_s": request.deadline_s,
            },
            timings={"elapsed_seconds": result.elapsed},
            race=result.race_record(),
        )
        if result.feasible:
            assert result.refinement is not None and result.refined_query is not None
            response.distance_value = result.distance_value
            response.deviation = result.deviation
            response.refinement = result.refinement.describe(session.query)
            response.refined_sql = render_sql(result.refined_query)
            response.constraint_counts = dict(result.constraint_counts)
        return response

    def _refine_milp(self, session: DatasetSession, request: RefineRequest) -> RefineResponse:
        """MILP solve with graceful degradation to the exhaustive engine.

        A failing backend (:class:`SolverError`, e.g. an injected or real
        crash inside the solver) is not the request's fault: the same problem
        is re-dispatched to the matching exhaustive baseline (``milp`` →
        ``naive``, ``milp+opt`` → ``naive+prov``) under the remaining budget,
        and the degradation is recorded in ``statistics["degraded"]``.  A
        *proven-infeasible* model is an answer, not a failure — it never
        degrades.
        """
        try:
            return self._refine_milp_direct(session, request)
        except InfeasibleError:
            raise
        except SolverError as error:
            fallback = "naive+prov" if request.method == "milp+opt" else "naive"
            budget = request.time_limit
            if budget is None and current_deadline() is None:
                # Never run the fallback unbounded on an un-deadlined request.
                budget = DEGRADED_FALLBACK_BUDGET_S
            degraded = replace(request, method=fallback, time_limit=budget)
            response = self._refine_exhaustive(session, degraded)
            # The wire response keeps the *original* request identity.
            response.request = request
            response.statistics["degraded"] = {
                "from": request.method,
                "to": fallback,
                "reason": str(error),
                "code": error.error_code,
            }
            return response

    def _refine_milp_direct(
        self, session: DatasetSession, request: RefineRequest
    ) -> RefineResponse:
        solver = RefinementSolver(
            session.database,
            session.query,
            request.constraint_set(),
            epsilon=request.epsilon,
            distance=request.distance,
            method=request.method,
            backend=request.backend,
            time_limit=self._clamped_limit(request.time_limit, "the MILP solve"),
            executor=session.executor,
            annotated=session.annotated(),
        )
        prepared = session.prepared_milp(request.milp_key(), solver.prepare)
        result = solver.solve(prepared=prepared)
        response = RefineResponse(
            request=request,
            engine="milp",
            method=result.method,
            distance_code=result.distance_code,
            status="ok" if result.feasible else "infeasible",
            feasible=result.feasible,
            statistics=dict(result.model_statistics),
            timings={
                "setup_seconds": result.setup_seconds,
                "solve_seconds": result.solve_seconds,
                "total_seconds": result.total_seconds,
            },
        )
        if result.feasible:
            assert result.refinement is not None  # feasible => a refinement exists
            response.distance_value = result.distance_value
            response.deviation = result.deviation
            response.objective_value = result.objective_value
            response.refinement = result.refinement.describe(session.query)
            response.refined_sql = result.sql
            response.constraint_counts = dict(result.constraint_counts)
        return response

    def _refine_exhaustive(
        self, session: DatasetSession, request: RefineRequest
    ) -> RefineResponse:
        search_class = (
            NaiveProvenanceSearch if request.method == "naive+prov" else NaiveSearch
        )
        kwargs: dict[str, Any] = dict(
            epsilon=request.epsilon,
            distance=request.distance,
            timeout=self._clamped_limit(request.time_limit, "the exhaustive search"),
            max_candidates=request.max_candidates,
            jobs=request.jobs,
            executor=session.executor,
            annotated=session.annotated(),
        )
        if search_class is NaiveProvenanceSearch:
            kwargs["mask_data"] = session.mask_data()
        search = search_class(
            session.database, session.query, request.constraint_set(), **kwargs
        )
        result = search.search()
        status = "timeout" if result.timed_out else (
            "ok" if result.feasible else "infeasible"
        )
        response = RefineResponse(
            request=request,
            engine="exhaustive",
            method=result.method,
            distance_code=result.distance_code,
            status=status,
            feasible=result.feasible,
            statistics={
                "candidates_examined": result.candidates_examined,
                "space_size": result.space_size,
                "exhausted": result.exhausted,
                "jobs": search.jobs,
            },
            timings={
                "setup_seconds": result.setup_seconds,
                "search_seconds": result.search_seconds,
                "total_seconds": result.total_seconds,
            },
        )
        if result.feasible:
            assert result.refinement is not None and result.refined_query is not None
            response.distance_value = result.distance_value
            response.deviation = result.deviation
            response.refinement = result.refinement.describe(session.query)
            response.refined_sql = render_sql(result.refined_query)
        return response

    def _refine_erica(self, session: DatasetSession, request: RefineRequest) -> RefineResponse:
        baseline = EricaBaseline(
            session.database,
            session.query,
            request.constraint_set(),
            output_size=request.output_size,
            backend=request.backend,
            executor=session.executor,
            annotated=session.annotated(),
        )
        result = baseline.solve(
            num_solutions=request.num_solutions,
            time_limit=self._clamped_limit(request.time_limit, "the erica solve"),
        )
        response = RefineResponse(
            request=request,
            engine="erica",
            method="erica",
            distance_code=get_distance("pred").code,
            status="ok" if result.feasible else "infeasible",
            feasible=result.feasible,
            statistics=dict(result.model_statistics),
            refinements=[
                {
                    "refinement": entry.refinement.describe(session.query),
                    "refined_sql": render_sql(entry.refined_query),
                    "distance_value": entry.distance_value,
                    "output_size": entry.output_size,
                }
                for entry in result.refinements
            ],
            timings={
                "setup_seconds": result.setup_seconds,
                "solve_seconds": result.solve_seconds,
                "total_seconds": result.total_seconds,
            },
        )
        best = result.best
        if best is not None:
            response.distance_value = best.distance_value
            response.refinement = best.refinement.describe(session.query)
            response.refined_sql = render_sql(best.refined_query)
        return response


def parse_constraint_specs(
    at_least: Sequence[str] | None, at_most: Sequence[str] | None
) -> tuple[ConstraintSpec, ...]:
    """CLI-style ``BOUND@K:Attr=Value`` strings into wire-form specs."""
    from repro.cli import parse_constraint

    specs = [
        ConstraintSpec.from_constraint(parse_constraint(text, "lower"))
        for text in at_least or []
    ]
    specs.extend(
        ConstraintSpec.from_constraint(parse_constraint(text, "upper"))
        for text in at_most or []
    )
    return tuple(specs)


__all__ = [
    "ConstraintSpec",
    "METHODS",
    "RefineRequest",
    "RefineResponse",
    "RefinementEngine",
    "parse_constraint_specs",
]
