"""Warm per-dataset state and the LRU pool of sessions.

A :class:`DatasetSession` owns everything expensive a dataset accumulates
across refine requests:

* the built :class:`~repro.datasets.registry.DatasetBundle` (the data load);
* one shared, thread-safe :class:`~repro.relational.QueryExecutor` — its
  per-query-shape join/ordered-join caches (and, on the sqlite backend, the
  per-thread connection pool over the persisted store) serve every request;
* the provenance annotation of ``~Q(D)`` (computed once, read by all four
  engines);
* the immutable :class:`~repro.core.MaskIndexData` half of the exhaustive
  baselines' candidate mask index (each search wraps it in its own mutable
  sweep caches);
* prepared MILPs (:class:`~repro.core.PreparedProblem`) keyed by problem, so
  a repeated request re-solves from the cached lowered standard form instead
  of re-running setup.

:class:`SessionPool` bounds the number of live sessions with LRU eviction;
an evicted session's sqlite connections are closed.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Callable, Mapping

from repro.analysis.debug_locks import guard_mapping
from repro.core.naive import MaskIndexData
from repro.core.solver import PreparedProblem
from repro.datasets import load_dataset
from repro.provenance.lineage import AnnotatedDatabase, annotate
from repro.relational.database import Database
from repro.relational.executor import QueryExecutor
from repro.relational.query import SPJQuery


def session_key(dataset: str, parameters: Mapping | None = None) -> tuple:
    """Canonical identity of a dataset configuration (used by pool and server)."""
    return (dataset, tuple(sorted((parameters or {}).items())))


class DatasetSession:
    """The warm state of one dataset configuration.

    Thread-safe: cache construction is serialized behind one lock, and every
    cached object is immutable (or, for the executor, internally locked), so
    concurrent refine requests read them freely.  Solves themselves run
    outside the session lock.
    """

    #: Prepared MILPs kept per session; each holds a lowered standard form,
    #: so the cache is bounded to keep memory proportional to distinct
    #: problems actually in rotation.
    MILP_CACHE_SIZE = 32

    def __init__(
        self,
        dataset: str,
        parameters: Mapping | None = None,
        executor_backend: str | None = None,
        executor_db: str | None = None,
    ) -> None:
        self.dataset = dataset
        self.parameters = dict(parameters or {})
        self.bundle = load_dataset(dataset, **self.parameters)
        self.executor = QueryExecutor(
            self.bundle.database, backend=executor_backend, db_path=executor_db
        )
        self._lock = threading.RLock()
        self._annotated: AnnotatedDatabase | None = None
        self._mask_data: MaskIndexData | None = None
        self._mask_data_built = False
        self._prepared_milps: OrderedDict[tuple, PreparedProblem] = guard_mapping(
            OrderedDict(), self._lock, "DatasetSession._prepared_milps"
        )
        self.warmed = False

    @property
    def key(self) -> tuple:
        return session_key(self.dataset, self.parameters)

    @property
    def database(self) -> Database:
        return self.bundle.database

    @property
    def query(self) -> SPJQuery:
        return self.bundle.query

    # -- warm state ---------------------------------------------------------------

    def warm(self) -> "DatasetSession":
        """Pay the dataset's warm-up cost up front (idempotent).

        Evaluates the query (filling the executor's join/sort caches — and,
        on the sqlite backend, loading the store), annotates ``~Q(D)`` and
        builds the shared mask-index data.
        """
        with self._lock:
            self.executor.evaluate(self.bundle.query)
            self.annotated()
            self.mask_data()
            self.warmed = True
        return self

    def annotated(self) -> AnnotatedDatabase:
        """The provenance annotation of ``~Q(D)``, computed once per session."""
        with self._lock:
            if self._annotated is None:
                self._annotated = annotate(
                    self.bundle.query, self.bundle.database, executor=self.executor
                )
            return self._annotated

    def mask_data(self) -> MaskIndexData | None:
        """Shared (immutable) candidate-mask arrays for the exhaustive engines.

        ``None`` when the columnar fast path is unavailable (no NumPy); the
        searches then fall back to their own row-wise evaluation.
        """
        with self._lock:
            if not self._mask_data_built:
                unfiltered = self.executor.evaluate_unfiltered(self.bundle.query)
                self._mask_data = MaskIndexData.build(
                    self.bundle.query, unfiltered.relation
                )
                self._mask_data_built = True
            return self._mask_data

    def prepared_milp(
        self, key: tuple, factory: Callable[[], PreparedProblem]
    ) -> PreparedProblem:
        """The prepared MILP for one problem key, built on first use (LRU).

        The build runs under the session lock: concurrent *distinct* problems
        serialize their setup (solves still run concurrently), and concurrent
        *identical* problems are already collapsed by the coalescer before
        they reach the session.
        """
        with self._lock:
            prepared = self._prepared_milps.get(key)
            if prepared is not None:
                self._prepared_milps.move_to_end(key)
                return prepared
            prepared = factory()
            self._prepared_milps[key] = prepared
            while len(self._prepared_milps) > self.MILP_CACHE_SIZE:
                self._prepared_milps.popitem(last=False)
            return prepared

    def close(self) -> None:
        """Release per-session resources (pooled sqlite connections)."""
        self.executor.close_connections()

    def describe(self) -> dict:
        """Session summary for the server's stats endpoint."""
        with self._lock:
            return {
                "dataset": self.dataset,
                "parameters": dict(self.parameters),
                "warmed": self.warmed,
                "annotated": self._annotated is not None,
                "prepared_milps": len(self._prepared_milps),
            }


class SessionPool:
    """An LRU cache of :class:`DatasetSession`\\ s, keyed by configuration.

    ``executor_db_dir`` (sqlite backend only) gives every session its own
    persisted database file — the store's content fingerprints assume one
    dataset configuration per file, so files are keyed by a digest of the
    session key.
    """

    def __init__(
        self,
        capacity: int = 4,
        executor_backend: str | None = None,
        executor_db_dir: str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"session pool capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.executor_backend = executor_backend
        self.executor_db_dir = executor_db_dir
        self._lock = threading.RLock()
        self._sessions: OrderedDict[tuple, DatasetSession] = guard_mapping(
            OrderedDict(), self._lock, "SessionPool._sessions"
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _db_path(self, key: tuple) -> str | None:
        if self.executor_db_dir is None:
            return None
        os.makedirs(self.executor_db_dir, exist_ok=True)
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:12]
        return os.path.join(self.executor_db_dir, f"{key[0]}-{digest}.sqlite")

    def get(
        self, dataset: str, parameters: Mapping | None = None, warm: bool = False
    ) -> DatasetSession:
        """The (created-on-miss) session for a dataset configuration."""
        key = session_key(dataset, parameters)
        evicted: list[DatasetSession] = []
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
                session = DatasetSession(
                    dataset,
                    parameters,
                    executor_backend=self.executor_backend,
                    executor_db=self._db_path(key),
                )
                self._sessions[key] = session
                while len(self._sessions) > self.capacity:
                    _, stale = self._sessions.popitem(last=False)
                    evicted.append(stale)
                    self.evictions += 1
        for stale in evicted:
            stale.close()
        if warm and not session.warmed:
            session.warm()
        return session

    def adopt(self, session: DatasetSession) -> DatasetSession:
        """Register an externally built session (the one-shot CLI path).

        Lets a caller control the exact executor configuration (e.g. a
        ``--executor-db`` file path) while still serving it through the pool.
        """
        evicted: list[DatasetSession] = []
        with self._lock:
            stale = self._sessions.pop(session.key, None)
            if stale is not None and stale is not session:
                evicted.append(stale)
            self._sessions[session.key] = session
            while len(self._sessions) > self.capacity:
                _, old = self._sessions.popitem(last=False)
                evicted.append(old)
                self.evictions += 1
        for old in evicted:
            old.close()
        return session

    def sessions(self) -> list[DatasetSession]:
        with self._lock:
            return list(self._sessions.values())

    def close(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()

    def describe(self) -> dict:
        return {
            "capacity": self.capacity,
            "sessions": [session.describe() for session in self.sessions()],
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


__all__ = ["DatasetSession", "SessionPool", "session_key"]
