"""Shadow rollout: run a candidate engine next to the one serving traffic.

Migrating traffic between solve paths (say ``naive+prov`` → ``milp+opt``)
should not rely on test coverage alone.  :class:`ShadowEngine` fronts a
*primary* engine whose answers are always returned, and mirrors a sampled
fraction of requests to a *shadow* method, comparing the outcomes on the
fields that must agree (feasibility, distance, deviation — never timings or
engine-private statistics).  Disagreements are recorded, not raised: shadow
traffic must never break the caller.

Sampling is deterministic given a seed, so replays are reproducible.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field, replace

from repro.core.deadline import Deadline
from repro.service.engine import RefinementEngine, RefineRequest, RefineResponse

#: Distances are compared after rounding: the two engines may legitimately
#: reach the optimum along different floating-point paths.
COMPARE_DECIMALS = 6


def comparable(response: RefineResponse) -> dict:
    """The engine-agnostic facts two solve paths must agree on."""

    def _round(value: float | None) -> float | None:
        return None if value is None else round(value, COMPARE_DECIMALS)

    return {
        "feasible": response.feasible,
        "distance_value": _round(response.distance_value),
        "deviation": _round(response.deviation),
    }


@dataclass
class ShadowDiff:
    """One disagreement between primary and shadow on a sampled request."""

    request: dict
    primary: dict
    shadow: dict


@dataclass
class ShadowReport:
    """Running tally of a shadow rollout."""

    shadow_method: str
    sample_rate: float
    requests: int = 0
    sampled: int = 0
    matched: int = 0
    shadow_errors: int = 0
    diffs: list[ShadowDiff] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every sampled request agreed (and none errored)."""
        return not self.diffs and not self.shadow_errors

    def to_dict(self) -> dict:
        return {
            "shadow_method": self.shadow_method,
            "sample_rate": self.sample_rate,
            "requests": self.requests,
            "sampled": self.sampled,
            "matched": self.matched,
            "shadow_errors": self.shadow_errors,
            "diffs": [
                {
                    "request": diff.request,
                    "primary": diff.primary,
                    "shadow": diff.shadow,
                }
                for diff in self.diffs
            ],
        }


class ShadowEngine:
    """A :class:`RefinementEngine` facade with sampled dual-running.

    ``refine`` always returns the primary engine's response.  With
    probability ``sample_rate`` the request is re-run with ``method`` swapped
    to ``shadow_method`` (rate ``1.0`` shadows everything, ``0.0`` nothing)
    and the comparable fields are diffed into :attr:`report`.  Shadow
    failures are counted, never propagated.
    """

    def __init__(
        self,
        engine: RefinementEngine,
        shadow_method: str,
        sample_rate: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"shadow sample rate must be within [0, 1], got {sample_rate}"
            )
        self.engine = engine
        self.shadow_method = shadow_method
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.report = ShadowReport(shadow_method=shadow_method, sample_rate=sample_rate)

    def report_dict(self) -> dict:
        """A consistent snapshot of the running tally (for stats readers)."""
        with self._lock:
            return self.report.to_dict()

    def _should_sample(self) -> bool:
        with self._lock:
            self.report.requests += 1
            if self.sample_rate <= 0.0:
                return False
            if self.sample_rate >= 1.0:
                return True
            return self._rng.random() < self.sample_rate

    def refine(
        self, request: RefineRequest, deadline: Deadline | None = None
    ) -> RefineResponse:
        response = self.engine.refine(request, deadline=deadline)
        # The shadow re-run is best-effort observation: it deliberately runs
        # outside the caller's deadline (its duration is never on the SLA).
        if not self._should_sample() or request.method == self.shadow_method:
            return response
        shadow_request = replace(request, method=self.shadow_method)
        try:
            shadow_response = self.engine.refine(shadow_request)
        except Exception:
            with self._lock:
                self.report.sampled += 1
                self.report.shadow_errors += 1
            return response
        primary_facts = comparable(response)
        shadow_facts = comparable(shadow_response)
        with self._lock:
            self.report.sampled += 1
            if primary_facts == shadow_facts:
                self.report.matched += 1
            else:
                self.report.diffs.append(
                    ShadowDiff(
                        request=request.to_dict(),
                        primary=primary_facts,
                        shadow=shadow_facts,
                    )
                )
        return response


__all__ = ["COMPARE_DECIMALS", "ShadowDiff", "ShadowEngine", "ShadowReport", "comparable"]
