"""Machine-readable registries the repro-lint rules are configured from.

These tables are the invariants of PRs 4-6 written down once, where both the
static rules and the ``REPRO_DEBUG_LOCKS`` dynamic proxies (and a future
reviewer) can read them.  Adding shared mutable state to the engine means
adding a row here — the lint run fails otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GuardSpec:
    """Which attributes of a class may only be touched under which lock."""

    lock: str
    attributes: tuple[str, ...]
    note: str


#: Class name -> guarded attributes and their owning lock (``lock-guard``).
#: Methods named ``__init__``/``__getstate__``/``__setstate__`` and methods
#: whose name ends in ``_locked`` are exempt (no concurrent reader can hold
#: the object yet / pickling is single-threaded / the caller holds the lock).
LOCK_GUARDS: dict[str, GuardSpec] = {
    "QueryExecutor": GuardSpec(
        lock="_cache_lock",
        attributes=("_join_cache", "_ordered_cache"),
        note="per-query-shape join and ordered-join caches (PR 6): "
        "check-then-build must be serialized or concurrent refine "
        "requests race on construction",
    ),
    "_SQLiteConnectionPool": GuardSpec(
        lock="_lock",
        attributes=("_executors",),
        note="per-thread sqlite connection table: eviction mutates it from "
        "other threads, so even reads must hold the lock",
    ),
    "DatasetSession": GuardSpec(
        lock="_lock",
        attributes=("_annotated", "_mask_data", "_mask_data_built", "_prepared_milps"),
        note="warm per-dataset state built lazily by concurrent requests; "
        "the prepared-MILP LRU reorders on every hit",
    ),
    "SessionPool": GuardSpec(
        lock="_lock",
        attributes=("_sessions",),
        note="session LRU: get/adopt reorder and evict concurrently",
    ),
    "RaceControl": GuardSpec(
        lock="_lock",
        attributes=(
            "_best_upper",
            "_proven_lower",
            "_timeline",
            "_cancelled",
            "_cancel_all",
        ),
        note="shared race state (bounds, timeline, cancellation flags) "
        "published by engine threads while the selection loop reads",
    ),
    "RequestCoalescer": GuardSpec(
        lock="_lock",
        attributes=("_inflight",),
        note="leader/waiter map: the membership test *is* the leader "
        "election, so it must be atomic with insertion",
    ),
    "ShadowEngine": GuardSpec(
        lock="_lock",
        attributes=("report",),
        note="shadow tally mutated by every sampled request; stats readers "
        "must snapshot under the same lock",
    ),
}


#: Class name -> reason it may own locks/connections/pools without defining
#: ``__getstate__``/``__setstate__`` (``fork-pickle-hygiene``).  Every entry
#: documents why the class can never cross a pickle/fork boundary intact.
FORK_PICKLE_EXEMPT: dict[str, str] = {
    "_SQLiteConnectionPool": (
        "never pickled directly; QueryExecutor.__getstate__ drops the whole "
        "pool and __setstate__/reset_connections rebuild it empty"
    ),
    "SQLiteExecutor": (
        "lives only inside _SQLiteConnectionPool, which the owning "
        "QueryExecutor drops before pickling; workers reopen their own"
    ),
    "_InFlight": (
        "request-scoped leader/waiter pair; exists only inside "
        "RequestCoalescer._inflight for the duration of one computation"
    ),
    "RequestCoalescer": (
        "server-resident: owned by the RefinementEngine facade, which is "
        "never pickled (workers receive prepared searches, not the engine)"
    ),
    "ShadowEngine": "server-resident rollout facade; never crosses a process",
    "DatasetSession": (
        "server-resident warm state; sessions are rebuilt from the shared "
        "persistent sqlite store, never shipped between processes"
    ),
    "SessionPool": "server-resident LRU over sessions; never pickled",
    "RaceControl": (
        "race-scoped shared state on threads of one PortfolioSolver.solve; "
        "pool workers receive plain timeouts/budgets, never the control"
    ),
    "_AtomInterner": (
        "process-wide singleton with explicit os.register_at_fork hooks "
        "(lock held across fork, child re-creates it); never pickled"
    ),
    "FaultPlan": (
        "process-local fault-injection plan: workers re-read their own "
        "REPRO_FAULT_* environment at import, the parent's plan never ships"
    ),
    "AdmissionController": (
        "server-resident front door: owned by RefinementServer, which is "
        "never pickled; workers never see the admission layer"
    ),
}


#: Module suffixes whose loops must stay columnar (``hot-path-rowwise``).
HOT_MODULES: tuple[str, ...] = (
    "repro/core/naive.py",
    "repro/relational/columnar.py",
    "repro/core/milp_builder.py",
)

#: Module suffixes subject to ``sql-parameterization``.
SQL_MODULES: tuple[str, ...] = (
    "repro/relational/sqlgen.py",
    "repro/relational/sqlite_backend.py",
)

#: Helpers that make an interpolated SQL fragment identifier-safe.
SQL_IDENTIFIER_HELPERS: tuple[str, ...] = ("_quote_identifier",)

#: Helpers/attributes that mark an expression as carrying a *value* — these
#: must reach SQL as bound ``?`` parameters, never as interpolated text.
SQL_VALUE_HELPERS: tuple[str, ...] = ("_quote_literal",)
SQL_VALUE_ATTRIBUTES: tuple[str, ...] = ("constant", "values")

#: Module suffixes allowed to read environment keys *through* the
#: fault-injection registry (``point.env``) instead of literals; the
#: ``env-var-registry`` rule compensates by cross-checking every
#: ``InjectionPoint(env=...)`` declaration in them against the env registry.
FAULT_MODULES: tuple[str, ...] = ("repro/faults/registry.py",)

#: Module suffix and dataclasses checked by ``wire-stability``.
WIRE_MODULES: tuple[str, ...] = ("repro/service/engine.py",)
WIRE_CLASSES: tuple[str, ...] = ("ConstraintSpec", "RefineRequest", "RefineResponse")

#: Names whose appearance inside ``canonical_dict`` would make the wire
#: serialization timing- or environment-dependent.
WIRE_FORBIDDEN_NAMES: tuple[str, ...] = (
    "timings",
    "time",
    "datetime",
    "platform",
    "environ",
    "getenv",
    "random",
    "uuid",
)


__all__ = [
    "FAULT_MODULES",
    "FORK_PICKLE_EXEMPT",
    "GuardSpec",
    "HOT_MODULES",
    "LOCK_GUARDS",
    "SQL_IDENTIFIER_HELPERS",
    "SQL_MODULES",
    "SQL_VALUE_ATTRIBUTES",
    "SQL_VALUE_HELPERS",
    "WIRE_CLASSES",
    "WIRE_FORBIDDEN_NAMES",
    "WIRE_MODULES",
]
