"""Lint configuration: the knobs every rule reads.

``default_config()`` wires the registries in :mod:`repro.analysis.registry`
and :mod:`repro.analysis.env_registry` together; the analyzer's own test
suite builds custom configs pointing the same rules at fixture files instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import env_registry, registry
from repro.analysis.registry import GuardSpec


@dataclass
class LintConfig:
    """Everything rule behaviour can be parameterized on."""

    lock_guards: dict[str, GuardSpec] = field(default_factory=dict)
    fork_pickle_exempt: dict[str, str] = field(default_factory=dict)
    hot_modules: tuple[str, ...] = ()
    sql_modules: tuple[str, ...] = ()
    sql_identifier_helpers: tuple[str, ...] = ()
    sql_value_helpers: tuple[str, ...] = ()
    sql_value_attributes: tuple[str, ...] = ()
    wire_modules: tuple[str, ...] = ()
    wire_classes: tuple[str, ...] = ()
    wire_forbidden_names: tuple[str, ...] = ()
    env_var_prefix: str = "REPRO_"
    env_var_names: frozenset[str] = frozenset()
    fault_modules: tuple[str, ...] = ()

    def applies_to(self, path: str, suffixes: tuple[str, ...]) -> bool:
        """Whether ``path`` matches one of the registered module suffixes."""
        normalized = path.replace("\\", "/")
        return any(normalized.endswith(suffix) for suffix in suffixes)


def default_config() -> LintConfig:
    """The configuration for this repository's source tree."""
    return LintConfig(
        lock_guards=dict(registry.LOCK_GUARDS),
        fork_pickle_exempt=dict(registry.FORK_PICKLE_EXEMPT),
        hot_modules=registry.HOT_MODULES,
        sql_modules=registry.SQL_MODULES,
        sql_identifier_helpers=registry.SQL_IDENTIFIER_HELPERS,
        sql_value_helpers=registry.SQL_VALUE_HELPERS,
        sql_value_attributes=registry.SQL_VALUE_ATTRIBUTES,
        wire_modules=registry.WIRE_MODULES,
        wire_classes=registry.WIRE_CLASSES,
        wire_forbidden_names=registry.WIRE_FORBIDDEN_NAMES,
        env_var_names=env_registry.registered_names(),
        fault_modules=registry.FAULT_MODULES,
    )


__all__ = ["LintConfig", "default_config"]
