"""Dynamic lock-assertion proxies: the runtime half of ``lock-guard``.

With ``REPRO_DEBUG_LOCKS=1`` in the environment, the owner classes listed in
``analysis/registry.py`` wrap their guarded mappings in checking subclasses
that raise :class:`LockAssertionError` whenever the structure is touched
without the owning lock held.  The static rule proves the *source* takes the
lock; this catches the paths the AST cannot see (callbacks, tests poking
private state, future helpers).  With the variable unset, ``guard_mapping``
returns its argument unchanged — zero overhead in production.

This module must stay dependency-free (stdlib only, no ``repro`` imports):
it is imported by the lowest layers of the engine.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import MutableMapping, TypeVar

DEBUG_ENV_VAR = "REPRO_DEBUG_LOCKS"

_M = TypeVar("_M", bound=MutableMapping)

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def enabled() -> bool:
    """Whether lock-assertion proxies are active for this process."""
    return os.environ.get(DEBUG_ENV_VAR, "").strip().lower() in _TRUTHY


class LockAssertionError(AssertionError):
    """A guarded structure was accessed without its owning lock held."""


def _assert_held(lock: object, owner: str) -> None:
    held = None
    is_owned = getattr(lock, "_is_owned", None)  # RLock: owned by *this* thread
    if callable(is_owned):
        held = is_owned()
    else:
        locked = getattr(lock, "locked", None)  # plain Lock: held by someone
        if callable(locked):
            held = locked()
    if held is False:
        raise LockAssertionError(
            f"{owner} accessed without its owning lock held "
            f"(REPRO_DEBUG_LOCKS=1; see analysis/registry.py LOCK_GUARDS)"
        )


def _checking(method_name: str, base: type) -> object:
    base_method = getattr(base, method_name)

    def checked(self: object, *args: object, **kwargs: object) -> object:
        _assert_held(
            getattr(self, "_repro_lock"), getattr(self, "_repro_owner")
        )
        return base_method(self, *args, **kwargs)

    checked.__name__ = method_name
    return checked


_CHECKED_METHODS = (
    "__getitem__",
    "__setitem__",
    "__delitem__",
    "__contains__",
    "__iter__",
    "__len__",
    "get",
    "pop",
    "popitem",
    "setdefault",
    "clear",
    "update",
    "keys",
    "values",
    "items",
)


def _build_checked_class(base: type, extra_methods: tuple[str, ...] = ()) -> type:
    namespace: dict[str, object] = {
        "_repro_lock": None,
        "_repro_owner": "guarded mapping",
    }
    for method_name in _CHECKED_METHODS + extra_methods:
        namespace[method_name] = _checking(method_name, base)

    # Pickling must bypass the checks (pickling is single-threaded and the
    # fork-pickle rule already polices which objects may be pickled at all).
    def __reduce__(self: object) -> tuple:
        return (base, (list(base.items(self)),))  # type: ignore[attr-defined]

    namespace["__reduce__"] = __reduce__
    return type(f"LockChecked{base.__name__.capitalize()}", (base,), namespace)


LockCheckedDict = _build_checked_class(dict)
LockCheckedOrderedDict = _build_checked_class(OrderedDict, ("move_to_end",))


def guard_mapping(mapping: _M, lock: object, owner: str) -> _M:
    """Wrap ``mapping`` in a checking proxy when REPRO_DEBUG_LOCKS is on.

    ``lock`` is the owning ``threading.Lock``/``RLock``; ``owner`` names the
    structure in the assertion message (e.g. ``"QueryExecutor._join_cache"``).
    Returns ``mapping`` unchanged when the debug mode is off.  The proxy is a
    subclass of the wrapped type, so the declared type of the attribute holds
    either way.
    """
    if not enabled():
        return mapping
    cls = (
        LockCheckedOrderedDict
        if isinstance(mapping, OrderedDict)
        else LockCheckedDict
    )
    proxy = cls(mapping)
    proxy._repro_lock = lock
    proxy._repro_owner = owner
    return proxy  # type: ignore[return-value]


def plain_copy(mapping: dict) -> dict:
    """Copy a dict-backed mapping into a plain dict without lock checks.

    For re-arming proxies after fork/unpickle, when the old lock object is
    gone and could never be "held".  Defined for plain dicts only: copying an
    OrderedDict this way would lose its LRU reordering, and every proxied
    OrderedDict owner is fork/pickle-exempt anyway.
    """
    return dict(dict.items(mapping))


def _self_test() -> None:  # pragma: no cover - manual smoke hook
    lock = threading.RLock()
    guarded = guard_mapping({}, lock, "self-test") if enabled() else None
    if guarded is None:
        return
    with lock:
        guarded["ok"] = 1
    try:
        _ = guarded["ok"]
    except LockAssertionError:
        return
    raise AssertionError("proxy failed to fire")


__all__ = [
    "DEBUG_ENV_VAR",
    "LockAssertionError",
    "LockCheckedDict",
    "LockCheckedOrderedDict",
    "enabled",
    "guard_mapping",
    "plain_copy",
]
