"""The repro-lint rule set: one class per repo-specific invariant.

Each rule carries a stable ``rule_id`` (the name suppression comments and CI
output use), an error severity, and a ``check`` that walks one parsed module
and yields :class:`~repro.analysis.diagnostics.Diagnostic`\\ s.  Rules read
everything repository-specific from the :class:`~repro.analysis.config
.LintConfig` they are given, so the analyzer's own tests can point them at
fixture files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import GuardSpec


@dataclass
class ModuleSource:
    """One parsed file moving through the rule pipeline."""

    path: str
    source: str
    tree: ast.Module


class Rule:
    """Base class: subclasses set the id/description and implement check()."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    invariant: str = ""

    def check(self, module: ModuleSource, config: LintConfig) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, module: ModuleSource, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
        )


def _dotted_name(node: ast.AST) -> str | None:
    """``os.environ.get`` -> "os.environ.get"; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_self_attribute(node: ast.AST, attribute: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr == attribute
    )


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class LockGuardRule(Rule):
    """Guarded attributes may only be touched under their registered lock.

    The registry (``analysis/registry.py: LOCK_GUARDS``) maps each class's
    shared mutable structures to the lock that owns them; any ``self.<attr>``
    read or write outside a ``with self.<lock>:`` block is an error.
    ``__init__``/``__getstate__``/``__setstate__`` and ``*_locked`` helper
    methods are exempt (no concurrent reader can hold the object yet,
    pickling is single-threaded, or the caller holds the lock by contract).
    """

    rule_id = "lock-guard"
    description = "registered shared state accessed outside its owning lock"
    invariant = (
        "every read/write of a registered guarded attribute happens inside "
        "'with self.<lock>' (or an exempt construction/pickling method)"
    )

    EXEMPT_METHODS = frozenset(
        {"__init__", "__getstate__", "__setstate__", "__reduce__", "__del__"}
    )

    def check(self, module: ModuleSource, config: LintConfig) -> Iterator[Diagnostic]:
        for classdef in ast.walk(module.tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            spec = config.lock_guards.get(classdef.name)
            if spec is None:
                continue
            for method in classdef.body:
                if not isinstance(method, _FUNCTION_NODES):
                    continue
                if method.name in self.EXEMPT_METHODS or method.name.endswith(
                    "_locked"
                ):
                    continue
                yield from self._scan(module, classdef.name, spec, method, held=False)

    def _scan(
        self,
        module: ModuleSource,
        class_name: str,
        spec: GuardSpec,
        node: ast.AST,
        held: bool,
    ) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            child_held = held
            if isinstance(child, ast.With):
                if any(
                    _is_self_attribute(item.context_expr, spec.lock)
                    for item in child.items
                ):
                    child_held = True
            elif isinstance(child, _FUNCTION_NODES + (ast.Lambda,)):
                # A nested function may run on another thread or after the
                # lock was released; treat its body as unguarded.
                child_held = False
            elif isinstance(child, ast.Attribute) and not held:
                for attribute in spec.attributes:
                    if _is_self_attribute(child, attribute):
                        yield self.diagnostic(
                            module,
                            child,
                            f"{class_name}.{attribute} accessed outside "
                            f"'with self.{spec.lock}' ({spec.note})",
                        )
            yield from self._scan(module, class_name, spec, child, child_held)


class ForkPickleRule(Rule):
    """Classes owning locks/connections/pools must manage their pickling.

    Any class that assigns a ``threading`` lock/event, an ``sqlite3``
    connection or a ``multiprocessing`` pool/context to ``self`` must define
    both ``__getstate__`` and ``__setstate__`` — and ``__getstate__`` must
    visibly drop each unpicklable field — unless the class is on the
    registry's exemption list with a written reason.
    """

    rule_id = "fork-pickle-hygiene"
    description = "unpicklable resource owner without __getstate__/__setstate__"
    invariant = (
        "no lock, sqlite connection or process pool can cross a pickle/fork "
        "boundary: owners drop them in __getstate__ or are exempt by registry"
    )

    UNPICKLABLE_FACTORIES = frozenset(
        {
            "threading.Lock",
            "threading.RLock",
            "threading.Event",
            "threading.Condition",
            "threading.Semaphore",
            "threading.BoundedSemaphore",
            "sqlite3.connect",
            "multiprocessing.Pool",
            "multiprocessing.get_context",
            "multiprocessing.Manager",
        }
    )

    def check(self, module: ModuleSource, config: LintConfig) -> Iterator[Diagnostic]:
        for classdef in ast.walk(module.tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            owned = self._unpicklable_attributes(classdef)
            if not owned:
                continue
            if classdef.name in config.fork_pickle_exempt:
                continue
            methods = {
                stmt.name for stmt in classdef.body if isinstance(stmt, _FUNCTION_NODES)
            }
            if "__getstate__" not in methods or "__setstate__" not in methods:
                attributes = ", ".join(sorted(owned))
                yield self.diagnostic(
                    module,
                    classdef,
                    f"{classdef.name} owns unpicklable state ({attributes}) but "
                    "does not define both __getstate__ and __setstate__; add "
                    "them or register an exemption with a reason in "
                    "analysis/registry.py",
                )
                continue
            getstate = next(
                stmt
                for stmt in classdef.body
                if isinstance(stmt, _FUNCTION_NODES) and stmt.name == "__getstate__"
            )
            mentioned = self._mentioned_attributes(getstate)
            for attribute in sorted(owned):
                if attribute not in mentioned:
                    yield self.diagnostic(
                        module,
                        getstate,
                        f"{classdef.name}.__getstate__ never drops the "
                        f"unpicklable field {attribute!r}",
                    )

    def _unpicklable_attributes(self, classdef: ast.ClassDef) -> dict[str, str]:
        owned: dict[str, str] = {}
        for node in ast.walk(classdef):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            factory = _dotted_name(node.value.func)
            if factory not in self.UNPICKLABLE_FACTORIES:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ) and target.value.id == "self":
                    owned[target.attr] = factory
        return owned

    @staticmethod
    def _mentioned_attributes(getstate: ast.AST) -> set[str]:
        mentioned: set[str] = set()
        for node in ast.walk(getstate):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                mentioned.add(node.value)
            elif isinstance(node, ast.Attribute):
                mentioned.add(node.attr)
        return mentioned


class SqlParameterizationRule(Rule):
    """SQL strings must bind values via ``?``, never interpolate them.

    In the SQL-emitting modules, interpolating a *value* — a predicate
    ``constant``/``values`` or anything routed through the literal-quoting
    helper — into a string (f-string, ``%``, ``+``, ``.format``) is an
    error.  Identifier interpolation through the quoting helper
    (``_quote_identifier``) and parameter-free clause skeletons are fine.
    """

    rule_id = "sql-parameterization"
    description = "value interpolated into SQL text instead of a '?' parameter"
    invariant = (
        "predicate constants and values reach sqlite only as bound "
        "parameters; only identifiers (via the quoting helper) and "
        "parameter-free clause skeletons are string-built"
    )

    def check(self, module: ModuleSource, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.applies_to(module.path, config.sql_modules):
            return
        # Module-level pass plus one pass per function, each with its own
        # tainted-name scope.
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(
            node for node in ast.walk(module.tree) if isinstance(node, _FUNCTION_NODES)
        )
        for scope in scopes:
            tainted = self._tainted_names(scope, config)
            yield from self._flag_sites(module, scope, tainted, config)

    def _tainted_names(self, scope: ast.AST, config: LintConfig) -> set[str]:
        tainted: set[str] = set()
        for _ in range(4):  # small fixpoint: assignments can chain
            grew = False
            for node in self._own_nodes(scope):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and target.id not in tainted:
                        if self._is_tainted(node.value, tainted, config):
                            tainted.add(target.id)
                            grew = True
            if not grew:
                break
        return tainted

    def _flag_sites(
        self,
        module: ModuleSource,
        scope: ast.AST,
        tainted: set[str],
        config: LintConfig,
    ) -> Iterator[Diagnostic]:
        for node in self._own_nodes(scope):
            if isinstance(node, ast.JoinedStr):
                for value in node.values:
                    if isinstance(value, ast.FormattedValue) and self._is_tainted(
                        value.value, tainted, config
                    ):
                        yield self.diagnostic(
                            module,
                            value,
                            "value interpolated into an f-string in a SQL "
                            "module; bind it as a '?' parameter",
                        )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mod, ast.Add)):
                for side in (node.left, node.right):
                    if self._is_tainted(side, tainted, config):
                        yield self.diagnostic(
                            module,
                            node,
                            "value spliced into a string expression in a SQL "
                            "module; bind it as a '?' parameter",
                        )
                        break
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "format"
            ):
                arguments = list(node.args) + [kw.value for kw in node.keywords]
                if any(
                    self._is_tainted(argument, tainted, config)
                    for argument in arguments
                ):
                    yield self.diagnostic(
                        module,
                        node,
                        "value passed to str.format in a SQL module; bind it "
                        "as a '?' parameter",
                    )

    @staticmethod
    def _own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Nodes of ``scope`` excluding nested function bodies.

        Each function is its own taint scope; the module-level pass must not
        descend into them (and functions must not descend into inner ones).
        """
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, _FUNCTION_NODES):
                continue
            stack.extend(ast.iter_child_nodes(node))

    #: Count-shaped builtins: their result is an arity derived from values,
    #: never a value itself, so they stop taint propagation (an ``IN (?, ?)``
    #: placeholder list built from ``len(values)`` is parameterized SQL).
    SANITIZERS = frozenset({"len", "sum", "range", "enumerate"})

    def _is_tainted(self, node: ast.AST, tainted: set[str], config: LintConfig) -> bool:
        if isinstance(node, ast.Call):
            name = _dotted_name(node.func)
            short = name.rsplit(".", 1)[-1] if name else None
            if short in config.sql_value_helpers:
                return True
            if short in self.SANITIZERS:
                return False
            children: list[ast.AST] = [node.func, *node.args]
            children.extend(keyword.value for keyword in node.keywords)
            return any(
                self._is_tainted(child, tainted, config) for child in children
            )
        if isinstance(node, ast.Attribute):
            if node.attr in config.sql_value_attributes:
                return True
            return self._is_tainted(node.value, tainted, config)
        if isinstance(node, ast.Name):
            return node.id in tainted
        return any(
            self._is_tainted(child, tainted, config)
            for child in ast.iter_child_nodes(node)
        )


class HotPathRowwiseRule(Rule):
    """Hot modules must not fall back to row-at-a-time evaluation.

    Modules tagged hot in the registry may not call
    ``iter_dicts``/``iterrows``/``itertuples`` at all, and may not build
    per-row dicts inside ``for``/``while`` loops (the pattern every
    vectorization PR removed).  Intentional reference fallbacks carry a
    suppression with a reason.
    """

    rule_id = "hot-path-rowwise"
    description = "row-wise iteration or per-row dict building in a hot module"
    invariant = (
        "hot modules evaluate columns and masks, never per-row dicts; "
        "row-wise reference paths are explicit, suppressed exceptions"
    )

    ROWWISE_CALLS = frozenset({"iter_dicts", "iterrows", "itertuples"})

    def check(self, module: ModuleSource, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.applies_to(module.path, config.hot_modules):
            return
        yield from self._scan(module, module.tree, in_loop=False)

    def _scan(
        self, module: ModuleSource, node: ast.AST, in_loop: bool
    ) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                child_in_loop = True
            elif isinstance(child, _FUNCTION_NODES + (ast.Lambda,)):
                child_in_loop = False
            if isinstance(child, ast.Call):
                if (
                    isinstance(child.func, ast.Attribute)
                    and child.func.attr in self.ROWWISE_CALLS
                ):
                    yield self.diagnostic(
                        module,
                        child,
                        f"hot module calls {child.func.attr}(); evaluate "
                        "column-wise instead",
                    )
                elif (
                    in_loop
                    and isinstance(child.func, ast.Name)
                    and child.func.id == "dict"
                    and (child.args or child.keywords)
                ):
                    yield self.diagnostic(
                        module, child, "dict() built inside a loop in a hot module"
                    )
            elif in_loop and isinstance(child, ast.Dict) and child.keys:
                yield self.diagnostic(
                    module, child, "dict literal built inside a loop in a hot module"
                )
            elif in_loop and isinstance(child, ast.DictComp):
                yield self.diagnostic(
                    module,
                    child,
                    "dict comprehension built inside a loop in a hot module",
                )
            yield from self._scan(module, child, child_in_loop)


class WireStabilityRule(Rule):
    """Wire dataclasses stay JSON-serializable and deterministic.

    Fields of the registered wire classes must be annotated with
    JSON-serializable types (or other wire classes), and ``canonical_dict``
    must not reference timing- or environment-dependent names — it is the
    byte-stable identity clients and the coalescer rely on.
    """

    rule_id = "wire-stability"
    description = "wire dataclass field or canonical_dict breaks serialization"
    invariant = (
        "RefineRequest/RefineResponse/ConstraintSpec fields are "
        "JSON-serializable annotated types and canonical_dict stays free of "
        "timing/env-dependent keys"
    )

    ALLOWED_NAMES = frozenset(
        {"str", "int", "float", "bool", "object", "dict", "list", "tuple", "None"}
    )

    def check(self, module: ModuleSource, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.applies_to(module.path, config.wire_modules):
            return
        allowed = self.ALLOWED_NAMES | set(config.wire_classes)
        for classdef in ast.walk(module.tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            if classdef.name not in config.wire_classes:
                continue
            for stmt in classdef.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if not self._json_annotation(stmt.annotation, allowed):
                        yield self.diagnostic(
                            module,
                            stmt,
                            f"field {classdef.name}.{stmt.target.id} is "
                            "annotated with a non-JSON-serializable type",
                        )
            for method in classdef.body:
                if (
                    isinstance(method, _FUNCTION_NODES)
                    and method.name == "canonical_dict"
                ):
                    yield from self._check_canonical(module, classdef, method, config)

    def _json_annotation(self, node: ast.AST, allowed: set[str] | frozenset) -> bool:
        if isinstance(node, ast.Name):
            return node.id in allowed
        if isinstance(node, ast.Constant):
            return node.value is None or node.value is Ellipsis or isinstance(
                node.value, str
            )
        if isinstance(node, ast.Subscript):
            return self._json_annotation(node.value, allowed) and self._json_annotation(
                node.slice, allowed
            )
        if isinstance(node, ast.Tuple):
            return all(self._json_annotation(item, allowed) for item in node.elts)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._json_annotation(node.left, allowed) and self._json_annotation(
                node.right, allowed
            )
        return False

    def _check_canonical(
        self,
        module: ModuleSource,
        classdef: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        config: LintConfig,
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(method):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                name = node.value
            if name in config.wire_forbidden_names:
                yield self.diagnostic(
                    module,
                    node,
                    f"{classdef.name}.canonical_dict references {name!r}; the "
                    "canonical form must stay timing- and "
                    "environment-independent",
                )


class EnvVarRegistryRule(Rule):
    """Every environment variable is ``REPRO_``-prefixed and registered.

    ``os.environ[...]``/``os.environ.get``/``os.getenv`` keys must be string
    literals (or module-level string constants), match the ``REPRO_*``
    namespace, and appear in ``analysis/env_registry.py`` — the table the
    README's environment documentation is generated from.
    """

    rule_id = "env-var-registry"
    description = "environment variable missing from analysis/env_registry.py"
    invariant = (
        "every os.environ/getenv key is a REPRO_* name declared in the "
        "env registry (which generates the README table); fault modules may "
        "read keys through the injection-point registry, whose env "
        "declarations are cross-checked instead"
    )

    def check(self, module: ModuleSource, config: LintConfig) -> Iterator[Diagnostic]:
        constants = self._module_constants(module.tree)
        fault_module = config.applies_to(module.path, config.fault_modules)
        if fault_module:
            yield from self._check_injection_declarations(module, config)
        for node in ast.walk(module.tree):
            key_node = None
            if isinstance(node, ast.Call):
                name = _dotted_name(node.func)
                if name in ("os.environ.get", "os.getenv") and node.args:
                    key_node = node.args[0]
            elif isinstance(node, ast.Subscript):
                if _dotted_name(node.value) == "os.environ":
                    key_node = node.slice
            if key_node is None:
                continue
            if (
                fault_module
                and isinstance(key_node, ast.Attribute)
                and key_node.attr == "env"
            ):
                # The registry-driven indirection (``point.env``): allowed in
                # fault modules because every InjectionPoint ``env=`` literal
                # is cross-checked above against the env registry.
                continue
            key = self._resolve(key_node, constants)
            if key is None:
                yield self.diagnostic(
                    module,
                    key_node,
                    "environment key must be a string literal or module-level "
                    "constant so the registry rule can check it",
                )
            elif not key.startswith(config.env_var_prefix):
                yield self.diagnostic(
                    module,
                    key_node,
                    f"environment variable {key!r} is outside the "
                    f"{config.env_var_prefix}* namespace",
                )
            elif key not in config.env_var_names:
                yield self.diagnostic(
                    module,
                    key_node,
                    f"environment variable {key!r} is not declared in "
                    "analysis/env_registry.py",
                )

    def _check_injection_declarations(
        self, module: ModuleSource, config: LintConfig
    ) -> Iterator[Diagnostic]:
        """Cross-check ``InjectionPoint(env=...)`` literals in fault modules."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _dotted_name(node.func) != "InjectionPoint":
                continue
            for keyword in node.keywords:
                if keyword.arg != "env":
                    continue
                value = keyword.value
                if not (
                    isinstance(value, ast.Constant) and isinstance(value.value, str)
                ):
                    yield self.diagnostic(
                        module,
                        value,
                        "InjectionPoint env= must be a string literal so the "
                        "registry rule can check it",
                    )
                elif not value.value.startswith(config.env_var_prefix):
                    yield self.diagnostic(
                        module,
                        value,
                        f"injection point env {value.value!r} is outside the "
                        f"{config.env_var_prefix}* namespace",
                    )
                elif value.value not in config.env_var_names:
                    yield self.diagnostic(
                        module,
                        value,
                        f"injection point env {value.value!r} is not declared "
                        "in analysis/env_registry.py",
                    )

    @staticmethod
    def _module_constants(tree: ast.Module) -> dict[str, str]:
        constants: dict[str, str] = {}
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                constants[stmt.targets[0].id] = stmt.value.value
        return constants

    @staticmethod
    def _resolve(node: ast.AST, constants: dict[str, str]) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return constants.get(node.id)
        return None


class NoBareExceptRule(Rule):
    """No bare ``except:`` and no silently-swallowed ``except Exception``."""

    rule_id = "no-bare-except"
    description = "bare except or silently swallowed Exception"
    invariant = (
        "exception handlers name what they catch and do something with it; "
        "deliberate isolation points carry a suppression with a reason"
    )

    def check(self, module: ModuleSource, config: LintConfig) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    module, node, "bare 'except:' catches SystemExit and "
                    "KeyboardInterrupt; name the exceptions"
                )
                continue
            caught = _dotted_name(node.type)
            if caught in ("Exception", "BaseException") and all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
                for stmt in node.body
            ):
                yield self.diagnostic(
                    module,
                    node,
                    f"'except {caught}: pass' swallows every error silently; "
                    "handle, log or narrow it",
                )


class NoMutableDefaultRule(Rule):
    """No mutable default argument values."""

    rule_id = "no-mutable-default"
    description = "mutable default argument"
    invariant = "default argument values are immutable (or None-gated)"

    MUTABLE_CALLS = frozenset({"dict", "list", "set"})

    def check(self, module: ModuleSource, config: LintConfig) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, _FUNCTION_NODES + (ast.Lambda,)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in self.MUTABLE_CALLS
                )
                if mutable:
                    yield self.diagnostic(
                        module,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and build inside",
                    )


#: Every rule, in documentation order.  The engine instantiates from here.
ALL_RULES: tuple[type[Rule], ...] = (
    LockGuardRule,
    ForkPickleRule,
    SqlParameterizationRule,
    HotPathRowwiseRule,
    WireStabilityRule,
    EnvVarRegistryRule,
    NoBareExceptRule,
    NoMutableDefaultRule,
)


__all__ = [
    "ALL_RULES",
    "EnvVarRegistryRule",
    "ForkPickleRule",
    "HotPathRowwiseRule",
    "LockGuardRule",
    "ModuleSource",
    "NoBareExceptRule",
    "NoMutableDefaultRule",
    "Rule",
    "SqlParameterizationRule",
    "WireStabilityRule",
]
