"""Diagnostics and suppression comments for repro-lint.

A :class:`Diagnostic` pins one rule violation to a ``file:line`` (and, when
the AST provides one, a column).  Suppressions are trailing comments of the
form ``repro-lint: disable=lock-guard -- teardown, no readers left``.

The reason after ``--`` is mandatory: a suppression is a recorded decision,
not an off switch.  A standalone suppression comment (a line holding nothing
else) covers the *next* line, so multi-line statements can be suppressed
without trailing comments inside parentheses.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a diagnostic affects the exit code (errors fail the run)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at a precise location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    message: str
    column: int = 0

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.severity.value}[{self.rule_id}]: {self.message}"
        )


#: A hash sign, then ``repro-lint: disable=rule-a,rule-b -- reason`` (reason
#: optional in the grammar so reasonless suppressions are reported, not
#: silently ignored).
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\-\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*?))?\s*$"
)


@dataclass
class Suppression:
    """One parsed suppression comment."""

    path: str
    line: int
    rule_ids: tuple[str, ...]
    reason: str
    standalone: bool
    #: Rules this suppression actually silenced (filled by the engine).
    used_for: set = field(default_factory=set)

    @property
    def covered_lines(self) -> tuple[int, ...]:
        """A trailing comment covers its own line; a standalone one the next."""
        return (self.line, self.line + 1) if self.standalone else (self.line,)

    def covers(self, rule_id: str, line: int) -> bool:
        return rule_id in self.rule_ids and line in self.covered_lines


def parse_suppressions(path: str, source: str) -> list[Suppression]:
    """All suppression comments in ``source``, in line order."""
    suppressions = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        before = text[: match.start()].strip()
        suppressions.append(
            Suppression(
                path=path,
                line=lineno,
                rule_ids=rules,
                reason=(match.group("reason") or "").strip(),
                standalone=not before,
            )
        )
    return suppressions


__all__ = ["Diagnostic", "Severity", "Suppression", "parse_suppressions"]
