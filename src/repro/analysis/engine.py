"""The repro-lint driver: collect files, run rules, apply suppressions.

``run_lint`` is the library entry point (the CLI and the test suite both call
it); ``main`` is the argparse front end behind both ``repro lint`` and
``python -m repro.analysis``.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.config import LintConfig, default_config
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    Suppression,
    parse_suppressions,
)
from repro.analysis.rules import ALL_RULES, ModuleSource, Rule

#: Engine-level diagnostics (not tied to one Rule class).
PARSE_ERROR = "parse-error"
BAD_SUPPRESSION = "bad-suppression"
UNKNOWN_SUPPRESSION = "unknown-suppression"
UNUSED_SUPPRESSION = "unused-suppression"

ENGINE_RULE_IDS: dict[str, str] = {
    PARSE_ERROR: "file does not parse as Python",
    BAD_SUPPRESSION: "suppression comment without a reason after '--'",
    UNKNOWN_SUPPRESSION: "suppression names a rule id that does not exist",
    UNUSED_SUPPRESSION: "suppression that silences nothing (stale)",
}


@dataclass
class LintReport:
    """Everything one lint run produced."""

    files: int = 0
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def render_text(self, show_suppressed: bool = False) -> str:
        lines = [diag.render() for diag in self.diagnostics]
        if show_suppressed and self.suppressed:
            lines.append("suppressed:")
            lines.extend(f"  {diag.render()}" for diag in self.suppressed)
        lines.append(
            f"{len(self.errors)} error(s), "
            f"{len(self.diagnostics) - len(self.errors)} warning(s), "
            f"{len(self.suppressed)} suppressed "
            f"({len(self.suppressions)} suppression comment(s)) "
            f"across {self.files} file(s)"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        def as_dict(diag: Diagnostic) -> dict:
            return {
                "rule": diag.rule_id,
                "severity": diag.severity.value,
                "path": diag.path,
                "line": diag.line,
                "column": diag.column,
                "message": diag.message,
            }

        return json.dumps(
            {
                "files": self.files,
                "diagnostics": [as_dict(d) for d in self.diagnostics],
                "suppressed": [as_dict(d) for d in self.suppressed],
                "suppression_comments": len(self.suppressions),
                "errors": len(self.errors),
            },
            indent=2,
            sort_keys=True,
        )


def collect_files(paths: Iterable[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            collected.append(path)
    seen: set[Path] = set()
    unique = []
    for path in collected:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _check_file(
    path: Path, rules: Sequence[Rule], config: LintConfig
) -> tuple[list[Diagnostic], list[Diagnostic], list[Suppression]]:
    source = path.read_text(encoding="utf-8")
    display = str(path)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        diag = Diagnostic(
            rule_id=PARSE_ERROR,
            severity=Severity.ERROR,
            path=display,
            line=exc.lineno or 1,
            column=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
        )
        return [diag], [], []

    module = ModuleSource(path=display, source=source, tree=tree)
    suppressions = parse_suppressions(display, source)
    known_ids = {rule.rule_id for rule in rules} | set(ENGINE_RULE_IDS)

    raw: list[Diagnostic] = []
    for rule in rules:
        raw.extend(rule.check(module, config))

    active: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for diag in raw:
        hit = next(
            (s for s in suppressions if s.covers(diag.rule_id, diag.line)), None
        )
        if hit is not None:
            hit.used_for.add(diag.rule_id)
            suppressed.append(diag)
        else:
            active.append(diag)

    # Suppression hygiene: a suppression is a recorded decision, so it must
    # carry a reason, name real rules, and actually silence something.
    for s in suppressions:
        if not s.reason:
            active.append(
                Diagnostic(
                    rule_id=BAD_SUPPRESSION,
                    severity=Severity.ERROR,
                    path=display,
                    line=s.line,
                    message="suppression has no reason; write "
                    "'# repro-lint: disable=<rule> -- <why this is safe>'",
                )
            )
        for rule_id in s.rule_ids:
            if rule_id not in known_ids:
                active.append(
                    Diagnostic(
                        rule_id=UNKNOWN_SUPPRESSION,
                        severity=Severity.ERROR,
                        path=display,
                        line=s.line,
                        message=f"suppression names unknown rule {rule_id!r}",
                    )
                )
        if s.reason and not s.used_for and all(r in known_ids for r in s.rule_ids):
            active.append(
                Diagnostic(
                    rule_id=UNUSED_SUPPRESSION,
                    severity=Severity.ERROR,
                    path=display,
                    line=s.line,
                    message="suppression silences nothing; remove it",
                )
            )
    return active, suppressed, suppressions


def run_lint(
    paths: Iterable[str],
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) and return the full report."""
    if config is None:
        config = default_config()
    if rules is None:
        rules = [rule_cls() for rule_cls in ALL_RULES]
    report = LintReport()

    def sort_key(diag: Diagnostic) -> tuple:
        return (diag.path, diag.line, diag.column, diag.rule_id)

    for path in collect_files(paths):
        report.files += 1
        active, suppressed, suppressions = _check_file(path, rules, config)
        report.diagnostics.extend(active)
        report.suppressed.extend(suppressed)
        report.suppressions.extend(suppressions)
    report.diagnostics.sort(key=sort_key)
    report.suppressed.sort(key=sort_key)
    return report


def list_rules() -> str:
    """Human-readable catalogue of every rule id (for ``--list-rules``)."""
    lines = []
    for rule_cls in ALL_RULES:
        lines.append(f"{rule_cls.rule_id}: {rule_cls.description}")
        lines.append(f"    invariant: {rule_cls.invariant}")
    for rule_id, description in ENGINE_RULE_IDS.items():
        lines.append(f"{rule_id}: {description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checker for the repro engine "
        "(lock discipline, pickle hygiene, SQL parameterization, hot-path "
        "shape, wire stability, env-var registry).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its invariant and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print diagnostics silenced by suppression comments",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return 0

    existing = [p for p in args.paths if Path(p).exists()]
    if not existing:
        print(f"repro lint: no such path(s): {', '.join(args.paths)}", file=sys.stderr)
        return 2

    report = run_lint(existing)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text(show_suppressed=args.show_suppressed))
    return report.exit_code


__all__ = [
    "BAD_SUPPRESSION",
    "ENGINE_RULE_IDS",
    "LintReport",
    "PARSE_ERROR",
    "UNKNOWN_SUPPRESSION",
    "UNUSED_SUPPRESSION",
    "collect_files",
    "list_rules",
    "main",
    "run_lint",
]
