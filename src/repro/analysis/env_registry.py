"""The single source of truth for every ``REPRO_*`` environment variable.

Every ``os.environ``/``os.getenv`` access in ``src/`` must use a key declared
here (enforced by the ``env-var-registry`` lint rule), and the environment
variable table in the README is *generated* from this module
(``scripts/generate_env_docs.py``; ``tests/analysis/test_env_docs_sync.py``
asserts the README never drifts).  Benchmark- and test-only knobs live in the
same table so the docs cover everything, tagged with their scope.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Scopes an environment variable can act in.
SCOPE_RUNTIME = "runtime"
SCOPE_BENCHMARK = "benchmark"
SCOPE_CI = "ci"


@dataclass(frozen=True)
class EnvVar:
    """One documented environment variable."""

    name: str
    default: str
    scope: str
    description: str


ENV_VARS: tuple[EnvVar, ...] = (
    EnvVar(
        "REPRO_EXECUTOR_BACKEND",
        "memory",
        SCOPE_RUNTIME,
        "Query execution backend for every `QueryExecutor` built without an "
        "explicit `backend=` (`memory` or `sqlite`).",
    ),
    EnvVar(
        "REPRO_EXECUTOR_DB",
        "(unset)",
        SCOPE_RUNTIME,
        "Path of a persistent on-disk sqlite store; implies the sqlite "
        "backend when none is selected explicitly.",
    ),
    EnvVar(
        "REPRO_SOLVER_JOBS",
        "1",
        SCOPE_RUNTIME,
        "Worker processes for the naive/naive+prov candidate sweeps "
        "(`jobs=1` is the serial reference path).",
    ),
    EnvVar(
        "REPRO_MILP_BACKEND",
        "(auto)",
        SCOPE_RUNTIME,
        "Forces `get_solver(\"auto\")` onto one MILP backend (`scipy` or "
        "`branch_and_bound`); unknown values raise.",
    ),
    EnvVar(
        "REPRO_MILP_LAZY",
        "1",
        SCOPE_RUNTIME,
        "Set to 0 to disable lazy constraint generation: `RefinementSolver` "
        "then lowers every constraint family eagerly instead of running the "
        "cutting-plane loop over the rank/top-k/distance pools.",
    ),
    EnvVar(
        "REPRO_DEBUG_LOCKS",
        "0",
        SCOPE_RUNTIME,
        "Set to 1 to wrap every registered lock-guarded structure in a "
        "checking proxy that raises on access without the owning lock held "
        "(the dynamic half of repro-lint's `lock-guard` rule).",
    ),
    EnvVar(
        "REPRO_POOL_MAX_RESTARTS",
        "2",
        SCOPE_RUNTIME,
        "Pool rebuilds the parallel sweep attempts after worker crashes "
        "before degrading to the serial path (merge parity is preserved "
        "either way).",
    ),
    EnvVar(
        "REPRO_FAULT_WORKER_CRASH",
        "(unset)",
        SCOPE_CI,
        "Arms the `worker-crash` injection point: a sweep-pool worker dies "
        "with `os._exit` mid-shard. Value syntax: "
        "`RATE[,attempts=N]` (see `repro.faults`).",
    ),
    EnvVar(
        "REPRO_FAULT_SQLITE_LOCK",
        "(unset)",
        SCOPE_CI,
        "Arms the `sqlite-lock` injection point: store accesses raise "
        "`sqlite3.OperationalError: database is locked`. "
        "Value syntax: `RATE[,attempts=N]`.",
    ),
    EnvVar(
        "REPRO_FAULT_SQLITE_CORRUPT",
        "(unset)",
        SCOPE_CI,
        "Arms the `sqlite-corrupt` injection point: store accesses raise "
        "`sqlite3.DatabaseError: malformed`, driving the automatic store "
        "rebuild. Value syntax: `RATE[,attempts=N]`.",
    ),
    EnvVar(
        "REPRO_FAULT_BACKEND_RAISE",
        "(unset)",
        SCOPE_CI,
        "Arms the `backend-raise` injection point: `Model.solve` raises "
        "`SolverError`, driving the milp -> exhaustive degradation. "
        "Value syntax: `RATE[,attempts=N]`.",
    ),
    EnvVar(
        "REPRO_FAULT_SLOW_SOLVE",
        "(unset)",
        SCOPE_CI,
        "Arms the `slow-solve` injection point: `Model.solve` sleeps before "
        "solving. Value syntax: `RATE[,seconds=X]` (default 0.2s).",
    ),
    EnvVar(
        "REPRO_FAULT_SEED",
        "0",
        SCOPE_CI,
        "Seed of the deterministic fault-injection rate draws: the same "
        "seed, point and key always decide the same way.",
    ),
    EnvVar(
        "REPRO_BENCH_SCALE",
        "reduced",
        SCOPE_BENCHMARK,
        "Dataset scale the benchmark harness builds (`reduced` or `paper`).",
    ),
    EnvVar(
        "REPRO_BENCH_TIMEOUT",
        "30",
        SCOPE_BENCHMARK,
        "Per-cell wall-clock timeout (seconds) for benchmark runs.",
    ),
    EnvVar(
        "REPRO_PERF_SMOKE_BUDGET",
        "2.0",
        SCOPE_BENCHMARK,
        "Wall-clock budget (seconds) of the meps naive+prov perf-smoke guard.",
    ),
    EnvVar(
        "REPRO_MILP_SMOKE_BUDGET",
        "2.89",
        SCOPE_BENCHMARK,
        "Wall-clock budget (seconds) of the meps MILP+OPT lowering guard.",
    ),
    EnvVar(
        "REPRO_KEN_SMOKE_BUDGET",
        "12.0",
        SCOPE_BENCHMARK,
        "Wall-clock budget (seconds) of the law_students MILP+OPT Kendall "
        "lazy-generation guard (the eager baseline takes ~24s).",
    ),
    EnvVar(
        "REPRO_ERICA_SMOKE_BUDGET",
        "0.99",
        SCOPE_BENCHMARK,
        "Wall-clock budget (seconds) of the Erica num_solutions=3 guard.",
    ),
    EnvVar(
        "REPRO_PORTFOLIO_DEADLINES",
        "0.05,0.2,1.0,5.0",
        SCOPE_BENCHMARK,
        "Comma-separated deadlines (seconds) the portfolio benchmark sweeps "
        "to record its incumbent-quality-vs-deadline curve.",
    ),
    EnvVar(
        "REPRO_REQUIRE_PARALLEL_SPEEDUP",
        "0",
        SCOPE_CI,
        "Set to 1 on >=2-CPU machines to make the parallel-sweep benchmark "
        "fail (not just record) when jobs=2 is not faster than serial.",
    ),
    EnvVar(
        "REPRO_SERVICE_SPEEDUP",
        "5.0",
        SCOPE_CI,
        "Minimum warm-server p50 speedup over a cold CLI subprocess the "
        "service latency benchmark enforces.",
    ),
)


def registered_names() -> frozenset[str]:
    """Every declared variable name (consulted by the lint rule)."""
    return frozenset(var.name for var in ENV_VARS)


def render_markdown_table() -> str:
    """The README's environment-variable table, one row per variable."""
    lines = [
        "| Variable | Default | Scope | Meaning |",
        "| --- | --- | --- | --- |",
    ]
    for var in ENV_VARS:
        lines.append(
            f"| `{var.name}` | `{var.default}` | {var.scope} | {var.description} |"
        )
    return "\n".join(lines)


__all__ = [
    "ENV_VARS",
    "EnvVar",
    "SCOPE_BENCHMARK",
    "SCOPE_CI",
    "SCOPE_RUNTIME",
    "registered_names",
    "render_markdown_table",
]
