"""``python -m repro.analysis`` — same front end as ``repro lint``."""

from __future__ import annotations

import sys

from repro.analysis.engine import main

if __name__ == "__main__":
    sys.exit(main())
