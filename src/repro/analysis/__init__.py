"""repro-lint: repo-specific static analysis plus dynamic lock checking.

The concurrent serving stack (PRs 4-6) rests on invariants that no general
linter knows about: which executor caches may only be touched under which
lock, which classes must shed sqlite connections and locks before crossing a
``fork``/pickle boundary, which modules are hot paths that must stay
columnar, which SQL strings must bind values as parameters, and which wire
dataclasses must serialize deterministically.  This package checks those
invariants mechanically:

* :mod:`repro.analysis.rules` — the pluggable AST rules (one class per
  invariant, each with a stable rule id);
* :mod:`repro.analysis.registry` — the machine-readable registries the rules
  are configured from (guarded attribute -> lock map, fork-pickle exemption
  list, hot/SQL module lists, wire classes);
* :mod:`repro.analysis.env_registry` — the single source of truth for every
  ``REPRO_*`` environment variable (the README table is generated from it);
* :mod:`repro.analysis.engine` — file collection, suppression-comment
  handling and reporting behind ``repro lint`` / ``python -m repro.analysis``;
* :mod:`repro.analysis.debug_locks` — the ``REPRO_DEBUG_LOCKS=1`` dynamic
  side: checking proxies that assert the owning lock is held on every access
  to a registered guarded structure.

Diagnostics are suppressed per line with a trailing comment of the form
``repro-lint: disable=RULE -- reason``; a suppression without a reason, or
one that no longer suppresses anything, is itself an error.
"""

from __future__ import annotations

from repro.analysis.config import LintConfig, default_config
from repro.analysis.diagnostics import Diagnostic, Severity, Suppression
from repro.analysis.engine import LintReport, run_lint

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintReport",
    "Severity",
    "Suppression",
    "default_config",
    "run_lint",
]
