"""The parallel sharded sweep engine behind the exhaustive baselines.

``Naive``/``Naive+prov`` enumerate the refinement-candidate space as nested
per-predicate sweeps.  This module shards that space along its *outermost*
dimension — contiguous runs of the first numerical predicate's candidate
constants, or of the first categorical attribute's subset chain — and fans the
shards out over a process pool.  Each worker receives the fully prepared
search object (fork-inherited on Linux, pickled on spawn-only platforms),
evaluates its shard with the exact serial hot loop, and sends back only a
tiny ``ShardOutcome`` (best candidate + bookkeeping); the parent merges
outcomes in shard order with the serial comparison rule, so the merged result
is the one the serial loop would have produced.

Determinism contract
--------------------
* Shards are contiguous blocks of the serial enumeration order, and shard
  sizes are computed exactly (``RefinementSpace.tail_size``), so a global
  ``max_candidates`` budget truncates the very same candidate prefix the
  serial loop examines.
* The per-shard reduction and the cross-shard merge both use the serial
  strict-improvement rule (``distance < best - 1e-12``).  Outcomes are
  collected keyed by shard index and merged *in index order* once the sweep
  ends, so neither completion order nor crash-retry order can change the
  winner: the merged winner is the serial winner.
* Timeouts are wall-clock and therefore inherently nondeterministic — exactly
  as in the serial loop.  Workers honour the shared deadline so the pool
  drains promptly.

Fault tolerance
---------------
The pool is a ``concurrent.futures.ProcessPoolExecutor`` because it *detects*
worker death: a crashed worker (OOM kill, segfault, injected
``REPRO_FAULT_WORKER_CRASH``) surfaces as ``BrokenProcessPool`` instead of a
hung ``get()``.  On a broken pool the parent harvests every outcome that did
complete, requeues the unfinished shards with a bumped ``attempt`` counter,
and retries them on a fresh pool after a capped jittered backoff.  After
``REPRO_POOL_MAX_RESTARTS`` restarts the sweep *degrades to serial*: the
parent evaluates the remaining shards in-process, so a pathological pool can
slow a search down but never change its answer.  Each shard's outcome is
recorded exactly once (the index-keyed dict), so no shard is ever lost or
double-counted.

The pool size comes from the ``jobs=`` argument or the ``REPRO_SOLVER_JOBS``
environment variable; ``jobs=1`` bypasses this module entirely and runs the
byte-identical serial path.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
import random
import time
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Iterator

from repro import faults
from repro.exceptions import ReproError

#: Strict-improvement tolerance shared with the serial search loop.
IMPROVEMENT_EPSILON = 1e-12

#: Upper bound on outer-dimension values per shard; keeps individual tasks
#: responsive (deadline checks, budget truncation) even when the outer
#: dimension is astronomically large (categorical-first spaces).
_MAX_CHUNK = 64

#: In-flight tasks per worker; bounds parent-side submission so lazily
#: generated shard streams (2^d - 1 subsets) are never materialised.
_WINDOW_PER_JOB = 2

#: Pool restarts tolerated before the sweep degrades to serial.
_DEFAULT_MAX_RESTARTS = 2

#: Restart backoff: base * 2^(restart-1), capped, with 50-100% jitter.
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 0.5


def resolve_jobs(jobs: int | None = None) -> int:
    """Validated worker count: explicit ``jobs=``, else ``REPRO_SOLVER_JOBS``, else 1."""
    source = "jobs"
    if jobs is None:
        raw = os.environ.get("REPRO_SOLVER_JOBS")
        if raw is None:
            return 1
        source = "REPRO_SOLVER_JOBS"
        try:
            jobs = int(raw)
        except ValueError:
            raise ReproError(
                f"invalid {source}={raw!r}: expected a positive integer"
            ) from None
    jobs = int(jobs)
    if jobs < 1:
        raise ReproError(
            f"invalid {source}={jobs}: the solver needs at least one worker "
            "(use jobs=1 for the serial path)"
        )
    return jobs


def resolve_max_restarts() -> int:
    """Pool restarts tolerated before serial degradation (``REPRO_POOL_MAX_RESTARTS``)."""
    raw = os.environ.get("REPRO_POOL_MAX_RESTARTS")
    if raw is None:
        return _DEFAULT_MAX_RESTARTS
    try:
        value = int(raw)
    except ValueError:
        raise ReproError(
            f"invalid REPRO_POOL_MAX_RESTARTS={raw!r}: expected a non-negative integer"
        ) from None
    if value < 0:
        raise ReproError(
            f"invalid REPRO_POOL_MAX_RESTARTS={value}: restarts cannot be negative"
        )
    return value


@dataclass(frozen=True)
class ShardTask:
    """One contiguous block of the candidate enumeration order.

    ``first_values`` fixes the outermost dimension; ``budget`` is the number
    of candidates this shard may examine before the global ``max_candidates``
    cap is reached (``None`` = unbounded); ``deadline`` is an absolute
    ``time.time()`` timestamp shared by every shard of one search.
    ``attempt`` counts pool-crash retries of this shard (0 = first run); the
    fault plan uses it so an injected transient crash can succeed on retry.
    """

    index: int
    first_values: tuple
    budget: int | None
    deadline: float | None
    attempt: int = 0


@dataclass(frozen=True)
class ShardOutcome:
    """What a worker reports back: the shard's best candidate plus bookkeeping."""

    index: int
    examined: int
    #: ``(distance_value, refinement, deviation)`` or ``None``.
    best: tuple | None
    exhausted: bool
    timed_out: bool


#: The prepared search object, inherited by fork at pool creation (or
#: installed by :func:`_initialize_worker` from a pickle on spawn platforms).
_WORKER_SEARCH = None


def _initialize_worker(payload: bytes | None) -> None:
    global _WORKER_SEARCH
    if payload is not None:
        _WORKER_SEARCH = pickle.loads(payload)
    if _WORKER_SEARCH is not None:
        _WORKER_SEARCH.reset_after_fork()


def _run_shard(task: ShardTask) -> ShardOutcome:
    # Guarded so the injected crash can only ever kill a disposable pool
    # worker: in the parent (serial degradation) parent_process() is None.
    if faults.armed() and multiprocessing.parent_process() is not None:
        faults.fire("worker-crash", key=task.index, attempt=task.attempt)
    return _WORKER_SEARCH.evaluate_shard(task)


def _shard_tasks(
    space,
    chunk: int,
    tail: int,
    max_candidates: int | None,
    deadline: float | None,
    state: dict,
) -> Iterator[ShardTask]:
    """Lazily cut the outer dimension into budgeted shard tasks.

    Sets ``state["truncated"]`` when the global ``max_candidates`` budget ran
    out while further candidates remained — the exact condition under which
    the serial loop reports ``exhausted=False``.
    """
    buffer: list = []
    offset = 0
    index = 0
    for value in space.first_dimension_values():
        buffer.append(value)
        if len(buffer) < chunk:
            continue
        budget = None if max_candidates is None else max_candidates - offset
        if budget is not None and budget <= 0:
            state["truncated"] = True
            return
        yield ShardTask(index, tuple(buffer), budget, deadline)
        offset += len(buffer) * tail
        index += 1
        buffer = []
    if buffer:
        budget = None if max_candidates is None else max_candidates - offset
        if budget is not None and budget <= 0:
            state["truncated"] = True
            return
        yield ShardTask(index, tuple(buffer), budget, deadline)


@dataclass
class SweepSummary:
    """The merged outcome of a sharded search (mirrors the serial loop's state)."""

    best: tuple | None
    examined: int
    exhausted: bool
    timed_out: bool
    #: Stopped by the search's cooperative ``should_stop`` hook.
    cancelled: bool = False
    #: The incumbent matched the proven ``cutoff`` lower bound.
    cutoff_reached: bool = False
    #: Fresh pools spun up after worker crashes (0 = no crash seen).
    pool_restarts: int = 0
    #: The restart budget ran out and the tail of the sweep ran in-process.
    degraded_to_serial: bool = False


def _stop_executor(
    executor: concurrent.futures.ProcessPoolExecutor | None, *, kill: bool
) -> None:
    """Shut a pool down; ``kill`` also terminates workers still mid-shard.

    Unlike ``multiprocessing.Pool``, the executor's context exit *waits* for
    running futures — a cancelled portfolio race must not hold workers past
    the decision, so the abandon paths terminate the worker processes
    directly (the same semantics ``Pool.terminate`` gave the previous
    implementation).
    """
    if executor is None:
        return
    if not kill:
        executor.shutdown(wait=True, cancel_futures=True)
        return
    executor.shutdown(wait=False, cancel_futures=True)
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()


def _restart_backoff_s(restarts: int, deadline: float | None) -> float:
    """Capped exponential backoff with jitter, clamped to the sweep deadline."""
    base = min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * (2 ** max(0, restarts - 1)))
    delay = base * (0.5 + 0.5 * random.random())
    if deadline is not None:
        delay = min(delay, max(0.0, deadline - time.time()))
    return delay


def run_sharded_search(
    search,
    jobs: int,
    timeout: float | None,
    max_candidates: int | None,
) -> SweepSummary | None:
    """Fan the candidate space of a prepared search out over ``jobs`` workers.

    Returns ``None`` when the space cannot be sharded (no enumeration
    dimension — the identity-only space) so the caller falls back to the
    serial loop.  ``search`` must already be prepared (``_prepare`` run, its
    refinement space attached): workers reuse that state verbatim.

    Worker crashes are retried on fresh pools (``attempt`` bumped each time)
    and, past the restart budget, the remaining shards are evaluated serially
    in the parent — the sweep result never depends on which of those paths
    ran (see the module docstring's determinism contract).
    """
    space = search._space
    if space is None or space.num_dimensions() == 0:
        return None
    if max_candidates is not None and max_candidates <= 0:
        return None
    first_size = space.first_dimension_size()
    if first_size <= 1:
        return None
    tail = space.tail_size()
    # Aim for several tasks per worker so stragglers rebalance, but never let
    # one task grow past _MAX_CHUNK outer values (deadline responsiveness).
    chunk = max(1, min(-(-first_size // (jobs * 4)), _MAX_CHUNK))
    deadline = None if timeout is None else time.time() + timeout

    start_methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in start_methods else "spawn"
    context = multiprocessing.get_context(method)
    if method == "fork":
        payload = None
    else:  # pragma: no cover - exercised only on spawn-only platforms
        payload = pickle.dumps(search)

    # Portfolio-racing hooks: polled/fired in the parent only (workers are
    # bounded by the shard deadline; the hooks never cross the fork).
    should_stop = getattr(search, "_should_stop", None)
    on_incumbent = getattr(search, "_on_incumbent", None)
    cutoff_value = getattr(search, "cutoff_value", None)

    max_restarts = resolve_max_restarts()
    window = jobs * _WINDOW_PER_JOB

    global _WORKER_SEARCH
    state: dict = {"truncated": False}
    tasks = _shard_tasks(space, chunk, tail, max_candidates, deadline, state)
    retry: deque[ShardTask] = deque()
    outcomes: dict[int, ShardOutcome] = {}
    stream_best: tuple | None = None
    stream_dry = False
    stopped_on_deadline = False
    cancelled = False
    cutoff_reached = False
    degraded_to_serial = False
    pool_restarts = 0

    def record(outcome: ShardOutcome) -> None:
        """File one shard's outcome (exactly once) and feed the racing hooks."""
        nonlocal stream_best, cutoff_reached
        outcomes[outcome.index] = outcome
        if outcome.best is not None and (
            stream_best is None
            or outcome.best[0] < stream_best[0] - IMPROVEMENT_EPSILON
        ):
            stream_best = outcome.best
            if on_incumbent is not None:
                on_incumbent(stream_best[0], stream_best[1], stream_best[2])
            cutoff = cutoff_value() if cutoff_value is not None else None
            if cutoff is not None and stream_best[0] <= cutoff + 1e-9:
                cutoff_reached = True

    def draw() -> ShardTask | None:
        """Next shard to run: crash retries first, then the lazy stream."""
        nonlocal stream_dry
        if retry:
            return retry.popleft()
        task = next(tasks, None)
        if task is None:
            stream_dry = True
        return task

    _WORKER_SEARCH = search
    executor: concurrent.futures.ProcessPoolExecutor | None = None
    try:
        while not (cancelled or cutoff_reached or degraded_to_serial):
            if executor is None:
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=jobs,
                    mp_context=context,
                    initializer=_initialize_worker,
                    initargs=(payload,),
                )
            pending: dict[concurrent.futures.Future, ShardTask] = {}
            broken = False
            while True:
                while (
                    (retry or not stream_dry)
                    and not stopped_on_deadline
                    and not cutoff_reached
                    and not cancelled
                    and not broken
                    and len(pending) < window
                ):
                    if should_stop is not None and should_stop():
                        cancelled = True
                        break
                    if deadline is not None and time.time() > deadline:
                        stopped_on_deadline = True
                        break
                    task = draw()
                    if task is None:
                        break
                    try:
                        pending[executor.submit(_run_shard, task)] = task
                    except BrokenProcessPool:
                        # Pool died between completions; the task never ran.
                        retry.appendleft(task)
                        broken = True
                if cancelled or cutoff_reached:
                    break
                if not pending:
                    break
                done, _ = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED
                )
                for future in done:
                    task = pending.pop(future)
                    try:
                        record(future.result())
                    except BrokenProcessPool:
                        retry.append(replace(task, attempt=task.attempt + 1))
                        broken = True
                if broken:
                    break
            if broken:
                # Harvest stragglers that did finish, requeue the rest, and
                # decide between a fresh pool and serial degradation.
                for future, task in pending.items():
                    if future.done() and not future.cancelled():
                        try:
                            record(future.result())
                            continue
                        except BrokenProcessPool:
                            pass
                    retry.append(replace(task, attempt=task.attempt + 1))
                _stop_executor(executor, kill=True)
                executor = None
                pool_restarts += 1
                if pool_restarts > max_restarts:
                    degraded_to_serial = True
                else:
                    backoff = _restart_backoff_s(pool_restarts, deadline)
                    if backoff > 0:
                        time.sleep(backoff)
                continue
            break

        if degraded_to_serial and not (cancelled or cutoff_reached):
            # Restart budget exhausted: finish the sweep in-process.  Slower,
            # but the outcome set (and therefore the merge) is identical.
            while True:
                if should_stop is not None and should_stop():
                    cancelled = True
                    break
                if deadline is not None and time.time() > deadline:
                    stopped_on_deadline = True
                    break
                task = draw()
                if task is None:
                    break
                record(search.evaluate_shard(task))
                if cutoff_reached:
                    break
    finally:
        _stop_executor(executor, kill=cancelled or cutoff_reached or degraded_to_serial)
        _WORKER_SEARCH = None

    # Deterministic merge: index order + the serial strict-improvement rule,
    # so completion/retry order cannot influence the winner.
    best: tuple | None = None
    examined = 0
    exhausted = True
    timed_out = False
    for index in sorted(outcomes):
        outcome = outcomes[index]
        examined += outcome.examined
        timed_out = timed_out or outcome.timed_out
        if not outcome.exhausted:
            exhausted = False
        if outcome.best is not None and (
            best is None or outcome.best[0] < best[0] - IMPROVEMENT_EPSILON
        ):
            best = outcome.best
    if state["truncated"]:
        # The candidate budget ran out with further candidates left.
        exhausted = False
    if cancelled or cutoff_reached:
        # In-flight/unvisited shards were abandoned on purpose.
        exhausted = False
    if stopped_on_deadline and (retry or next(tasks, None) is not None):
        exhausted = False
    if deadline is not None and time.time() > deadline and not exhausted:
        timed_out = True
    return SweepSummary(
        best=best,
        examined=examined,
        exhausted=exhausted,
        timed_out=timed_out,
        cancelled=cancelled,
        cutoff_reached=cutoff_reached,
        pool_restarts=pool_restarts,
        degraded_to_serial=degraded_to_serial,
    )


__all__ = [
    "IMPROVEMENT_EPSILON",
    "ShardOutcome",
    "ShardTask",
    "SweepSummary",
    "resolve_jobs",
    "resolve_max_restarts",
    "run_sharded_search",
]
