"""The parallel sharded sweep engine behind the exhaustive baselines.

``Naive``/``Naive+prov`` enumerate the refinement-candidate space as nested
per-predicate sweeps.  This module shards that space along its *outermost*
dimension — contiguous runs of the first numerical predicate's candidate
constants, or of the first categorical attribute's subset chain — and fans the
shards out over a ``multiprocessing`` pool.  Each worker receives the fully
prepared search object (fork-inherited on Linux, pickled on spawn-only
platforms), evaluates its shard with the exact serial hot loop, and sends back
only a tiny ``ShardOutcome`` (best candidate + bookkeeping); the parent merges
outcomes in shard order with the serial comparison rule, so the merged result
is the one the serial loop would have produced.

Determinism contract
--------------------
* Shards are contiguous blocks of the serial enumeration order, and shard
  sizes are computed exactly (``RefinementSpace.tail_size``), so a global
  ``max_candidates`` budget truncates the very same candidate prefix the
  serial loop examines.
* The per-shard reduction and the cross-shard merge both use the serial
  strict-improvement rule (``distance < best - 1e-12``); because every shard
  is a contiguous block processed in order, the merged winner is the serial
  winner.
* Timeouts are wall-clock and therefore inherently nondeterministic — exactly
  as in the serial loop.  Workers honour the shared deadline so the pool
  drains promptly.

The pool size comes from the ``jobs=`` argument or the ``REPRO_SOLVER_JOBS``
environment variable; ``jobs=1`` bypasses this module entirely and runs the
byte-identical serial path.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import ReproError

#: Strict-improvement tolerance shared with the serial search loop.
IMPROVEMENT_EPSILON = 1e-12

#: Upper bound on outer-dimension values per shard; keeps individual tasks
#: responsive (deadline checks, budget truncation) even when the outer
#: dimension is astronomically large (categorical-first spaces).
_MAX_CHUNK = 64

#: In-flight tasks per worker; bounds parent-side submission so lazily
#: generated shard streams (2^d - 1 subsets) are never materialised.
_WINDOW_PER_JOB = 2


def resolve_jobs(jobs: int | None = None) -> int:
    """Validated worker count: explicit ``jobs=``, else ``REPRO_SOLVER_JOBS``, else 1."""
    source = "jobs"
    if jobs is None:
        raw = os.environ.get("REPRO_SOLVER_JOBS")
        if raw is None:
            return 1
        source = "REPRO_SOLVER_JOBS"
        try:
            jobs = int(raw)
        except ValueError:
            raise ReproError(
                f"invalid {source}={raw!r}: expected a positive integer"
            ) from None
    jobs = int(jobs)
    if jobs < 1:
        raise ReproError(
            f"invalid {source}={jobs}: the solver needs at least one worker "
            "(use jobs=1 for the serial path)"
        )
    return jobs


@dataclass(frozen=True)
class ShardTask:
    """One contiguous block of the candidate enumeration order.

    ``first_values`` fixes the outermost dimension; ``budget`` is the number
    of candidates this shard may examine before the global ``max_candidates``
    cap is reached (``None`` = unbounded); ``deadline`` is an absolute
    ``time.time()`` timestamp shared by every shard of one search.
    """

    index: int
    first_values: tuple
    budget: int | None
    deadline: float | None


@dataclass(frozen=True)
class ShardOutcome:
    """What a worker reports back: the shard's best candidate plus bookkeeping."""

    index: int
    examined: int
    #: ``(distance_value, refinement, deviation)`` or ``None``.
    best: tuple | None
    exhausted: bool
    timed_out: bool


#: The prepared search object, inherited by fork at pool creation (or
#: installed by :func:`_initialize_worker` from a pickle on spawn platforms).
_WORKER_SEARCH = None


def _initialize_worker(payload: bytes | None) -> None:
    global _WORKER_SEARCH
    if payload is not None:
        _WORKER_SEARCH = pickle.loads(payload)
    if _WORKER_SEARCH is not None:
        _WORKER_SEARCH.reset_after_fork()


def _run_shard(task: ShardTask) -> ShardOutcome:
    return _WORKER_SEARCH.evaluate_shard(task)


def _shard_tasks(
    space,
    chunk: int,
    tail: int,
    max_candidates: int | None,
    deadline: float | None,
    state: dict,
) -> Iterator[ShardTask]:
    """Lazily cut the outer dimension into budgeted shard tasks.

    Sets ``state["truncated"]`` when the global ``max_candidates`` budget ran
    out while further candidates remained — the exact condition under which
    the serial loop reports ``exhausted=False``.
    """
    buffer: list = []
    offset = 0
    index = 0
    for value in space.first_dimension_values():
        buffer.append(value)
        if len(buffer) < chunk:
            continue
        budget = None if max_candidates is None else max_candidates - offset
        if budget is not None and budget <= 0:
            state["truncated"] = True
            return
        yield ShardTask(index, tuple(buffer), budget, deadline)
        offset += len(buffer) * tail
        index += 1
        buffer = []
    if buffer:
        budget = None if max_candidates is None else max_candidates - offset
        if budget is not None and budget <= 0:
            state["truncated"] = True
            return
        yield ShardTask(index, tuple(buffer), budget, deadline)


@dataclass
class SweepSummary:
    """The merged outcome of a sharded search (mirrors the serial loop's state)."""

    best: tuple | None
    examined: int
    exhausted: bool
    timed_out: bool
    #: Stopped by the search's cooperative ``should_stop`` hook.
    cancelled: bool = False
    #: The incumbent matched the proven ``cutoff`` lower bound.
    cutoff_reached: bool = False


def run_sharded_search(
    search,
    jobs: int,
    timeout: float | None,
    max_candidates: int | None,
) -> SweepSummary | None:
    """Fan the candidate space of a prepared search out over ``jobs`` workers.

    Returns ``None`` when the space cannot be sharded (no enumeration
    dimension — the identity-only space) so the caller falls back to the
    serial loop.  ``search`` must already be prepared (``_prepare`` run, its
    refinement space attached): workers reuse that state verbatim.
    """
    space = search._space
    if space is None or space.num_dimensions() == 0:
        return None
    if max_candidates is not None and max_candidates <= 0:
        return None
    first_size = space.first_dimension_size()
    if first_size <= 1:
        return None
    tail = space.tail_size()
    # Aim for several tasks per worker so stragglers rebalance, but never let
    # one task grow past _MAX_CHUNK outer values (deadline responsiveness).
    chunk = max(1, min(-(-first_size // (jobs * 4)), _MAX_CHUNK))
    deadline = None if timeout is None else time.time() + timeout

    start_methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in start_methods else "spawn"
    context = multiprocessing.get_context(method)
    if method == "fork":
        payload = None
    else:  # pragma: no cover - exercised only on spawn-only platforms
        payload = pickle.dumps(search)

    # Portfolio-racing hooks: polled/fired in the parent only (workers are
    # bounded by the shard deadline; the hooks never cross the fork).
    should_stop = getattr(search, "_should_stop", None)
    on_incumbent = getattr(search, "_on_incumbent", None)
    cutoff_value = getattr(search, "cutoff_value", None)

    global _WORKER_SEARCH
    state: dict = {"truncated": False}
    tasks = _shard_tasks(space, chunk, tail, max_candidates, deadline, state)
    best: tuple | None = None
    examined = 0
    exhausted = True
    timed_out = False
    cancelled = False
    cutoff_reached = False
    _WORKER_SEARCH = search
    try:
        with context.Pool(
            processes=jobs, initializer=_initialize_worker, initargs=(payload,)
        ) as pool:
            window = jobs * _WINDOW_PER_JOB
            pending: deque = deque()
            stream_dry = False
            stopped_on_deadline = False
            while True:
                while (
                    not stream_dry
                    and not stopped_on_deadline
                    and not cutoff_reached
                    and len(pending) < window
                ):
                    if should_stop is not None and should_stop():
                        cancelled = True
                        break
                    if deadline is not None and time.time() > deadline:
                        stopped_on_deadline = True
                        break
                    task = next(tasks, None)
                    if task is None:
                        stream_dry = True
                        break
                    pending.append(pool.apply_async(_run_shard, (task,)))
                if cancelled or cutoff_reached:
                    # Abandon in-flight shards; leaving the with-block
                    # terminates the pool, so a cancelled race never holds
                    # workers past the decision.
                    exhausted = False
                    break
                if not pending:
                    break
                outcome: ShardOutcome = pending.popleft().get()
                examined += outcome.examined
                timed_out = timed_out or outcome.timed_out
                if not outcome.exhausted:
                    exhausted = False
                if outcome.best is not None and (
                    best is None or outcome.best[0] < best[0] - IMPROVEMENT_EPSILON
                ):
                    best = outcome.best
                    if on_incumbent is not None:
                        on_incumbent(best[0], best[1], best[2])
                    cutoff = cutoff_value() if cutoff_value is not None else None
                    if cutoff is not None and best[0] <= cutoff + 1e-9:
                        cutoff_reached = True
            if state["truncated"]:
                # The candidate budget ran out with further candidates left.
                exhausted = False
            if stopped_on_deadline and next(tasks, None) is not None:
                exhausted = False
        if deadline is not None and time.time() > deadline and not exhausted:
            timed_out = True
    finally:
        _WORKER_SEARCH = None
    return SweepSummary(
        best=best,
        examined=examined,
        exhausted=exhausted,
        timed_out=timed_out,
        cancelled=cancelled,
        cutoff_reached=cutoff_reached,
    )


__all__ = [
    "IMPROVEMENT_EPSILON",
    "ShardOutcome",
    "ShardTask",
    "SweepSummary",
    "resolve_jobs",
    "run_sharded_search",
]
