"""An Erica-style baseline (Li et al., VLDB 2023) for the Section 5.3 comparison.

Erica refines a selection query so that cardinality constraints over groups in
the *entire output* (not a top-k prefix) are satisfied exactly, minimising a
predicate-based distance.  The paper compares against Erica by restricting the
output size to exactly ``k`` so that constraints "over the output" become
constraints "over the top-k".

This re-implementation follows that published problem statement:

* constraints count group members over the whole output;
* constraint satisfaction is exact (no deviation slack);
* an optional ``output_size`` equality constraint restricts the number of
  returned tuples (the adaptation the paper applies in Section 5.3);
* the objective is the predicate distance;
* several refinements can be returned, enumerated in order of increasing
  distance by adding no-good cuts and re-solving — mirroring Erica's ranked
  list of refinements.

Engine notes:

* **Lineage aggregation.**  For non-DISTINCT queries a tuple is in the output
  exactly when all of its lineage atoms hold, so tuples sharing a lineage set
  and a group-membership signature are interchangeable for whole-output
  counting.  Each such class collapses into one bounded integer *count*
  variable ``n_c ∈ [0, |c|]`` tied to its lineage's selection binary
  (``n_c = |c|·b_L``) — the whole-output analogue of the paper's Section 4
  lineage-class merging.  The HiGHS model shrinks by the duplicate factor
  while extracted refinements (which read only the predicate variables) are
  unchanged.  DISTINCT queries keep the per-tuple encoding: de-duplication
  makes tuples of a class non-interchangeable.
* **Incremental enumeration.**  The lowered standard form is cached on the
  :class:`~repro.milp.Model`; each no-good cut appends rows to the cached CSR
  instead of re-lowering, so ``num_solutions = n`` performs exactly one full
  lowering.  When a time budget is given it is split evenly across the
  remaining solves, and the previous optimum is passed to the
  branch-and-bound backend as a proven lower bound (cuts only move the
  optimum up), letting it stop as soon as it matches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.constraints import CardinalityConstraint, ConstraintSet
from repro.core.distances import PredicateDistance
from repro.core.milp_builder import (
    RowBatch,
    build_numerical_predicate_variables,
    flush_rows,
    selection_rows,
)
from repro.core.refinement import Refinement
from repro.exceptions import RefinementError
from repro.milp.expression import Variable, linear_sum
from repro.milp.model import SENSE_EQ, SENSE_GE, SENSE_LE, Model
from repro.milp.solution import Solution
from repro.provenance.lineage import (
    AnnotatedDatabase,
    CategoricalAtom,
    NumericalAtom,
    annotate,
)
from repro.relational.database import Database
from repro.relational.executor import QueryExecutor
from repro.relational.predicates import Operator
from repro.relational.query import SPJQuery


@dataclass
class EricaRefinement:
    """One refinement returned by the baseline, with its predicate distance."""

    refinement: Refinement
    refined_query: SPJQuery
    distance_value: float
    output_size: int


@dataclass
class EricaResult:
    """Outcome of an Erica search: zero or more refinements, closest first."""

    refinements: list[EricaRefinement] = field(default_factory=list)
    setup_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    model_statistics: dict[str, int] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return bool(self.refinements)

    @property
    def best(self) -> EricaRefinement | None:
        return self.refinements[0] if self.refinements else None


class EricaBaseline:
    """Provenance-based refinement for whole-output cardinality constraints.

    Parameters
    ----------
    aggregate_lineage:
        ``None`` (default) aggregates lineage classes whenever the query is
        not DISTINCT; ``False`` forces the per-tuple encoding (used by the
        golden tests to compare the two models); ``True`` insists on
        aggregation and raises for DISTINCT queries.
    block_lowering:
        Emit constraint families as COO row blocks (default) or as one
        ``LinearConstraint`` per row; both lower to identical matrices.
    """

    def __init__(
        self,
        database: Database,
        query: SPJQuery,
        constraints: ConstraintSet,
        output_size: int | None = None,
        backend: str = "auto",
        executor_backend: str | None = None,
        executor_db: str | None = None,
        aggregate_lineage: bool | None = None,
        block_lowering: bool = True,
        executor: QueryExecutor | None = None,
        annotated: AnnotatedDatabase | None = None,
    ) -> None:
        if aggregate_lineage and query.distinct:
            raise RefinementError(
                "lineage aggregation is unavailable for DISTINCT queries "
                "(de-duplication makes same-lineage tuples non-interchangeable)"
            )
        self.database = database
        self.query = query
        self.constraints = constraints
        self.output_size = output_size
        self.backend = backend
        self.aggregate_lineage = aggregate_lineage
        self.block_lowering = block_lowering
        self.distance = PredicateDistance()
        # A warm dataset session shares its executor and pre-annotated ~Q(D);
        # one-shot callers build both here.
        self._executor = executor or QueryExecutor(
            database, backend=executor_backend, db_path=executor_db
        )
        self._warm_annotated = annotated

    def solve(self, num_solutions: int = 1, time_limit: float | None = None) -> EricaResult:
        """Find up to ``num_solutions`` refinements, closest (by DIS_pred) first."""
        if num_solutions < 1:
            raise RefinementError("num_solutions must be at least 1")
        setup_started = time.perf_counter()
        # Sharing the executor reuses its cached join/sort of ~Q(D) and, on
        # the sqlite backend, pushes the lineage-atom scan into SQL.
        annotated = self._warm_annotated
        if annotated is None:
            annotated = annotate(self.query, self.database, executor=self._executor)
        model, categorical_variables, constant_variables, indicator_variables = (
            self._build(annotated)
        )
        setup_seconds = time.perf_counter() - setup_started

        deadline = (
            setup_started + setup_seconds + time_limit if time_limit is not None else None
        )
        refinements: list[EricaRefinement] = []
        solve_seconds = 0.0
        previous_objective: float | None = None
        for round_index in range(num_solutions):
            options: dict[str, object] = {}
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                # Split the remaining budget evenly across the remaining
                # solves, so an easy early solve donates its slack to the
                # later, cut-constrained ones.
                options["time_limit"] = remaining / (num_solutions - round_index)
            if previous_objective is not None:
                # Adding a no-good cut can only increase the optimum, so the
                # previous objective is a proven lower bound (used by the
                # branch-and-bound backend for early termination; the scipy
                # backend ignores it).
                options["known_lower_bound"] = previous_objective
            solution = model.solve(self.backend, **options)
            solve_seconds += solution.solve_seconds
            if not solution.is_feasible:
                break
            if solution.is_optimal:
                # Only a *proven* optimum is a valid lower bound for later
                # rounds; a TIME_LIMIT/NODE_LIMIT incumbent may overshoot the
                # true optimum and would let the fallback backend stop at a
                # suboptimal solution.  (An older proven bound stays valid —
                # cuts only move the optimum up — just weaker.)
                previous_objective = solution.objective_value
            refinement = self._extract(
                annotated, solution, categorical_variables, constant_variables,
                indicator_variables,
            )
            refined_query = refinement.apply(self.query)
            refined_result = self._executor.evaluate(refined_query)
            refinements.append(
                EricaRefinement(
                    refinement=refinement,
                    refined_query=refined_query,
                    distance_value=self.distance.evaluate_queries(self.query, refined_query),
                    output_size=len(refined_result),
                )
            )
            self._add_no_good_cut(
                model, solution, categorical_variables, indicator_variables
            )

        statistics = dict(model.summary())
        statistics["full_lowerings"] = model.full_lowerings
        statistics["incremental_extensions"] = model.incremental_extensions
        return EricaResult(
            refinements=refinements,
            setup_seconds=setup_seconds,
            solve_seconds=solve_seconds,
            total_seconds=setup_seconds + solve_seconds,
            model_statistics=statistics,
        )

    # -- model construction ------------------------------------------------------------

    def _build(self, annotated: AnnotatedDatabase):
        model = Model(f"erica[{self.query.name}]")
        categorical_variables: dict[tuple[str, object], Variable] = {}
        constant_variables: dict[tuple[str, Operator], Variable] = {}
        indicator_variables: dict[tuple[str, Operator, float], Variable] = {}

        for predicate in self.query.categorical_predicates:
            for value in annotated.categorical_domains[predicate.attribute]:
                categorical_variables[(predicate.attribute, value)] = model.binary_var(
                    f"cat[{predicate.attribute}={value}]"
                )
        for predicate in self.query.numerical_predicates:
            if predicate.operator is Operator.EQUAL:
                raise RefinementError(
                    "numerical equality predicates are not supported by the baseline"
                )
        build_numerical_predicate_variables(
            model, self.query, annotated, constant_variables, indicator_variables,
            self.block_lowering,
        )

        aggregate = (
            self.aggregate_lineage
            if self.aggregate_lineage is not None
            else not self.query.distinct
        )
        if aggregate:
            self._build_aggregated_selection(
                model, annotated, categorical_variables, indicator_variables
            )
        else:
            self._build_tuple_selection(
                model, annotated, categorical_variables, indicator_variables
            )

        context = _EricaObjectiveContext(
            model, self.query, annotated, categorical_variables, constant_variables
        )
        model.minimize(self.distance.build_objective(context))
        return model, categorical_variables, constant_variables, indicator_variables

    def _build_tuple_selection(
        self, model: Model, annotated: AnnotatedDatabase,
        categorical_variables, indicator_variables,
    ) -> None:
        """One binary per tuple; selection = all lineage atoms hold and no
        better-ranked DISTINCT duplicate was selected."""
        selection: dict[int, Variable] = {}
        for annotated_tuple in annotated.tuples:
            selection[annotated_tuple.position] = model.binary_var(
                f"r[{annotated_tuple.position}]"
            )
        num_predicates = self.query.num_predicates
        batch = RowBatch()
        for annotated_tuple in annotated.tuples:
            position = annotated_tuple.position
            selection_rows(
                batch,
                [
                    model.index_of(
                        self._atom_variable(atom, categorical_variables, indicator_variables)
                    )
                    for atom in annotated_tuple.lineage
                ],
                [
                    model.index_of(selection[duplicate])
                    for duplicate in annotated.duplicates_before(position)
                ],
                model.index_of(selection[position]),
                num_predicates,
            )

        # Whole-output group cardinality constraints (exact satisfaction).
        for constraint in self.constraints:
            cols = [
                model.index_of(selection[annotated_tuple.position])
                for annotated_tuple in annotated.tuples
                if constraint.group.matches(annotated_tuple.values)
            ]
            self._add_cardinality(batch, constraint, cols, [1.0] * len(cols))

        if self.output_size is not None:
            cols = [model.index_of(variable) for variable in selection.values()]
            batch.add_row(
                cols, [1.0] * len(cols), SENSE_EQ, float(self.output_size),
                name="output_size",
            )
        flush_rows(model, batch, self.block_lowering)

    def _build_aggregated_selection(
        self, model: Model, annotated: AnnotatedDatabase,
        categorical_variables, indicator_variables,
    ) -> None:
        """Lineage-aggregated encoding (non-DISTINCT queries).

        One selection binary ``b_L`` per lineage class, one bounded integer
        count variable ``n_c = |c|·b_L`` per (lineage, group signature) class;
        cardinality and output-size rows count over the ``n_c``.
        """
        constraints = list(self.constraints)
        # (lineage, signature) classes in first-appearance order.
        class_sizes: dict[tuple[frozenset, tuple[bool, ...]], int] = {}
        for annotated_tuple in annotated.tuples:
            signature = tuple(
                constraint.group.matches(annotated_tuple.values)
                for constraint in constraints
            )
            key = (annotated_tuple.lineage, signature)
            class_sizes[key] = class_sizes.get(key, 0) + 1

        lineage_binaries: dict[frozenset, Variable] = {}
        for lineage, _ in class_sizes:
            if lineage not in lineage_binaries:
                index = len(lineage_binaries)
                lineage_binaries[lineage] = model.binary_var(f"r_lineage[{index}]")
        count_variables: dict[tuple[frozenset, tuple[bool, ...]], Variable] = {}
        for class_index, (key, size) in enumerate(class_sizes.items()):
            count_variables[key] = model.integer_var(
                f"n_class[{class_index}]", lower=0.0, upper=float(size)
            )

        num_predicates = self.query.num_predicates
        batch = RowBatch()
        for lineage, variable in lineage_binaries.items():
            # b_L = 1 <=> all lineage atoms hold.
            selection_rows(
                batch,
                [
                    model.index_of(
                        self._atom_variable(atom, categorical_variables, indicator_variables)
                    )
                    for atom in lineage
                ],
                (),
                model.index_of(variable),
                num_predicates,
            )
        for (lineage, _signature), variable in count_variables.items():
            size = class_sizes[(lineage, _signature)]
            batch.add_row(
                [model.index_of(variable), model.index_of(lineage_binaries[lineage])],
                [1.0, -float(size)],
                SENSE_EQ,
                0.0,
            )

        for constraint_index, constraint in enumerate(constraints):
            cols = [
                model.index_of(variable)
                for (_, signature), variable in count_variables.items()
                if signature[constraint_index]
            ]
            self._add_cardinality(batch, constraint, cols, [1.0] * len(cols))

        if self.output_size is not None:
            cols = [model.index_of(variable) for variable in count_variables.values()]
            batch.add_row(
                cols, [1.0] * len(cols), SENSE_EQ, float(self.output_size),
                name="output_size",
            )
        flush_rows(model, batch, self.block_lowering)

    @staticmethod
    def _add_cardinality(
        batch: RowBatch, constraint: CardinalityConstraint, cols, coeffs
    ) -> None:
        sense = SENSE_GE if constraint.bound_type.sign > 0 else SENSE_LE
        batch.add_row(
            cols, coeffs, sense, float(constraint.bound),
            name=f"erica[{constraint.label()}]",
        )

    @staticmethod
    def _atom_variable(atom, categorical_variables, indicator_variables) -> Variable:
        if isinstance(atom, CategoricalAtom):
            return categorical_variables[(atom.attribute, atom.value)]
        assert isinstance(atom, NumericalAtom)
        return indicator_variables[(atom.attribute, atom.operator, atom.value)]

    # -- extraction & solution enumeration -------------------------------------------------

    def _extract(
        self,
        annotated: AnnotatedDatabase,
        solution: Solution,
        categorical_variables,
        constant_variables,
        indicator_variables,
    ) -> Refinement:
        categorical: dict[str, frozenset] = {}
        for predicate in self.query.categorical_predicates:
            values = frozenset(
                value
                for value in annotated.categorical_domains[predicate.attribute]
                if solution.value(categorical_variables[(predicate.attribute, value)]) > 0.5
            )
            if not values:
                values = predicate.values
            categorical[predicate.attribute] = values
        numerical: dict[tuple[str, Operator], float] = {}
        for predicate in self.query.numerical_predicates:
            key = (predicate.attribute, predicate.operator)
            selected = [
                value
                for value in annotated.numeric_domain(predicate.attribute)
                if solution.value(
                    indicator_variables[(predicate.attribute, predicate.operator, value)]
                )
                > 0.5
            ]
            if selected:
                numerical[key] = (
                    min(selected) if predicate.operator.is_lower_bound else max(selected)
                )
            else:
                numerical[key] = solution.value(constant_variables[key])
        return Refinement(numerical=numerical, categorical=categorical)

    def _add_no_good_cut(
        self, model: Model, solution: Solution, categorical_variables, indicator_variables
    ) -> None:
        """Exclude the binary signature of ``solution`` so the next solve differs.

        The appended row extends the model's cached standard form in place
        (one CSR row), so re-solving does not re-lower the whole program.
        """
        ones = []
        zeros = []
        for variable in list(categorical_variables.values()) + list(
            indicator_variables.values()
        ):
            if solution.value(variable) > 0.5:
                ones.append(variable)
            else:
                zeros.append(variable)
        # Standard no-good cut: at least one binary must flip.
        expression = linear_sum(1 - v for v in ones) + linear_sum(zeros)
        model.add_constraint(expression >= 1, name=f"no_good[{model.num_constraints}]")


@dataclass
class _EricaObjectiveContext:
    """The minimal context PredicateDistance needs (duck-typed MILPBuildContext)."""

    model: Model
    query: SPJQuery
    annotated: AnnotatedDatabase
    categorical_variables: dict
    numerical_constant_variables: dict


__all__ = ["EricaBaseline", "EricaRefinement", "EricaResult"]
