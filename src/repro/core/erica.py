"""An Erica-style baseline (Li et al., VLDB 2023) for the Section 5.3 comparison.

Erica refines a selection query so that cardinality constraints over groups in
the *entire output* (not a top-k prefix) are satisfied exactly, minimising a
predicate-based distance.  The paper compares against Erica by restricting the
output size to exactly ``k`` so that constraints "over the output" become
constraints "over the top-k".

This re-implementation follows that published problem statement:

* constraints count group members over the whole output;
* constraint satisfaction is exact (no deviation slack);
* an optional ``output_size`` equality constraint restricts the number of
  returned tuples (the adaptation the paper applies in Section 5.3);
* the objective is the predicate distance;
* several refinements can be returned, enumerated in order of increasing
  distance by adding no-good cuts and re-solving — mirroring Erica's ranked
  list of refinements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.constraints import CardinalityConstraint, ConstraintSet
from repro.core.distances import PredicateDistance
from repro.core.refinement import Refinement
from repro.exceptions import RefinementError
from repro.milp.expression import LinearExpression, Variable, linear_sum
from repro.milp.model import Model
from repro.milp.solution import Solution
from repro.provenance.lineage import (
    AnnotatedDatabase,
    CategoricalAtom,
    NumericalAtom,
    annotate,
)
from repro.relational.database import Database
from repro.relational.executor import QueryExecutor
from repro.relational.predicates import Operator
from repro.relational.query import SPJQuery


@dataclass
class EricaRefinement:
    """One refinement returned by the baseline, with its predicate distance."""

    refinement: Refinement
    refined_query: SPJQuery
    distance_value: float
    output_size: int


@dataclass
class EricaResult:
    """Outcome of an Erica search: zero or more refinements, closest first."""

    refinements: list[EricaRefinement] = field(default_factory=list)
    setup_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def feasible(self) -> bool:
        return bool(self.refinements)

    @property
    def best(self) -> EricaRefinement | None:
        return self.refinements[0] if self.refinements else None


class EricaBaseline:
    """Provenance-based refinement for whole-output cardinality constraints."""

    def __init__(
        self,
        database: Database,
        query: SPJQuery,
        constraints: ConstraintSet,
        output_size: int | None = None,
        backend: str = "auto",
        executor_backend: str | None = None,
        executor_db: str | None = None,
    ) -> None:
        self.database = database
        self.query = query
        self.constraints = constraints
        self.output_size = output_size
        self.backend = backend
        self.distance = PredicateDistance()
        self._executor = QueryExecutor(
            database, backend=executor_backend, db_path=executor_db
        )

    def solve(self, num_solutions: int = 1, time_limit: float | None = None) -> EricaResult:
        """Find up to ``num_solutions`` refinements, closest (by DIS_pred) first."""
        if num_solutions < 1:
            raise RefinementError("num_solutions must be at least 1")
        setup_started = time.perf_counter()
        # Sharing the executor reuses its cached join/sort of ~Q(D) and, on
        # the sqlite backend, pushes the lineage-atom scan into SQL.
        annotated = annotate(self.query, self.database, executor=self._executor)
        model, categorical_variables, constant_variables, indicator_variables = (
            self._build(annotated)
        )
        setup_seconds = time.perf_counter() - setup_started

        refinements: list[EricaRefinement] = []
        solve_seconds = 0.0
        for _ in range(num_solutions):
            solution = model.solve(self.backend, time_limit=time_limit)
            solve_seconds += solution.solve_seconds
            if not solution.is_feasible:
                break
            refinement = self._extract(
                annotated, solution, categorical_variables, constant_variables,
                indicator_variables,
            )
            refined_query = refinement.apply(self.query)
            refined_result = self._executor.evaluate(refined_query)
            refinements.append(
                EricaRefinement(
                    refinement=refinement,
                    refined_query=refined_query,
                    distance_value=self.distance.evaluate_queries(self.query, refined_query),
                    output_size=len(refined_result),
                )
            )
            self._add_no_good_cut(
                model, solution, categorical_variables, indicator_variables
            )

        return EricaResult(
            refinements=refinements,
            setup_seconds=setup_seconds,
            solve_seconds=solve_seconds,
            total_seconds=setup_seconds + solve_seconds,
        )

    # -- model construction ------------------------------------------------------------

    def _build(self, annotated: AnnotatedDatabase):
        model = Model(f"erica[{self.query.name}]")
        categorical_variables: dict[tuple[str, object], Variable] = {}
        constant_variables: dict[tuple[str, Operator], Variable] = {}
        indicator_variables: dict[tuple[str, Operator, float], Variable] = {}

        for predicate in self.query.categorical_predicates:
            for value in annotated.categorical_domains[predicate.attribute]:
                categorical_variables[(predicate.attribute, value)] = model.binary_var(
                    f"cat[{predicate.attribute}={value}]"
                )
        for predicate in self.query.numerical_predicates:
            if predicate.operator is Operator.EQUAL:
                raise RefinementError(
                    "numerical equality predicates are not supported by the baseline"
                )
            attribute, operator = predicate.attribute, predicate.operator
            domain = annotated.numeric_domain(attribute)
            big_m = annotated.big_m(attribute)
            delta = annotated.smallest_gap(attribute)
            strict = 1.0 if operator.is_strict else 0.0
            constant = model.continuous_var(
                f"const[{attribute},{operator.value}]",
                lower=min(domain) - 1.0,
                upper=max(domain) + 1.0,
            )
            constant_variables[(attribute, operator)] = constant
            for value in domain:
                indicator = model.binary_var(f"num[{attribute}{operator.value}{value:g}]")
                indicator_variables[(attribute, operator, value)] = indicator
                if operator.is_lower_bound:
                    model.add_constraint(constant + big_m * indicator >= value + (1 - strict) * delta)
                    model.add_constraint(constant - big_m * (1 - indicator) <= value - strict * delta)
                else:
                    model.add_constraint(constant - big_m * indicator <= value - (1 - strict) * delta)
                    model.add_constraint(constant + big_m * (1 - indicator) >= value + strict * delta)

        # One selection variable per tuple; selection = all lineage atoms hold
        # and no better-ranked DISTINCT duplicate was selected.
        selection: dict[int, Variable] = {}
        for annotated_tuple in annotated.tuples:
            selection[annotated_tuple.position] = model.binary_var(
                f"r[{annotated_tuple.position}]"
            )
        num_predicates = self.query.num_predicates
        for annotated_tuple in annotated.tuples:
            variable = selection[annotated_tuple.position]
            duplicates = annotated.duplicates_before(annotated_tuple.position)
            lineage_sum = linear_sum(
                self._atom_variable(atom, categorical_variables, indicator_variables)
                for atom in annotated_tuple.lineage
            )
            duplicate_sum = linear_sum(1 - selection[other] for other in duplicates)
            bound = num_predicates + len(duplicates)
            body = lineage_sum + duplicate_sum - bound * variable
            model.add_constraint(body >= 0)
            model.add_constraint(body <= bound - 1)

        # Whole-output group cardinality constraints (exact satisfaction).
        for constraint in self.constraints:
            members = [
                selection[annotated_tuple.position]
                for annotated_tuple in annotated.tuples
                if constraint.group.matches(annotated_tuple.values)
            ]
            count = linear_sum(members) if members else LinearExpression()
            self._add_cardinality(model, constraint, count)

        if self.output_size is not None:
            total = linear_sum(selection.values())
            model.add_constraint(total == float(self.output_size), name="output_size")

        context = _EricaObjectiveContext(
            model, self.query, annotated, categorical_variables, constant_variables
        )
        model.minimize(self.distance.build_objective(context))
        return model, categorical_variables, constant_variables, indicator_variables

    @staticmethod
    def _add_cardinality(model: Model, constraint: CardinalityConstraint, count) -> None:
        if constraint.bound_type.sign > 0:
            model.add_constraint(count >= constraint.bound, name=f"erica[{constraint.label()}]")
        else:
            model.add_constraint(count <= constraint.bound, name=f"erica[{constraint.label()}]")

    @staticmethod
    def _atom_variable(atom, categorical_variables, indicator_variables) -> Variable:
        if isinstance(atom, CategoricalAtom):
            return categorical_variables[(atom.attribute, atom.value)]
        assert isinstance(atom, NumericalAtom)
        return indicator_variables[(atom.attribute, atom.operator, atom.value)]

    # -- extraction & solution enumeration -------------------------------------------------

    def _extract(
        self,
        annotated: AnnotatedDatabase,
        solution: Solution,
        categorical_variables,
        constant_variables,
        indicator_variables,
    ) -> Refinement:
        categorical: dict[str, frozenset] = {}
        for predicate in self.query.categorical_predicates:
            values = frozenset(
                value
                for value in annotated.categorical_domains[predicate.attribute]
                if solution.value(categorical_variables[(predicate.attribute, value)]) > 0.5
            )
            if not values:
                values = predicate.values
            categorical[predicate.attribute] = values
        numerical: dict[tuple[str, Operator], float] = {}
        for predicate in self.query.numerical_predicates:
            key = (predicate.attribute, predicate.operator)
            selected = [
                value
                for value in annotated.numeric_domain(predicate.attribute)
                if solution.value(
                    indicator_variables[(predicate.attribute, predicate.operator, value)]
                )
                > 0.5
            ]
            if selected:
                numerical[key] = (
                    min(selected) if predicate.operator.is_lower_bound else max(selected)
                )
            else:
                numerical[key] = solution.value(constant_variables[key])
        return Refinement(numerical=numerical, categorical=categorical)

    def _add_no_good_cut(
        self, model: Model, solution: Solution, categorical_variables, indicator_variables
    ) -> None:
        """Exclude the binary signature of ``solution`` so the next solve differs."""
        ones = []
        zeros = []
        for variable in list(categorical_variables.values()) + list(
            indicator_variables.values()
        ):
            if solution.value(variable) > 0.5:
                ones.append(variable)
            else:
                zeros.append(variable)
        # Standard no-good cut: at least one binary must flip.
        expression = linear_sum(1 - v for v in ones) + linear_sum(zeros)
        model.add_constraint(expression >= 1, name=f"no_good[{len(model.constraints)}]")


@dataclass
class _EricaObjectiveContext:
    """The minimal context PredicateDistance needs (duck-typed MILPBuildContext)."""

    model: Model
    query: SPJQuery
    annotated: AnnotatedDatabase
    categorical_variables: dict
    numerical_constant_variables: dict


__all__ = ["EricaBaseline", "EricaRefinement", "EricaResult"]
