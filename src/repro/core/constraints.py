"""Groups, cardinality constraints over top-k prefixes, and deviation.

A *group* (Section 2.1) is defined by a conjunction of equality conditions on
categorical attributes, e.g. ``Gender = 'F'`` or ``Gender = 'F' AND Income =
'Low'``.  A *cardinality constraint* ``l_{G,k} = n`` (resp. ``u_{G,k} = n``)
requires at least (resp. at most) ``n`` tuples of group ``G`` among the top-k
of the ranking.  The *deviation* of a ranking from a constraint set
(Definition 2.6) is the mean relative shortfall across constraints, where
over-satisfaction is not penalised.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from repro.exceptions import ConstraintError
from repro.relational.executor import RankedResult


class Group:
    """A data subgroup defined by equality conditions on categorical attributes."""

    __slots__ = ("_conditions", "condition_map")

    def __init__(self, conditions: Mapping[str, object]) -> None:
        if not conditions:
            raise ConstraintError("a group needs at least one attribute condition")
        self._conditions = tuple(sorted(conditions.items(), key=lambda item: item[0]))
        #: Read-only attribute -> value mapping, cached so per-candidate
        #: constraint counting never rebuilds a dict.
        self.condition_map: Mapping[str, object] = MappingProxyType(
            dict(self._conditions)
        )

    @property
    def conditions(self) -> dict[str, object]:
        return dict(self._conditions)

    @property
    def attributes(self) -> list[str]:
        return [attribute for attribute, _ in self._conditions]

    def matches(self, values: Mapping[str, object]) -> bool:
        """Whether a row (attribute → value mapping) belongs to this group."""
        return all(values.get(attribute) == value for attribute, value in self._conditions)

    def label(self) -> str:
        """Human-readable label, e.g. ``Gender=F``."""
        return ",".join(f"{attribute}={value}" for attribute, value in self._conditions)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._conditions == other._conditions

    def __hash__(self) -> int:
        return hash(self._conditions)

    def __repr__(self) -> str:
        return f"Group({self.label()})"


class BoundType(enum.Enum):
    """Whether a constraint is a lower bound (``l``) or an upper bound (``u``)."""

    LOWER = "lower"
    UPPER = "upper"

    @property
    def sign(self) -> int:
        """The paper's ``Sign(c)``: +1 for lower bounds, -1 for upper bounds."""
        return 1 if self is BoundType.LOWER else -1


@dataclass(frozen=True)
class CardinalityConstraint:
    """A constraint ``l_{G,k} = n`` or ``u_{G,k} = n``.

    Attributes
    ----------
    group:
        The protected group the constraint talks about.
    k:
        The ranking prefix length the constraint applies to.
    bound:
        The required cardinality ``n``.
    bound_type:
        Lower (at least ``n``) or upper (at most ``n``).
    """

    group: Group
    k: int
    bound: int
    bound_type: BoundType

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ConstraintError(f"constraint prefix k must be positive, got {self.k}")
        if self.bound < 0:
            raise ConstraintError(f"constraint bound must be non-negative, got {self.bound}")
        if self.bound > self.k:
            raise ConstraintError(
                f"constraint bound {self.bound} cannot exceed its prefix length {self.k}"
            )

    # -- semantics ---------------------------------------------------------------

    def count_in(self, result: RankedResult) -> int:
        """Number of top-k tuples of ``result`` belonging to the group.

        Uses the vectorized equality count over the columnar top-``k`` when
        available, which is the hot operation of the exhaustive baselines.
        """
        return result.count_group_in_top_k(self.k, self.group.condition_map)

    def shortfall(self, count: int) -> int:
        """The paper's ``max(Sign(c) * (n - count), 0)``."""
        return max(self.bound_type.sign * (self.bound - count), 0)

    def deviation(self, result: RankedResult) -> float:
        """Relative violation of this single constraint on ``result``."""
        return self.shortfall(self.count_in(result)) / self.denominator()

    def is_satisfied(self, result: RankedResult) -> bool:
        return self.shortfall(self.count_in(result)) == 0

    def denominator(self) -> float:
        """The paper's relative-violation normaliser ``n``.

        An upper bound of 0 ("no tuples of G in the top-k") would otherwise
        divide by zero, so clamp at 1.  Public so count-based fast paths
        (e.g. the batched Naive+prov deviation) share the one clamp rule.
        """
        return float(max(self.bound, 1))

    def label(self) -> str:
        symbol = "l" if self.bound_type is BoundType.LOWER else "u"
        return f"{symbol}[{self.group.label()},k={self.k}]={self.bound}"

    def __repr__(self) -> str:
        return f"CardinalityConstraint({self.label()})"


def at_least(n: int, k: int, **conditions) -> CardinalityConstraint:
    """Shorthand for a lower-bound constraint, e.g. ``at_least(3, 6, Gender="F")``."""
    return CardinalityConstraint(Group(conditions), k=k, bound=n, bound_type=BoundType.LOWER)


def at_most(n: int, k: int, **conditions) -> CardinalityConstraint:
    """Shorthand for an upper-bound constraint, e.g. ``at_most(1, 3, Income="High")``."""
    return CardinalityConstraint(Group(conditions), k=k, bound=n, bound_type=BoundType.UPPER)


class ConstraintSet:
    """A set of cardinality constraints (the paper's ``C``)."""

    def __init__(self, constraints: Iterable[CardinalityConstraint]) -> None:
        constraints = list(constraints)
        if not constraints:
            raise ConstraintError("a constraint set must contain at least one constraint")
        self._constraints = tuple(constraints)

    @property
    def constraints(self) -> tuple[CardinalityConstraint, ...]:
        return self._constraints

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[CardinalityConstraint]:
        return iter(self._constraints)

    @property
    def k_star(self) -> int:
        """The largest prefix length with a constraint (the paper's ``k*``)."""
        return max(constraint.k for constraint in self._constraints)

    @property
    def k_values(self) -> list[int]:
        """Distinct prefix lengths, ascending."""
        return sorted({constraint.k for constraint in self._constraints})

    @property
    def groups(self) -> list[Group]:
        """Distinct groups mentioned by the constraints."""
        seen: list[Group] = []
        for constraint in self._constraints:
            if constraint.group not in seen:
                seen.append(constraint.group)
        return seen

    def bound_types_per_group(self) -> dict[Group, set[BoundType]]:
        """Which bound types each group appears with (drives the Section 4 relaxation)."""
        mapping: dict[Group, set[BoundType]] = {}
        for constraint in self._constraints:
            mapping.setdefault(constraint.group, set()).add(constraint.bound_type)
        return mapping

    # -- deviation (Definition 2.6) ----------------------------------------------

    def deviation(self, result: RankedResult) -> float:
        """Mean relative violation of the constraints on a ranked result."""
        total = sum(constraint.deviation(result) for constraint in self._constraints)
        return total / len(self._constraints)

    def is_satisfied(self, result: RankedResult, epsilon: float = 0.0) -> bool:
        """Whether the ranking deviates from the constraint set by at most ``epsilon``."""
        return self.deviation(result) <= epsilon + 1e-9

    def counts(self, result: RankedResult) -> dict[str, int]:
        """Per-constraint group counts in the top-k (useful for reports and tests)."""
        return {
            constraint.label(): constraint.count_in(result)
            for constraint in self._constraints
        }

    def subset(self, count: int) -> "ConstraintSet":
        """The first ``count`` constraints (used by the Figure 6 sweep)."""
        if not 1 <= count <= len(self._constraints):
            raise ConstraintError(
                f"cannot take {count} constraints from a set of {len(self._constraints)}"
            )
        return ConstraintSet(self._constraints[:count])

    def __repr__(self) -> str:
        inner = ", ".join(constraint.label() for constraint in self._constraints)
        return f"ConstraintSet({inner})"
