"""The :class:`RefinementSolver` facade: the paper's MILP and MILP+opt algorithms.

The solver glues the pieces together:

1. *setup* — evaluate the original query, annotate ``~Q(D)``, optionally apply
   the relevancy pruning, and construct the MILP (this is the "Setup" time
   reported in the paper's figures);
2. *solve* — hand the program to a MILP backend;
3. *extract* — turn the optimal assignment into a refinement, re-evaluate the
   refined query on the database, and report its true distance and deviation.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

from repro.core.constraints import ConstraintSet
from repro.core.deadline import current_deadline
from repro.core.distances import DistanceMeasure, PredicateDistance, get_distance
from repro.core.lazy_generation import MIN_LAZY_POOL_ROWS, run_cut_loop
from repro.core.milp_builder import BuildArtifacts, MILPBuilder
from repro.core.optimizations import BuilderOptions, apply_relevancy_pruning
from repro.core.refinement import Refinement
from repro.exceptions import NoRefinementError, RefinementError
from repro.milp.solution import Solution
from repro.provenance.lineage import AnnotatedDatabase, annotate
from repro.relational.database import Database
from repro.relational.executor import QueryExecutor, RankedResult
from repro.relational.query import SPJQuery
from repro.relational.sqlgen import render_sql


def lazy_generation_default() -> bool:
    """Whether ``REPRO_MILP_LAZY`` enables the cutting-plane loop (default on)."""
    value = os.environ.get("REPRO_MILP_LAZY", "1").strip().lower()
    return value not in ("0", "false", "off", "no", "")


@dataclass
class PreparedProblem:
    """The reusable outcome of :meth:`RefinementSolver.prepare`.

    Holds the evaluated original result and the built MILP (whose lowered
    standard form is cached on the model), plus the wall-clock cost of
    building them.  A warm dataset session caches one per distinct
    ``(constraints, epsilon, distance, method)`` so a repeated request skips
    setup entirely and re-solves from the cached standard form.
    """

    original_result: RankedResult
    artifacts: BuildArtifacts
    setup_seconds: float


@dataclass
class RefinementResult:
    """Outcome of one refinement search.

    ``feasible`` is ``False`` when no refinement within the requested maximum
    deviation exists (the "special value" of Definition 2.7); all other fields
    are then ``None`` or empty.
    """

    feasible: bool
    method: str
    distance_code: str
    refinement: Refinement | None = None
    refined_query: SPJQuery | None = None
    objective_value: float | None = None
    distance_value: float | None = None
    deviation: float | None = None
    constraint_counts: dict[str, int] = field(default_factory=dict)
    setup_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    model_statistics: dict[str, int] = field(default_factory=dict)
    refined_result: RankedResult | None = None
    #: Terminal backend status (``"optimal"``/``"infeasible"``/``"time_limit"``
    #: ...) — lets anytime callers distinguish a proven optimum from a
    #: time-limited incumbent.
    solution_status: str = ""

    @property
    def sql(self) -> str | None:
        """The refined query rendered as SQL (``None`` when infeasible)."""
        if self.refined_query is None:
            return None
        return render_sql(self.refined_query)

    def summary(self) -> str:
        """A short human-readable report (used by the examples)."""
        if not self.feasible:
            return (
                f"[{self.method}/{self.distance_code}] no refinement within the "
                "maximum deviation exists"
            )
        return (
            f"[{self.method}/{self.distance_code}] distance={self.distance_value:.4g} "
            f"deviation={self.deviation:.4g} "
            f"setup={self.setup_seconds:.3f}s solve={self.solve_seconds:.3f}s"
        )


class RefinementSolver:
    """MILP-based solver for Best Approximation Refinement.

    Parameters
    ----------
    database, query, constraints, epsilon, distance:
        The problem instance (see Definition 2.7).
    method:
        ``"milp+opt"`` (default) applies the Section 4 optimizations;
        ``"milp"`` is the unoptimized formulation.
    backend:
        MILP backend name passed to :func:`repro.milp.get_solver`
        (``"auto"`` honours the ``REPRO_MILP_BACKEND`` environment variable).
    time_limit:
        Optional wall-clock limit (seconds) for the MILP backend.
    solver_options:
        Extra keyword arguments forwarded to the backend's ``solve`` — e.g.
        ``mip_rel_gap``/``presolve``/``highs_options`` for the scipy (HiGHS)
        backend, ``node_limit``/``warm_start_values``/``known_lower_bound``
        for branch-and-bound.
    executor_backend, executor_db:
        Query execution backend (``"memory"``/``"sqlite"``) and optional
        on-disk sqlite path, forwarded to :class:`QueryExecutor`; both
        default to the ``REPRO_EXECUTOR_BACKEND`` / ``REPRO_EXECUTOR_DB``
        environment variables.
    lazy_generation:
        Drive the solve as a cutting-plane loop over lazily-generated
        constraint pools (see :mod:`repro.core.lazy_generation`) instead of
        lowering every row eagerly.  ``None`` (the default) follows the
        ``REPRO_MILP_LAZY`` environment variable, which defaults to on, and
        additionally applies a pool-size floor
        (:data:`~repro.core.lazy_generation.MIN_LAZY_POOL_ROWS`): models too
        small for row generation to pay off solve eagerly.  Passing ``True``
        explicitly forces the loop regardless of model size.  The loop
        converges to the same optima as the eager lowering and returns a
        typed time-limited incumbent when the budget or the ambient
        :class:`~repro.core.deadline.Deadline` expires.
    """

    def __init__(
        self,
        database: Database,
        query: SPJQuery,
        constraints: ConstraintSet,
        epsilon: float = 0.5,
        distance: DistanceMeasure | str = "pred",
        method: str = "milp+opt",
        backend: str = "auto",
        time_limit: float | None = None,
        executor_backend: str | None = None,
        executor_db: str | None = None,
        solver_options: dict | None = None,
        executor: QueryExecutor | None = None,
        annotated: AnnotatedDatabase | None = None,
        lazy_generation: bool | None = None,
    ) -> None:
        method = method.lower()
        if method not in ("milp", "milp+opt"):
            raise RefinementError(f"unknown method {method!r}; use 'milp' or 'milp+opt'")
        self.database = database
        self.query = query
        self.constraints = constraints
        self.epsilon = float(epsilon)
        self.distance = get_distance(distance)
        self.method = method
        self.backend = backend
        self.time_limit = time_limit
        self.solver_options = dict(solver_options or {})
        self.lazy_generation = (
            lazy_generation
            if lazy_generation is not None
            else lazy_generation_default()
        )
        self.options = (
            BuilderOptions.all() if method == "milp+opt" else BuilderOptions.none()
        )
        if self.lazy_generation:
            # An explicit lazy_generation=True forces the loop; the
            # environment-default path applies the pool-size floor so small
            # models (where the loop's extra backend start-ups cost more
            # than the smaller matrix saves) stay on the eager lowering.
            min_rows = MIN_LAZY_POOL_ROWS if lazy_generation is None else 0
            self.options = replace(
                self.options,
                lazy_generation=True,
                lazy_generation_min_rows=min_rows,
            )
        # A warm dataset session shares its executor and pre-annotated ~Q(D)
        # across solver instances; one-shot callers build both here.
        self._executor = executor or QueryExecutor(
            database, backend=executor_backend, db_path=executor_db
        )
        self._warm_annotated = annotated

    # -- pipeline -------------------------------------------------------------------

    def prepare(self) -> PreparedProblem:
        """Evaluate the query, annotate ``~Q(D)`` and build the MILP.

        The returned :class:`PreparedProblem` can be passed to :meth:`solve`
        any number of times (the model's lowered standard form is cached), so
        a warm session pays for setup once per distinct problem.
        """
        setup_started = time.perf_counter()
        original_result, artifacts = self._setup()
        return PreparedProblem(
            original_result=original_result,
            artifacts=artifacts,
            setup_seconds=time.perf_counter() - setup_started,
        )

    def solve(
        self,
        raise_on_infeasible: bool = False,
        prepared: PreparedProblem | None = None,
    ) -> RefinementResult:
        """Run setup + solve + extraction and return a :class:`RefinementResult`."""
        if prepared is None:
            prepared = self.prepare()
        original_result, artifacts = prepared.original_result, prepared.artifacts

        if artifacts.lazy_pools:
            solution, cut_statistics = self._solve_cut_loop(artifacts)
        else:
            solution = artifacts.model.solve(
                self.backend, time_limit=self.time_limit, **self.solver_options
            )
            cut_statistics = {}
        solve_seconds = solution.solve_seconds

        result = self._extract(original_result, artifacts, solution)
        result.model_statistics["full_lowerings"] = artifacts.model.full_lowerings
        result.model_statistics.update(cut_statistics)
        result.setup_seconds = prepared.setup_seconds
        result.solve_seconds = solve_seconds
        result.total_seconds = prepared.setup_seconds + solve_seconds
        if raise_on_infeasible and not result.feasible:
            raise NoRefinementError(
                f"no refinement of {self.query.name!r} deviates from the constraint "
                f"set by at most {self.epsilon:g}"
            )
        return result

    # -- internals -------------------------------------------------------------------

    def _solve_cut_loop(self, artifacts: BuildArtifacts) -> tuple[Solution, dict]:
        """Drive the cutting-plane loop over the artifacts' lazy pools.

        The loop budget is ``self.time_limit`` clamped by the ambient
        :func:`~repro.core.deadline.current_deadline`; each round's backend
        solve gets whatever remains.  A ``known_lower_bound`` the caller put
        into ``solver_options`` (the portfolio race's proven bound) seeds the
        loop's own bound; the bound and the previous round's incumbent are
        threaded to the backends as guidance, on top of the caller's other
        options.
        """
        options = dict(self.solver_options)
        external_bound = options.pop("known_lower_bound", None)

        def backend_solve(limit: float | None, guidance: dict) -> Solution:
            merged = dict(options)
            merged.update(guidance)
            return artifacts.model.solve(self.backend, time_limit=limit, **merged)

        outcome = run_cut_loop(
            artifacts.model,
            artifacts.lazy_pools,
            backend_solve,
            time_limit=self.time_limit,
            deadline=current_deadline(),
            external_bound=external_bound,
            completion=artifacts.complete_candidate,
        )
        solution = replace(outcome.solution, solve_seconds=outcome.solve_seconds)
        return solution, {
            "cut_rounds": outcome.rounds,
            "rows_generated": outcome.rows_generated,
        }

    def _setup(self) -> tuple[RankedResult, BuildArtifacts]:
        original_result = self._executor.evaluate(self.query)
        # Sharing the executor reuses its cached join/sort of ~Q(D) and, on
        # the sqlite backend, pushes the lineage-atom scan into SQL.
        annotated = self._warm_annotated
        if annotated is None:
            annotated = annotate(self.query, self.database, executor=self._executor)
        annotated = self._maybe_prune(annotated, original_result)
        builder = MILPBuilder(
            query=self.query,
            annotated=annotated,
            constraints=self.constraints,
            epsilon=self.epsilon,
            distance=self.distance,
            original_result=original_result,
            options=self.options,
        )
        artifacts = builder.build()
        if artifacts.lazy_pools and self.options.lazy_generation_min_rows:
            pending = sum(pool.num_pending for pool in artifacts.lazy_pools)
            if pending < self.options.lazy_generation_min_rows:
                # Too small for row generation to pay off: rebuild eagerly
                # so the model (and its row order) is byte-identical to the
                # lazy_generation=False lowering.  Small pools mean a small
                # model, so the second build costs milliseconds.
                artifacts = MILPBuilder(
                    query=self.query,
                    annotated=annotated,
                    constraints=self.constraints,
                    epsilon=self.epsilon,
                    distance=self.distance,
                    original_result=original_result,
                    options=replace(self.options, lazy_generation=False),
                ).build()
        return original_result, artifacts

    def _maybe_prune(
        self, annotated: AnnotatedDatabase, original_result: RankedResult
    ) -> AnnotatedDatabase:
        if not self.options.relevancy_pruning:
            return annotated
        keep_positions: set[int] = set()
        if self.distance.outcome_based:
            # Outcome-based objectives reference the tuples that produced the
            # original top-k* items; keep them even if pruning would drop them.
            builder_probe = MILPBuilder(
                query=self.query,
                annotated=annotated,
                constraints=self.constraints,
                epsilon=self.epsilon,
                distance=self.distance,
                original_result=original_result,
                options=self.options,
            )
            for positions in builder_probe._original_topk_positions():
                keep_positions.update(positions)
        return apply_relevancy_pruning(
            annotated, self.constraints.k_star, keep_positions
        )

    def _extract(
        self,
        original_result: RankedResult,
        artifacts: BuildArtifacts,
        solution: Solution,
    ) -> RefinementResult:
        base = RefinementResult(
            feasible=False,
            method=self.method,
            distance_code=self.distance.code,
            model_statistics=artifacts.statistics,
            solution_status=solution.status.value,
        )
        if not solution.is_feasible:
            return base

        refinement = artifacts.extract_refinement(solution)
        refined_query = refinement.apply(self.query)
        refined_result = self._executor.evaluate(refined_query)
        deviation = self.constraints.deviation(refined_result)
        distance_value = self.distance.evaluate(
            self.query,
            refined_query,
            original_result,
            refined_result,
            self.constraints.k_star,
        )
        base.feasible = True
        base.refinement = refinement
        base.refined_query = refined_query
        base.objective_value = solution.objective_value
        base.distance_value = distance_value
        base.deviation = deviation
        base.constraint_counts = self.constraints.counts(refined_result)
        base.refined_result = refined_result
        return base


def solve_refinement(
    database: Database,
    query: SPJQuery,
    constraints: ConstraintSet,
    epsilon: float = 0.5,
    distance: DistanceMeasure | str = "pred",
    method: str = "milp+opt",
    backend: str = "auto",
    time_limit: float | None = None,
    executor_backend: str | None = None,
    executor_db: str | None = None,
    solver_options: dict | None = None,
) -> RefinementResult:
    """One-call convenience wrapper around :class:`RefinementSolver`."""
    solver = RefinementSolver(
        database=database,
        query=query,
        constraints=constraints,
        epsilon=epsilon,
        distance=distance,
        method=method,
        backend=backend,
        time_limit=time_limit,
        executor_backend=executor_backend,
        executor_db=executor_db,
        solver_options=solver_options,
    )
    return solver.solve()


# The predicate distance is the paper's default measure; re-export it here so
# ``from repro.core.solver import PredicateDistance`` works in user code that
# follows the quickstart example.
__all__ = [
    "PredicateDistance",
    "PreparedProblem",
    "RefinementResult",
    "RefinementSolver",
    "solve_refinement",
]
