"""Construction of the Best Approximation Refinement MILP (Figure 1).

Given the annotated ``~Q(D)``, a constraint set, a maximum deviation and a
distance measure, :class:`MILPBuilder` produces a :class:`repro.milp.Model`
whose optimal solutions correspond exactly to minimal refinements (Theorem
3.7):

* expressions (1)/(2) tie the refined numerical constants ``C_{A,⋄}`` to the
  per-value indicator variables ``A_{v,⋄}``;
* expression (3) defines the selection variable ``r_t`` of every tuple from
  its lineage and its higher-ranked DISTINCT duplicates ``S(t)``;
* expression (4) forces at least ``k*`` tuples into the output;
* expressions (5)/(6) tie the top-k membership indicators ``l_{t,k}`` to the
  rank of each (relevant) tuple;
* expressions (7)/(8) bound the deviation from the constraint set by ``ε``;
* the distance measure contributes the objective.

Implementation notes (documented deviations from the paper's presentation,
see DESIGN.md):

* Expression (5) literally sums ``r_{t'}`` over *all* higher-ranked tuples,
  which makes the constraint matrix quadratic in the data size.  The builder
  keeps the matrix linear with √n-*block prefix sums*: one continuous chain
  variable per block of ~√n consecutive tuples (``C_g = C_{g-1} + Σ r`` over
  the block), so the rank of a tuple at index ``i`` is ``1 + |~Q|(1 - r_t) +
  C_{g-1} + (residual r's of its own block)`` — ``O(√n)`` non-zeros per rank
  row and ``O(√n)`` chain rows, and solutions are unchanged.  A *unit* chain
  (one prefix variable per tuple, an earlier revision of this builder) is
  equivalent but provokes quadratic substitution fill-in inside MILP
  presolve: on the reduced meps workload HiGHS spent 3.5 of its 5 seconds in
  presolve before the first branch; with the block chain it starts branching
  within milliseconds.
* Following the paper's implementation section, rank and top-k variables are
  generated only for tuples that some constraint group or the distance
  measure actually references.

Constraint rows are computed once as COO triplet arrays per family and enter
the model either as :meth:`repro.milp.Model.add_constraint_block` blocks (the
default) or — with ``BuilderOptions(block_lowering=False)`` — as one
:class:`LinearConstraint` per row built from the *same* numbers, so the two
lowering paths are matrix-identical by construction (and asserted so by the
golden tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.constraints import BoundType, ConstraintSet
from repro.core.context import MILPBuildContext
from repro.core.distances import DistanceMeasure
from repro.core.lazy_generation import LazyPool, LinkingConstraintSink, RankCompletion
from repro.core.optimizations import (
    BuilderOptions,
    classify_bound_types,
    forced_predecessor_counts,
)
from repro.core.refinement import Refinement
from repro.exceptions import RefinementError
from repro.milp.constraint import ConstraintSense, LinearConstraint
from repro.milp.expression import LinearExpression, Variable, linear_sum
from repro.milp.model import SENSE_EQ, SENSE_GE, SENSE_LE, Model
from repro.milp.solution import Solution
from repro.provenance.lineage import (
    AnnotatedDatabase,
    CategoricalAtom,
    NumericalAtom,
)
from repro.relational.executor import RankedResult
from repro.relational.predicates import Operator
from repro.relational.query import SPJQuery

#: Fractional margin used when turning strict rank comparisons into <=; ranks
#: are integral so any value in (0, 1) is exact.
_RANK_DELTA = 0.5

_SENSE_TO_ENUM = {
    SENSE_LE: ConstraintSense.LESS_EQUAL,
    SENSE_GE: ConstraintSense.GREATER_EQUAL,
    SENSE_EQ: ConstraintSense.EQUAL,
}


class RowBatch:
    """COO triplets for one family of constraint rows.

    Rows are appended either one at a time (:meth:`add_row`) or as
    pre-vectorised NumPy chunks (:meth:`add_rows`); the builder flushes the
    batch into the model through whichever lowering path is selected.
    """

    __slots__ = ("rows", "cols", "coeffs", "senses", "rhs", "names")

    def __init__(self) -> None:
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.coeffs: list[float] = []
        self.senses: list[int] = []
        self.rhs: list[float] = []
        self.names: list[str | None] = []

    def add_row(self, cols, coeffs, sense: int, rhs: float, name: str | None = None) -> None:
        row = len(self.rhs)
        self.rows.extend([row] * len(cols))
        self.cols.extend(cols)
        self.coeffs.extend(coeffs)
        self.senses.append(sense)
        self.rhs.append(float(rhs))
        self.names.append(name)

    def add_rows(self, rows, cols, coeffs, senses, rhs) -> None:
        """Append a chunk of rows given as parallel arrays (local row ids).

        ``ndarray.tolist()`` converts each chunk in one C-level pass, so the
        vectorised assembly is not re-walked element-by-element in Python.
        """
        base = len(self.rhs)
        self.rows.extend(
            (np.asarray(rows, dtype=np.int64) + base).tolist() if base
            else np.asarray(rows, dtype=np.int64).tolist()
        )
        self.cols.extend(np.asarray(cols, dtype=np.int64).tolist())
        self.coeffs.extend(np.asarray(coeffs, dtype=np.float64).tolist())
        self.senses.extend(np.asarray(senses, dtype=np.int8).tolist())
        self.rhs.extend(np.asarray(rhs, dtype=np.float64).tolist())
        self.names.extend([None] * len(rhs))

    def __len__(self) -> int:
        return len(self.rhs)


def pool_from_batch(name: str, batch: RowBatch, group_keys: list[int]) -> LazyPool:
    """Freeze a row batch into a :class:`LazyPool` (one key per row)."""
    return LazyPool(
        name, batch.rows, batch.cols, batch.coeffs, batch.senses, batch.rhs, group_keys
    )


def flush_rows(model: Model, batch: RowBatch, block_lowering: bool) -> None:
    """Move a finished row batch into ``model`` via the selected lowering path.

    With ``block_lowering`` the batch enters as one COO block
    (:meth:`repro.milp.Model.add_constraint_block`); otherwise as one
    :class:`LinearConstraint` per row built from the *same* numbers,
    accumulating duplicate columns exactly like :func:`linear_sum` would.
    The two paths are matrix-identical by construction.
    """
    if not batch.rhs:
        return
    if block_lowering:
        model.add_constraint_block(
            np.asarray(batch.rows, dtype=np.int64),
            np.asarray(batch.cols, dtype=np.int64),
            np.asarray(batch.coeffs, dtype=np.float64),
            np.asarray(batch.senses, dtype=np.int8),
            np.asarray(batch.rhs, dtype=np.float64),
        )
        return
    variables = model.variables
    terms_by_row: list[dict[Variable, float]] = [{} for _ in batch.rhs]
    for row, col, coeff in zip(batch.rows, batch.cols, batch.coeffs):
        terms = terms_by_row[row]
        variable = variables[col]
        value = terms.get(variable, 0.0) + coeff
        if value == 0.0:
            terms.pop(variable, None)
        else:
            terms[variable] = value
    for row, terms in enumerate(terms_by_row):
        expression = LinearExpression._make(terms, -batch.rhs[row])
        constraint = LinearConstraint(expression, _SENSE_TO_ENUM[batch.senses[row]])
        model.add_constraint(constraint, name=batch.names[row])


def indicator_rows(
    batch: RowBatch,
    constant_col: int,
    indicator_cols: np.ndarray,
    values: np.ndarray,
    big_m: float,
    delta: float,
    strict: float,
    lower_bound: bool,
) -> None:
    """Append the expression (1)/(2) rows tying a refined constant to its
    per-value indicators: two interleaved rows per domain value, each over the
    columns ``(constant, indicator)``, assembled as one vectorised chunk.
    Shared by the Figure 1 builder and the Erica baseline (which uses the
    same indicator encoding)."""
    count = len(values)
    rows = np.repeat(np.arange(2 * count, dtype=np.int64), 2)
    cols = np.empty(4 * count, dtype=np.int64)
    cols[0::2] = constant_col
    cols[1::4] = indicator_cols
    cols[3::4] = indicator_cols
    coeffs = np.empty(4 * count, dtype=np.float64)
    coeffs[0::2] = 1.0
    senses = np.empty(2 * count, dtype=np.int8)
    rhs = np.empty(2 * count, dtype=np.float64)
    if lower_bound:
        # Expression (1): indicator = 1 <=> value ⋄ C holds.
        coeffs[1::4] = big_m
        coeffs[3::4] = big_m
        senses[0::2] = SENSE_GE
        senses[1::2] = SENSE_LE
        rhs[0::2] = values + (1.0 - strict) * delta
        rhs[1::2] = big_m + (values - strict * delta)
    else:
        # Expression (2): mirror image for upper-bound predicates.
        coeffs[1::4] = -big_m
        coeffs[3::4] = -big_m
        senses[0::2] = SENSE_LE
        senses[1::2] = SENSE_GE
        rhs[0::2] = values - (1.0 - strict) * delta
        rhs[1::2] = (values + strict * delta) - big_m
    batch.add_rows(rows, cols, coeffs, senses, rhs)


def build_numerical_predicate_variables(
    model: Model,
    query: SPJQuery,
    annotated: AnnotatedDatabase,
    constant_variables: dict,
    indicator_variables: dict,
    block_lowering: bool,
) -> None:
    """Create the refined-constant and per-value indicator variables for every
    numerical predicate of ``query`` and emit their expression (1)/(2) rows.

    Fills ``constant_variables`` (keyed ``(attribute, operator)``) and
    ``indicator_variables`` (keyed ``(attribute, operator, value)``).  Shared
    by the Figure 1 builder and the Erica baseline, which use the same
    indicator encoding.
    """
    for predicate in query.numerical_predicates:
        attribute, operator = predicate.attribute, predicate.operator
        domain = annotated.numeric_domain(attribute)
        if not domain:
            raise RefinementError(
                f"numerical predicate attribute {attribute!r} has no values in the data"
            )
        big_m = annotated.big_m(attribute)
        delta = annotated.smallest_gap(attribute)
        strict = 1.0 if operator.is_strict else 0.0

        constant = model.continuous_var(
            f"const[{attribute},{operator.value}]",
            lower=min(domain) - 1.0,
            upper=max(domain) + 1.0,
        )
        constant_variables[(attribute, operator)] = constant

        indicator_cols = np.empty(len(domain), dtype=np.int64)
        for position, value in enumerate(domain):
            indicator = model.binary_var(f"num[{attribute}{operator.value}{value:g}]")
            indicator_variables[(attribute, operator, value)] = indicator
            indicator_cols[position] = model.index_of(indicator)

        batch = RowBatch()
        indicator_rows(
            batch,
            model.index_of(constant),
            indicator_cols,
            np.asarray(domain, dtype=np.float64),
            big_m,
            delta,
            strict,
            operator.is_lower_bound,
        )
        flush_rows(model, batch, block_lowering)


def selection_rows(
    batch: RowBatch,
    atom_cols,
    duplicate_cols,
    selection_col: int,
    num_predicates: int,
    name: str | None = None,
) -> None:
    """Append the expression (3) row pair tying a selection binary to its
    lineage (and, for DISTINCT queries, its better-ranked duplicates):
    selection = 1 <=> every lineage atom holds and no duplicate in
    ``duplicate_cols`` is selected.  Shared by the Figure 1 builder (per
    tuple and per merged lineage class) and the Erica baseline."""
    bound = num_predicates + len(duplicate_cols)
    cols = list(atom_cols) + list(duplicate_cols) + [selection_col]
    coeffs = [1.0] * len(atom_cols) + [-1.0] * len(duplicate_cols) + [-float(bound)]
    offset = float(len(duplicate_cols))
    batch.add_row(
        cols, coeffs, SENSE_GE, -offset,
        name=f"select_lb[{name}]" if name else None,
    )
    batch.add_row(
        cols, coeffs, SENSE_LE, float(bound - 1) - offset,
        name=f"select_ub[{name}]" if name else None,
    )


@dataclass
class BuildArtifacts:
    """Everything the solver needs after the model is built.

    ``lazy_pools`` is non-empty only under
    ``BuilderOptions(lazy_generation=True)``: the withheld constraint
    families the cut-loop driver separates over.  Pool state (which rows are
    still pending) lives on the artifacts, so repeated solves of a prepared
    problem — portfolio time slices, a warm service session — resume from
    whatever rows earlier rounds already generated.
    """

    model: Model
    context: MILPBuildContext
    options: BuilderOptions
    extract_refinement: Callable[[Solution], Refinement]
    statistics: dict[str, int] = field(default_factory=dict)
    lazy_pools: list[LazyPool] = field(default_factory=list)
    complete_candidate: RankCompletion | None = None


class MILPBuilder:
    """Builds the Figure 1 MILP for one Best Approximation Refinement instance."""

    def __init__(
        self,
        query: SPJQuery,
        annotated: AnnotatedDatabase,
        constraints: ConstraintSet,
        epsilon: float,
        distance: DistanceMeasure,
        original_result: RankedResult,
        options: BuilderOptions | None = None,
    ) -> None:
        if epsilon < 0:
            raise RefinementError("the maximum deviation epsilon must be non-negative")
        for predicate in query.numerical_predicates:
            if predicate.operator is Operator.EQUAL:
                raise RefinementError(
                    "numerical equality predicates cannot be refined by the MILP "
                    f"model (predicate on {predicate.attribute!r})"
                )
        self.query = query
        self.annotated = annotated
        self.constraints = constraints
        self.epsilon = epsilon
        self.distance = distance
        self.original_result = original_result
        self.options = options or BuilderOptions.all()

        self._model = Model(f"refine[{query.name}]")
        self._categorical_variables: dict[tuple[str, object], Variable] = {}
        self._numerical_constant_variables: dict[tuple[str, Operator], Variable] = {}
        self._numerical_indicator_variables: dict[tuple[str, Operator, float], Variable] = {}
        self._selection_variables: dict[int, Variable] = {}
        self._topk_variables: dict[tuple[int, int], Variable] = {}

    # -- public API ------------------------------------------------------------------

    def build(self) -> BuildArtifacts:
        """Construct the model and return it with its extraction helpers."""
        merge_lineage = (
            self.options.merge_lineage_variables and not self.query.distinct
        )
        self._merged_selection = merge_lineage
        self._lazy_pools = []
        self._rank_completion: RankCompletion | None = None
        sink = (
            LinkingConstraintSink(self._model)
            if self.options.lazy_generation
            else None
        )

        self._build_predicate_variables()
        self._build_selection_variables(merge_lineage)
        self._build_minimum_output_size()

        context = MILPBuildContext(
            model=self._model,
            query=self.query,
            annotated=self.annotated,
            constraints=self.constraints,
            k_star=self.constraints.k_star,
            original_result=self.original_result,
            original_topk_positions=self._original_topk_positions(),
            categorical_variables=self._categorical_variables,
            numerical_constant_variables=self._numerical_constant_variables,
            topk_variables=self._topk_variables,
            linking_sink=sink,
        )

        distance_required = self.distance.required_topk_positions(context)
        needed = self._needed_topk(distance_required)
        self._build_rank_and_topk_variables(needed, set(distance_required))
        self._build_deviation_constraints()

        objective = self.distance.build_objective(context)
        self._model.minimize(objective)
        if sink is not None and len(sink):
            self._lazy_pools.append(sink.into_pool("distance"))
        if self._lazy_pools:
            self._seed_original_topk_groups(context)

        statistics = dict(self._model.summary())
        statistics["annotated_tuples"] = len(self.annotated)
        statistics["lineage_classes"] = self.annotated.num_lineage_classes
        statistics["topk_variables"] = len(self._topk_variables)
        if self.options.lazy_generation:
            # The seed is what the first relaxation actually carries; pending
            # pool rows only enter the model when the cut loop generates them.
            statistics["seed_rows"] = self._model.num_constraints
            statistics["lazy_pool_rows"] = sum(
                len(pool) for pool in self._lazy_pools
            )

        return BuildArtifacts(
            model=self._model,
            context=context,
            options=self.options,
            extract_refinement=self._extract_refinement,
            statistics=statistics,
            lazy_pools=self._lazy_pools,
            complete_candidate=self._rank_completion,
        )

    def _seed_original_topk_groups(self, context: MILPBuildContext) -> None:
        """Move the original top-k positions' pool groups into the eager seed.

        The objective scores exactly these positions (a distance-0 refinement
        keeps every one of them in the top-k), so their rank/membership/linking
        rows are active at almost every optimum.  Seeding them up front saves
        the cut loop a crawl of rounds that would pull them in one group at a
        time, while the bulk of the pools — the rank machinery of every
        *other* tuple — stays lazy.
        """
        seed_keys = np.unique(
            np.fromiter(
                (
                    position
                    for positions in context.original_topk_positions
                    for position in positions
                ),
                dtype=np.int64,
            )
        )
        if not seed_keys.size:
            return
        for pool in self._lazy_pools:
            block = pool.take(seed_keys)
            if block is not None:
                self._model.add_constraint_block(*block)
        # A fully-seeded pool has nothing left to separate.
        self._lazy_pools = [pool for pool in self._lazy_pools if pool.num_pending]

    # -- row emission ----------------------------------------------------------------

    def _flush(self, batch: RowBatch) -> None:
        """Move a finished row batch into the model via the selected path."""
        flush_rows(self._model, batch, self.options.block_lowering)

    def _column(self, variable: Variable) -> int:
        return self._model.index_of(variable)

    # -- expressions (1) and (2): numerical predicate indicators ----------------------

    def _build_predicate_variables(self) -> None:
        for predicate in self.query.categorical_predicates:
            domain = self.annotated.categorical_domains[predicate.attribute]
            for value in domain:
                variable = self._model.binary_var(f"cat[{predicate.attribute}={value}]")
                self._categorical_variables[(predicate.attribute, value)] = variable

        build_numerical_predicate_variables(
            self._model,
            self.query,
            self.annotated,
            self._numerical_constant_variables,
            self._numerical_indicator_variables,
            self.options.block_lowering,
        )

    # -- expression (3): tuple selection -------------------------------------------------

    def _lineage_variable(self, atom: CategoricalAtom | NumericalAtom) -> Variable:
        if isinstance(atom, CategoricalAtom):
            return self._categorical_variables[(atom.attribute, atom.value)]
        return self._numerical_indicator_variables[(atom.attribute, atom.operator, atom.value)]

    def _build_selection_variables(self, merge_lineage: bool) -> None:
        num_predicates = self.query.num_predicates
        batch = RowBatch()
        if merge_lineage:
            # One variable per lineage equivalence class (Section 4, "Selecting
            # Lineages"); all tuples of the class share it.
            for class_index, (lineage, positions) in enumerate(
                self.annotated.lineage_classes.items()
            ):
                variable = self._model.binary_var(f"r_class[{class_index}]")
                for position in positions:
                    self._selection_variables[position] = variable
                selection_rows(
                    batch,
                    [self._column(self._lineage_variable(atom)) for atom in lineage],
                    (),
                    self._column(variable),
                    num_predicates,
                    name=f"class{class_index}",
                )
            self._flush(batch)
            return

        for annotated_tuple in self.annotated.tuples:
            position = annotated_tuple.position
            variable = self._model.binary_var(f"r[{position}]")
            self._selection_variables[position] = variable

        for annotated_tuple in self.annotated.tuples:
            position = annotated_tuple.position
            selection_rows(
                batch,
                [self._column(self._lineage_variable(atom)) for atom in annotated_tuple.lineage],
                [
                    self._column(self._selection_variables[duplicate])
                    for duplicate in self.annotated.duplicates_before(position)
                ],
                self._column(self._selection_variables[position]),
                num_predicates,
                name=str(position),
            )
        self._flush(batch)

    # -- expression (4): minimum output size --------------------------------------------

    def _build_minimum_output_size(self) -> None:
        batch = RowBatch()
        cols = [
            self._column(self._selection_variables[annotated_tuple.position])
            for annotated_tuple in self.annotated.tuples
        ]
        batch.add_row(
            cols,
            [1.0] * len(cols),
            SENSE_GE,
            float(self.constraints.k_star),
            name="min_output_size",
        )
        self._flush(batch)

    # -- expressions (5) and (6): ranks and top-k membership ------------------------------

    def _original_topk_positions(self) -> list[list[int]]:
        """Positions in ``~Q(D)`` of the tuples representing the original top-``k*`` items."""
        k_star = self.constraints.k_star
        original_keys = self.original_result.top_k_keys(k_star)
        positions_by_key: dict[tuple[object, ...], list[int]] = {}
        select = list(self.query.select)
        use_distinct_key = self.query.distinct and bool(select)
        for annotated_tuple in self.annotated.tuples:
            if use_distinct_key:
                # Must mirror RankedResult.item_key for DISTINCT queries.
                key = tuple(annotated_tuple.values[name] for name in select)
            else:
                key = tuple(annotated_tuple.values.values())
            positions_by_key.setdefault(key, []).append(annotated_tuple.position)
        mapped: list[list[int]] = []
        for key in original_keys:
            mapped.append(positions_by_key.get(tuple(key), []))
        return mapped

    def _needed_topk(
        self, distance_required: dict[int, set[int]]
    ) -> dict[int, set[int]]:
        """Which ``(position, k)`` pairs need ``l_{t,k}`` variables.

        Under relevancy pruning, constraint-driven pairs whose tuple provably
        cannot rank within the top-``k`` of *any* refinement (see
        :func:`forced_predecessor_counts`) are dropped: their ``l`` variable
        is identically zero, so omitting it leaves every feasible solution —
        and therefore every optimum — unchanged while removing the rank
        variable and its big-M rows.  Pairs the objective references are
        always kept (distance measures read their values directly).
        """
        needed: dict[int, set[int]] = {}
        for constraint in self.constraints:
            for annotated_tuple in self.annotated.tuples:
                if constraint.group.matches(annotated_tuple.values):
                    needed.setdefault(annotated_tuple.position, set()).add(constraint.k)
        if self.options.relevancy_pruning and needed:
            cap = max(constraint.k for constraint in self.constraints)
            counts = forced_predecessor_counts(self.annotated, self.query, cap=cap)
            if counts is not None:
                for position, ks in list(needed.items()):
                    reachable = {k for k in ks if counts[position] < k}
                    if reachable:
                        needed[position] = reachable
                    else:
                        del needed[position]
        for position, ks in distance_required.items():
            needed.setdefault(position, set()).update(ks)
        return needed

    def _build_rank_and_topk_variables(
        self, needed: dict[int, set[int]], objective_positions: set[int]
    ) -> None:
        if not needed:
            return
        tuples = self.annotated.tuples
        size = len(tuples)
        bound_types = classify_bound_types(self.annotated, self.constraints)
        # Positions whose l variables appear in the objective must keep an
        # exact rank definition even when the Section 4 relaxation is enabled:
        # the relaxation argument only covers constraint deviation.
        outcome_positions = set(objective_positions)

        index_of_position = {
            annotated_tuple.position: index for index, annotated_tuple in enumerate(tuples)
        }
        selection_cols = [
            self._column(self._selection_variables[annotated_tuple.position])
            for annotated_tuple in tuples
        ]

        needed_items = sorted(needed.items())
        needed_indices = [index_of_position[position] for position, _ in needed_items]

        if self._merged_selection:
            # √n-block prefix sums of the selection variables, in rank order:
            # C_g = number of selected tuples among the first (g+1)·B
            # positions.  These make expression (5) sparse without the
            # quadratic presolve fill-in a unit chain (one prefix variable per
            # tuple) provokes; the residual r's of a tuple's own block
            # collapse onto the shared class variables, so rank rows stay
            # narrow.  Only the blocks some rank definition references exist.
            block = max(1, int(round(math.sqrt(size))))
        else:
            # Unmerged models keep the unit chain (P_i = P_{i-1} + r_i): with
            # one distinct selection variable per tuple, √n-wide residual rows
            # measurably slow HiGHS down instead of speeding it up.  With
            # ``block = 1`` the lowering below degenerates to exactly that
            # chain (every rank row references C_{i-1} with no residuals).
            block = 1
        last_chain_block = max(index // block for index in needed_indices) - 1
        chain_cols: list[int] = []
        chain_batch = RowBatch()
        for g in range(last_chain_block + 1):
            lo, hi = g * block, (g + 1) * block
            label = f"prefix_block[{g}]" if block > 1 else f"prefix[{tuples[g].position}]"
            chain_var = self._model.continuous_var(label, lower=0.0, upper=float(size))
            chain_col = self._column(chain_var)
            cols = [chain_col]
            coeffs = [1.0]
            if g > 0:
                cols.append(chain_cols[g - 1])
                coeffs.append(-1.0)
            cols.extend(selection_cols[lo:hi])
            coeffs.extend([-1.0] * (hi - lo))
            chain_batch.add_row(cols, coeffs, SENSE_EQ, 0.0, name=label)
            chain_cols.append(chain_col)
        self._flush(chain_batch)

        # Under lazy generation the rank-definition and top-k membership rows
        # are withheld as two pools keyed by tuple position (the chain rows
        # above stay eager: they only tie the prefix variables to the
        # selection variables and every rank row references them).  The loop
        # below is shared by both modes so the eager path keeps its exact row
        # emission order.
        lazy = self.options.lazy_generation
        batch = RowBatch()
        rank_batch = RowBatch() if lazy else batch
        topk_batch = RowBatch() if lazy else batch
        rank_keys: list[int] = []
        topk_keys: list[int] = []
        # Triplets of the rank definitions *without* their rank-variable term,
        # feeding the candidate completion: implied rank = rhs - expr.
        completion_rows: list[int] = []
        completion_cols: list[int] = []
        completion_coeffs: list[float] = []
        completion_rhs: list[float] = []
        completion_rank_cols: list[int] = []
        for position, ks in needed_items:
            index = index_of_position[position]
            selection_col = selection_cols[index]
            rank = self._model.continuous_var(
                f"s[{position}]", lower=1.0, upper=2.0 * size + 1.0
            )
            rank_col = self._column(rank)
            # Expression (5): rank = 1 + |~Q|(1 - r) + (selected before), the
            # prefix rewritten as C_{q-1} for the last complete block below
            # index i plus the residual r's of the partial block [q·B, i).
            # Lowered as  rank + |~Q|·r - prefix = 1 + |~Q|.
            definition_cols = [rank_col, selection_col]
            definition_coeffs = [1.0, float(size)]
            if index > 0:
                q = index // block
                if q > 0:
                    definition_cols.append(chain_cols[q - 1])
                    definition_coeffs.append(-1.0)
                for j in range(q * block, index):
                    definition_cols.append(selection_cols[j])
                    definition_coeffs.append(-1.0)
            definition_rhs = 1.0 + float(size)

            relax = (
                self.options.relax_rank_expressions
                and position not in outcome_positions
                and bound_types.get(position)
                in ({BoundType.LOWER}, {BoundType.UPPER})
            )
            if relax and bound_types[position] == {BoundType.LOWER}:
                rank_batch.add_row(
                    definition_cols, definition_coeffs, SENSE_GE, definition_rhs,
                    name=f"rank_lb[{position}]",
                )
            elif relax and bound_types[position] == {BoundType.UPPER}:
                rank_batch.add_row(
                    definition_cols, definition_coeffs, SENSE_LE, definition_rhs,
                    name=f"rank_ub[{position}]",
                )
            else:
                rank_batch.add_row(
                    definition_cols, definition_coeffs, SENSE_EQ, definition_rhs,
                    name=f"rank[{position}]",
                )
            rank_keys.append(position)
            if lazy:
                row = len(completion_rhs)
                completion_rows.extend([row] * (len(definition_cols) - 1))
                completion_cols.extend(definition_cols[1:])
                completion_coeffs.extend(definition_coeffs[1:])
                completion_rhs.append(definition_rhs)
                completion_rank_cols.append(rank_col)

            for k in sorted(ks):
                member = self._model.binary_var(f"l[{position},{k}]")
                self._topk_variables[(position, k)] = member
                member_col = self._column(member)
                coefficient = 2.0 * size + 1.0
                # Expression (6): member = 1 <=> rank <= k.
                topk_batch.add_row(
                    [rank_col, member_col], [1.0, coefficient],
                    SENSE_GE, float(k) + _RANK_DELTA,
                    name=f"topk_lb[{position},{k}]",
                )
                topk_batch.add_row(
                    [rank_col, member_col], [1.0, coefficient],
                    SENSE_LE, float(k) + coefficient,
                    name=f"topk_ub[{position},{k}]",
                )
                topk_keys.extend((position, position))
        if lazy:
            if len(rank_batch):
                self._lazy_pools.append(pool_from_batch("rank", rank_batch, rank_keys))
            if len(topk_batch):
                self._lazy_pools.append(pool_from_batch("topk", topk_batch, topk_keys))
            if completion_rhs:
                self._rank_completion = RankCompletion(
                    completion_rank_cols,
                    completion_rows,
                    completion_cols,
                    completion_coeffs,
                    completion_rhs,
                )
        else:
            self._flush(batch)

    # -- expressions (7) and (8): deviation ------------------------------------------------

    def _build_deviation_constraints(self) -> None:
        shortfall_terms: list[LinearExpression] = []
        for index, constraint in enumerate(self.constraints):
            shortfall = self._model.continuous_var(
                f"E[{index}:{constraint.label()}]", lower=0.0, upper=float(constraint.k)
            )
            # Pairs pruned by _needed_topk have no variable: their l is
            # identically zero, so they simply drop out of the count.
            members = [
                self._topk_variables[(annotated_tuple.position, constraint.k)]
                for annotated_tuple in self.annotated.tuples
                if constraint.group.matches(annotated_tuple.values)
                and (annotated_tuple.position, constraint.k) in self._topk_variables
            ]
            count = linear_sum(members) if members else LinearExpression()
            sign = constraint.bound_type.sign
            # Expression (7): shortfall >= Sign(c) * (n - count).
            self._model.add_constraint(
                shortfall >= (constraint.bound - count) * float(sign),
                name=f"shortfall[{index}]",
            )
            denominator = float(max(constraint.bound, 1))
            shortfall_terms.append(shortfall * (1.0 / denominator))

        # Expression (8): mean relative shortfall bounded by epsilon.
        deviation = linear_sum(shortfall_terms) * (1.0 / len(self.constraints))
        self._model.add_constraint(deviation <= self.epsilon, name="max_deviation")

    # -- solution extraction -------------------------------------------------------------

    def _extract_refinement(self, solution: Solution) -> Refinement:
        categorical: dict[str, frozenset] = {}
        for predicate in self.query.categorical_predicates:
            domain = self.annotated.categorical_domains[predicate.attribute]
            selected = frozenset(
                value
                for value in domain
                if solution.value(self._categorical_variables[(predicate.attribute, value)])
                > 0.5
            )
            if not selected:
                # A refinement that selects no value of a categorical predicate
                # would produce an empty output; expression (4) prevents this in
                # feasible solutions, so reaching here indicates solver trouble.
                raise RefinementError(
                    f"solution selects no value for categorical predicate on "
                    f"{predicate.attribute!r}"
                )
            categorical[predicate.attribute] = selected

        numerical: dict[tuple[str, Operator], float] = {}
        for predicate in self.query.numerical_predicates:
            key = (predicate.attribute, predicate.operator)
            raw = solution.value(self._numerical_constant_variables[key])
            numerical[key] = self._snap_constant(predicate, raw, solution)

        return Refinement(numerical=numerical, categorical=categorical)

    def _snap_constant(self, predicate, raw: float, solution: Solution) -> float:
        """Snap the continuous constant to the most conservative equivalent value.

        Any constant between two adjacent domain values selects the same
        tuples; snapping to the boundary of the selected value set makes the
        refined query readable (``GPA >= 3.6`` rather than ``GPA >= 3.5873``)
        without changing its output or its predicate distance beyond what the
        solver already paid for.
        """
        attribute, operator = predicate.attribute, predicate.operator
        selected_values = [
            value
            for value in self.annotated.numeric_domain(attribute)
            if solution.value(
                self._numerical_indicator_variables[(attribute, operator, value)]
            )
            > 0.5
        ]
        if not selected_values:
            return raw
        snapped = min(selected_values) if operator.is_lower_bound else max(selected_values)
        # Never make the refinement look farther from the original query than
        # the constant the solver actually chose (that would break the match
        # between the reported distance and the MILP objective).
        if abs(snapped - predicate.constant) <= abs(raw - predicate.constant) + 1e-9:
            return snapped
        return raw


def build_model(
    query: SPJQuery,
    annotated: AnnotatedDatabase,
    constraints: ConstraintSet,
    epsilon: float,
    distance: DistanceMeasure,
    original_result: RankedResult,
    options: BuilderOptions | None = None,
) -> BuildArtifacts:
    """Convenience wrapper around :class:`MILPBuilder`."""
    builder = MILPBuilder(
        query=query,
        annotated=annotated,
        constraints=constraints,
        epsilon=epsilon,
        distance=distance,
        original_result=original_result,
        options=options,
    )
    return builder.build()
