"""Construction of the Best Approximation Refinement MILP (Figure 1).

Given the annotated ``~Q(D)``, a constraint set, a maximum deviation and a
distance measure, :class:`MILPBuilder` produces a :class:`repro.milp.Model`
whose optimal solutions correspond exactly to minimal refinements (Theorem
3.7):

* expressions (1)/(2) tie the refined numerical constants ``C_{A,⋄}`` to the
  per-value indicator variables ``A_{v,⋄}``;
* expression (3) defines the selection variable ``r_t`` of every tuple from
  its lineage and its higher-ranked DISTINCT duplicates ``S(t)``;
* expression (4) forces at least ``k*`` tuples into the output;
* expression (5) defines the rank ``s_t`` of each (relevant) tuple;
* expression (6) ties the top-k membership indicators ``l_{t,k}`` to ``s_t``;
* expressions (7)/(8) bound the deviation from the constraint set by ``ε``;
* the distance measure contributes the objective.

Implementation notes (documented deviations from the paper's presentation,
see DESIGN.md):

* Expression (5) literally sums ``r_{t'}`` over *all* higher-ranked tuples,
  which makes the constraint matrix quadratic in the data size.  The builder
  introduces prefix-sum variables (``P_i = P_{i-1} + r_i``) and writes
  ``s_t = 1 + |~Q|(1 - r_t) + P_{i-1}``, an equivalent reformulation with a
  linear number of non-zeros.  Solutions are unchanged.
* Following the paper's implementation section, rank and top-k variables are
  generated only for tuples that some constraint group or the distance
  measure actually references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.constraints import BoundType, CardinalityConstraint, ConstraintSet
from repro.core.context import MILPBuildContext
from repro.core.distances import DistanceMeasure
from repro.core.optimizations import BuilderOptions, classify_bound_types
from repro.core.refinement import Refinement
from repro.exceptions import RefinementError
from repro.milp.expression import LinearExpression, Variable, linear_sum
from repro.milp.model import Model
from repro.milp.solution import Solution
from repro.provenance.lineage import (
    AnnotatedDatabase,
    CategoricalAtom,
    NumericalAtom,
)
from repro.relational.executor import RankedResult
from repro.relational.predicates import Operator
from repro.relational.query import SPJQuery

#: Fractional margin used when turning strict rank comparisons into <=; ranks
#: are integral so any value in (0, 1) is exact.
_RANK_DELTA = 0.5


@dataclass
class BuildArtifacts:
    """Everything the solver needs after the model is built."""

    model: Model
    context: MILPBuildContext
    options: BuilderOptions
    extract_refinement: Callable[[Solution], Refinement]
    statistics: dict[str, int] = field(default_factory=dict)


class MILPBuilder:
    """Builds the Figure 1 MILP for one Best Approximation Refinement instance."""

    def __init__(
        self,
        query: SPJQuery,
        annotated: AnnotatedDatabase,
        constraints: ConstraintSet,
        epsilon: float,
        distance: DistanceMeasure,
        original_result: RankedResult,
        options: BuilderOptions | None = None,
    ) -> None:
        if epsilon < 0:
            raise RefinementError("the maximum deviation epsilon must be non-negative")
        for predicate in query.numerical_predicates:
            if predicate.operator is Operator.EQUAL:
                raise RefinementError(
                    "numerical equality predicates cannot be refined by the MILP "
                    f"model (predicate on {predicate.attribute!r})"
                )
        self.query = query
        self.annotated = annotated
        self.constraints = constraints
        self.epsilon = epsilon
        self.distance = distance
        self.original_result = original_result
        self.options = options or BuilderOptions.all()

        self._model = Model(f"refine[{query.name}]")
        self._categorical_variables: dict[tuple[str, object], Variable] = {}
        self._numerical_constant_variables: dict[tuple[str, Operator], Variable] = {}
        self._numerical_indicator_variables: dict[tuple[str, Operator, float], Variable] = {}
        self._selection_variables: dict[int, Variable] = {}
        self._rank_variables: dict[int, Variable] = {}
        self._topk_variables: dict[tuple[int, int], Variable] = {}

    # -- public API ------------------------------------------------------------------

    def build(self) -> BuildArtifacts:
        """Construct the model and return it with its extraction helpers."""
        merge_lineage = (
            self.options.merge_lineage_variables and not self.query.distinct
        )

        self._build_predicate_variables()
        self._build_selection_variables(merge_lineage)
        self._build_minimum_output_size()

        context = MILPBuildContext(
            model=self._model,
            query=self.query,
            annotated=self.annotated,
            constraints=self.constraints,
            k_star=self.constraints.k_star,
            original_result=self.original_result,
            original_topk_positions=self._original_topk_positions(),
            categorical_variables=self._categorical_variables,
            numerical_constant_variables=self._numerical_constant_variables,
            topk_variables=self._topk_variables,
        )

        distance_required = self.distance.required_topk_positions(context)
        needed = self._needed_topk(distance_required)
        self._build_rank_and_topk_variables(needed, set(distance_required))
        self._build_deviation_constraints()

        objective = self.distance.build_objective(context)
        self._model.minimize(objective)

        statistics = dict(self._model.summary())
        statistics["annotated_tuples"] = len(self.annotated)
        statistics["lineage_classes"] = self.annotated.num_lineage_classes
        statistics["topk_variables"] = len(self._topk_variables)

        return BuildArtifacts(
            model=self._model,
            context=context,
            options=self.options,
            extract_refinement=self._extract_refinement,
            statistics=statistics,
        )

    # -- expressions (1) and (2): numerical predicate indicators ----------------------

    def _build_predicate_variables(self) -> None:
        for predicate in self.query.categorical_predicates:
            domain = self.annotated.categorical_domains[predicate.attribute]
            for value in domain:
                variable = self._model.binary_var(f"cat[{predicate.attribute}={value}]")
                self._categorical_variables[(predicate.attribute, value)] = variable

        for predicate in self.query.numerical_predicates:
            attribute, operator = predicate.attribute, predicate.operator
            domain = self.annotated.numeric_domain(attribute)
            if not domain:
                raise RefinementError(
                    f"numerical predicate attribute {attribute!r} has no values in the data"
                )
            big_m = self.annotated.big_m(attribute)
            delta = self.annotated.smallest_gap(attribute)
            strict = 1.0 if operator.is_strict else 0.0

            constant = self._model.continuous_var(
                f"const[{attribute},{operator.value}]",
                lower=min(domain) - 1.0,
                upper=max(domain) + 1.0,
            )
            self._numerical_constant_variables[(attribute, operator)] = constant

            for value in domain:
                indicator = self._model.binary_var(
                    f"num[{attribute}{operator.value}{value:g}]"
                )
                self._numerical_indicator_variables[(attribute, operator, value)] = indicator
                if operator.is_lower_bound:
                    # Expression (1): indicator = 1 <=> value ⋄ C holds.
                    self._model.add_constraint(
                        constant + big_m * indicator >= value + (1.0 - strict) * delta
                    )
                    self._model.add_constraint(
                        constant - big_m * (1 - indicator) <= value - strict * delta
                    )
                else:
                    # Expression (2): mirror image for upper-bound predicates.
                    self._model.add_constraint(
                        constant - big_m * indicator <= value - (1.0 - strict) * delta
                    )
                    self._model.add_constraint(
                        constant + big_m * (1 - indicator) >= value + strict * delta
                    )

    # -- expression (3): tuple selection -------------------------------------------------

    def _lineage_variable(self, atom: CategoricalAtom | NumericalAtom) -> Variable:
        if isinstance(atom, CategoricalAtom):
            return self._categorical_variables[(atom.attribute, atom.value)]
        return self._numerical_indicator_variables[(atom.attribute, atom.operator, atom.value)]

    def _build_selection_variables(self, merge_lineage: bool) -> None:
        num_predicates = self.query.num_predicates
        if merge_lineage:
            # One variable per lineage equivalence class (Section 4, "Selecting
            # Lineages"); all tuples of the class share it.
            for class_index, (lineage, positions) in enumerate(
                self.annotated.lineage_classes.items()
            ):
                variable = self._model.binary_var(f"r_class[{class_index}]")
                lineage_sum = linear_sum(self._lineage_variable(atom) for atom in lineage)
                self._model.add_constraint(
                    lineage_sum - num_predicates * variable >= 0,
                    name=f"select_lb[class{class_index}]",
                )
                self._model.add_constraint(
                    lineage_sum - num_predicates * variable <= num_predicates - 1,
                    name=f"select_ub[class{class_index}]",
                )
                for position in positions:
                    self._selection_variables[position] = variable
            return

        for annotated_tuple in self.annotated.tuples:
            position = annotated_tuple.position
            variable = self._model.binary_var(f"r[{position}]")
            self._selection_variables[position] = variable

        for annotated_tuple in self.annotated.tuples:
            position = annotated_tuple.position
            variable = self._selection_variables[position]
            duplicates = self.annotated.duplicates_before(position)
            lineage_sum = linear_sum(
                self._lineage_variable(atom) for atom in annotated_tuple.lineage
            )
            duplicate_sum = linear_sum(
                1 - self._selection_variables[duplicate] for duplicate in duplicates
            )
            bound = num_predicates + len(duplicates)
            body = lineage_sum + duplicate_sum - bound * variable
            self._model.add_constraint(body >= 0, name=f"select_lb[{position}]")
            self._model.add_constraint(body <= bound - 1, name=f"select_ub[{position}]")

    # -- expression (4): minimum output size --------------------------------------------

    def _build_minimum_output_size(self) -> None:
        total = linear_sum(
            self._selection_variables[annotated_tuple.position]
            for annotated_tuple in self.annotated.tuples
        )
        self._model.add_constraint(
            total >= self.constraints.k_star, name="min_output_size"
        )

    # -- expressions (5) and (6): ranks and top-k membership ------------------------------

    def _original_topk_positions(self) -> list[list[int]]:
        """Positions in ``~Q(D)`` of the tuples representing the original top-``k*`` items."""
        k_star = self.constraints.k_star
        original_keys = self.original_result.top_k_keys(k_star)
        positions_by_key: dict[tuple[object, ...], list[int]] = {}
        select = list(self.query.select)
        use_distinct_key = self.query.distinct and bool(select)
        for annotated_tuple in self.annotated.tuples:
            if use_distinct_key:
                # Must mirror RankedResult.item_key for DISTINCT queries.
                key = tuple(annotated_tuple.values[name] for name in select)
            else:
                key = tuple(annotated_tuple.values.values())
            positions_by_key.setdefault(key, []).append(annotated_tuple.position)
        mapped: list[list[int]] = []
        for key in original_keys:
            mapped.append(positions_by_key.get(tuple(key), []))
        return mapped

    def _needed_topk(
        self, distance_required: dict[int, set[int]]
    ) -> dict[int, set[int]]:
        """Which ``(position, k)`` pairs need ``l_{t,k}`` variables."""
        needed: dict[int, set[int]] = {}
        for constraint in self.constraints:
            for annotated_tuple in self.annotated.tuples:
                if constraint.group.matches(annotated_tuple.values):
                    needed.setdefault(annotated_tuple.position, set()).add(constraint.k)
        for position, ks in distance_required.items():
            needed.setdefault(position, set()).update(ks)
        return needed

    def _build_rank_and_topk_variables(
        self, needed: dict[int, set[int]], objective_positions: set[int]
    ) -> None:
        if not needed:
            return
        tuples = self.annotated.tuples
        size = len(tuples)
        bound_types = classify_bound_types(self.annotated, self.constraints)
        # Positions whose l variables appear in the objective must keep an
        # exact rank definition even when the Section 4 relaxation is enabled:
        # the relaxation argument only covers constraint deviation.
        outcome_positions = set(objective_positions)

        # Prefix sums of the selection variables, in rank order: P_i = sum of
        # r over the first i+1 kept tuples.  These make expression (5) sparse.
        prefix: dict[int, Variable] = {}
        previous: Variable | None = None
        for index, annotated_tuple in enumerate(tuples):
            position = annotated_tuple.position
            current = self._model.continuous_var(f"prefix[{position}]", lower=0.0, upper=size)
            selection = self._selection_variables[position]
            if previous is None:
                self._model.add_constraint(current == selection.to_expression())
            else:
                self._model.add_constraint(current == previous + selection)
            prefix[index] = current
            previous = current

        index_of_position = {
            annotated_tuple.position: index for index, annotated_tuple in enumerate(tuples)
        }

        for position, ks in sorted(needed.items()):
            index = index_of_position[position]
            selection = self._selection_variables[position]
            rank = self._model.continuous_var(
                f"s[{position}]", lower=1.0, upper=2.0 * size + 1.0
            )
            self._rank_variables[position] = rank
            predecessors = (
                prefix[index - 1].to_expression() if index > 0 else LinearExpression()
            )
            rank_definition = 1.0 + size * (1 - selection) + predecessors

            relax = (
                self.options.relax_rank_expressions
                and position not in outcome_positions
                and bound_types.get(position)
                in ({BoundType.LOWER}, {BoundType.UPPER})
            )
            if relax and bound_types[position] == {BoundType.LOWER}:
                self._model.add_constraint(rank >= rank_definition, name=f"rank_lb[{position}]")
            elif relax and bound_types[position] == {BoundType.UPPER}:
                self._model.add_constraint(rank <= rank_definition, name=f"rank_ub[{position}]")
            else:
                self._model.add_constraint(rank == rank_definition, name=f"rank[{position}]")

            for k in sorted(ks):
                member = self._model.binary_var(f"l[{position},{k}]")
                self._topk_variables[(position, k)] = member
                coefficient = 2.0 * size + 1.0
                # Expression (6): member = 1 <=> rank <= k.
                self._model.add_constraint(
                    rank + coefficient * member >= k + _RANK_DELTA
                )
                self._model.add_constraint(
                    rank - coefficient * (1 - member) <= k
                )

    # -- expressions (7) and (8): deviation ------------------------------------------------

    def _build_deviation_constraints(self) -> None:
        shortfall_terms: list[LinearExpression] = []
        for index, constraint in enumerate(self.constraints):
            shortfall = self._model.continuous_var(
                f"E[{index}:{constraint.label()}]", lower=0.0, upper=float(constraint.k)
            )
            members = [
                self._topk_variables[(annotated_tuple.position, constraint.k)]
                for annotated_tuple in self.annotated.tuples
                if constraint.group.matches(annotated_tuple.values)
            ]
            count = linear_sum(members) if members else LinearExpression()
            sign = constraint.bound_type.sign
            # Expression (7): shortfall >= Sign(c) * (n - count).
            self._model.add_constraint(
                shortfall >= (constraint.bound - count) * float(sign),
                name=f"shortfall[{index}]",
            )
            denominator = float(max(constraint.bound, 1))
            shortfall_terms.append(shortfall * (1.0 / denominator))

        # Expression (8): mean relative shortfall bounded by epsilon.
        deviation = linear_sum(shortfall_terms) * (1.0 / len(self.constraints))
        self._model.add_constraint(deviation <= self.epsilon, name="max_deviation")

    # -- solution extraction -------------------------------------------------------------

    def _extract_refinement(self, solution: Solution) -> Refinement:
        categorical: dict[str, frozenset] = {}
        for predicate in self.query.categorical_predicates:
            domain = self.annotated.categorical_domains[predicate.attribute]
            selected = frozenset(
                value
                for value in domain
                if solution.value(self._categorical_variables[(predicate.attribute, value)])
                > 0.5
            )
            if not selected:
                # A refinement that selects no value of a categorical predicate
                # would produce an empty output; expression (4) prevents this in
                # feasible solutions, so reaching here indicates solver trouble.
                raise RefinementError(
                    f"solution selects no value for categorical predicate on "
                    f"{predicate.attribute!r}"
                )
            categorical[predicate.attribute] = selected

        numerical: dict[tuple[str, Operator], float] = {}
        for predicate in self.query.numerical_predicates:
            key = (predicate.attribute, predicate.operator)
            raw = solution.value(self._numerical_constant_variables[key])
            numerical[key] = self._snap_constant(predicate, raw, solution)

        return Refinement(numerical=numerical, categorical=categorical)

    def _snap_constant(self, predicate, raw: float, solution: Solution) -> float:
        """Snap the continuous constant to the most conservative equivalent value.

        Any constant between two adjacent domain values selects the same
        tuples; snapping to the boundary of the selected value set makes the
        refined query readable (``GPA >= 3.6`` rather than ``GPA >= 3.5873``)
        without changing its output or its predicate distance beyond what the
        solver already paid for.
        """
        attribute, operator = predicate.attribute, predicate.operator
        selected_values = [
            value
            for value in self.annotated.numeric_domain(attribute)
            if solution.value(
                self._numerical_indicator_variables[(attribute, operator, value)]
            )
            > 0.5
        ]
        if not selected_values:
            return raw
        snapped = min(selected_values) if operator.is_lower_bound else max(selected_values)
        # Never make the refinement look farther from the original query than
        # the constant the solver actually chose (that would break the match
        # between the reported distance and the MILP objective).
        if abs(snapped - predicate.constant) <= abs(raw - predicate.constant) + 1e-9:
            return snapped
        return raw


def build_model(
    query: SPJQuery,
    annotated: AnnotatedDatabase,
    constraints: ConstraintSet,
    epsilon: float,
    distance: DistanceMeasure,
    original_result: RankedResult,
    options: BuilderOptions | None = None,
) -> BuildArtifacts:
    """Convenience wrapper around :class:`MILPBuilder`."""
    builder = MILPBuilder(
        query=query,
        annotated=annotated,
        constraints=constraints,
        epsilon=epsilon,
        distance=distance,
        original_result=original_result,
        options=options,
    )
    return builder.build()
