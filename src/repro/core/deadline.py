"""End-to-end request deadlines and their thread-local propagation.

A :class:`Deadline` is an absolute wall-clock budget created once at the edge
(the HTTP handler, or the CLI for a ``--deadline`` run) and consulted at
every layer below: the admission queue sheds requests whose budget expires
while they wait, the engine clamps solver time limits to the remaining
budget, and the sqlite backend clamps its busy timeout and lock-retry loop.

Most layers cannot thread an extra parameter through every call (the
executor is shared by four engines with fixed signatures), so the deadline
also travels *ambiently*: :func:`deadline_scope` binds it to the current
thread and :func:`current_deadline` reads it back.  Only the request thread
itself sees the binding — pool workers and race threads receive explicit
per-task budgets instead, exactly like the pre-existing timeout plumbing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.exceptions import DeadlineExceeded


class Deadline:
    """An absolute wall-clock budget, monotonic-clock based.

    ``Deadline.after(2.5)`` expires 2.5 seconds from now; :meth:`remaining`
    never goes below zero, and :meth:`require` turns expiry into the typed
    :class:`~repro.exceptions.DeadlineExceeded`.
    """

    __slots__ = ("budget_s", "expires_at")

    def __init__(self, expires_at: float, budget_s: float) -> None:
        self.expires_at = expires_at
        self.budget_s = budget_s

    @classmethod
    def after(cls, budget_s: float) -> "Deadline":
        return cls(time.monotonic() + budget_s, budget_s)

    def remaining(self) -> float:
        """Seconds left on the budget (0.0 once expired)."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def require(self, what: str) -> None:
        """Raise the typed deadline error if the budget is already spent."""
        if self.expired:
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:g}s expired before {what}"
            )

    def clamp(self, limit: float | None) -> float:
        """``limit`` bounded by the remaining budget (``None`` = budget only)."""
        remaining = self.remaining()
        if limit is None:
            return remaining
        return min(float(limit), remaining)

    def __repr__(self) -> str:
        return f"Deadline(budget={self.budget_s:g}s, remaining={self.remaining():.3f}s)"


_AMBIENT = threading.local()


def current_deadline() -> Deadline | None:
    """The deadline bound to the calling thread (``None`` outside any scope)."""
    return getattr(_AMBIENT, "deadline", None)


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Bind ``deadline`` to the calling thread for the duration of the block.

    ``None`` is a valid binding (it *clears* an inherited scope, so a nested
    undated computation never picks up an outer request's budget by
    accident).  Scopes restore the previous binding on exit, so they nest.
    """
    previous = current_deadline()
    _AMBIENT.deadline = deadline
    try:
        yield deadline
    finally:
        _AMBIENT.deadline = previous


def remaining_or(default: float) -> float:
    """The ambient deadline's remaining seconds, or ``default`` without one."""
    deadline = current_deadline()
    return default if deadline is None else min(default, deadline.remaining())


__all__ = [
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "remaining_or",
]
