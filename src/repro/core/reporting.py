"""Human-readable reports over refinement results.

The paper's examples repeatedly contrast the refinements chosen under
different minimality notions (predicate distance vs. Jaccard vs. Kendall) for
the same query and constraints.  This module packages that comparison — and a
detailed single-result report — so applications, the CLI and notebooks do not
have to re-implement the formatting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.constraints import ConstraintSet
from repro.core.distances import get_distance
from repro.core.solver import RefinementResult, RefinementSolver
from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.sqlgen import render_sql


@dataclass
class ComparisonRow:
    """One distance measure's outcome within a :class:`DistanceComparison`."""

    distance_code: str
    feasible: bool
    distance_value: float | None
    deviation: float | None
    changes: str
    total_seconds: float
    top_k_overlap: int | None = None


@dataclass
class DistanceComparison:
    """Results of solving the same instance under several distance measures."""

    query: SPJQuery
    constraints: ConstraintSet
    epsilon: float
    rows: list[ComparisonRow] = field(default_factory=list)
    results: dict[str, RefinementResult] = field(default_factory=dict)

    def to_text(self) -> str:
        """Fixed-width table suitable for terminals and log files."""
        header = (
            f"{'distance':<10} {'status':<11} {'value':>8} {'deviation':>10} "
            f"{'overlap':>8} {'time[s]':>8}  changes"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            status = "ok" if row.feasible else "infeasible"
            value = "-" if row.distance_value is None else f"{row.distance_value:.3f}"
            deviation = "-" if row.deviation is None else f"{row.deviation:.3f}"
            overlap = "-" if row.top_k_overlap is None else str(row.top_k_overlap)
            lines.append(
                f"{row.distance_code:<10} {status:<11} {value:>8} {deviation:>10} "
                f"{overlap:>8} {row.total_seconds:>8.2f}  {row.changes}"
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """The same table as GitHub-flavoured markdown."""
        lines = [
            "| distance | status | value | deviation | top-k overlap | time [s] | changes |",
            "|---|---|---|---|---|---|---|",
        ]
        for row in self.rows:
            status = "ok" if row.feasible else "infeasible"
            value = "-" if row.distance_value is None else f"{row.distance_value:.3f}"
            deviation = "-" if row.deviation is None else f"{row.deviation:.3f}"
            overlap = "-" if row.top_k_overlap is None else str(row.top_k_overlap)
            lines.append(
                f"| {row.distance_code} | {status} | {value} | {deviation} | {overlap} "
                f"| {row.total_seconds:.2f} | {row.changes} |"
            )
        return "\n".join(lines)

    def best(self) -> ComparisonRow | None:
        """The feasible row with the smallest distance value (ties: first)."""
        feasible = [row for row in self.rows if row.feasible and row.distance_value is not None]
        if not feasible:
            return None
        return min(feasible, key=lambda row: row.distance_value)


def compare_distances(
    database: Database,
    query: SPJQuery,
    constraints: ConstraintSet,
    epsilon: float = 0.5,
    distances: Sequence[str] = ("pred", "jaccard", "kendall"),
    method: str = "milp+opt",
    backend: str = "auto",
    time_limit: float | None = None,
) -> DistanceComparison:
    """Solve the same refinement instance under several distance measures.

    Each measure is optimised independently (one solve per measure); the
    returned comparison records, per measure, the refinement's own distance
    value, its deviation, how many of the original top-``k*`` items survive,
    and a human-readable description of the predicate changes.
    """
    from repro.relational.executor import QueryExecutor

    comparison = DistanceComparison(query=query, constraints=constraints, epsilon=epsilon)
    original = QueryExecutor(database).evaluate(query)
    original_topk = set(original.top_k_keys(constraints.k_star))

    for name in distances:
        measure = get_distance(name)
        result = RefinementSolver(
            database,
            query,
            constraints,
            epsilon=epsilon,
            distance=measure,
            method=method,
            backend=backend,
            time_limit=time_limit,
        ).solve()
        comparison.results[measure.code] = result
        overlap = None
        changes = "-"
        if result.feasible:
            refined_topk = set(result.refined_result.top_k_keys(constraints.k_star))
            overlap = len(original_topk & refined_topk)
            changes = result.refinement.describe(query)
        comparison.rows.append(
            ComparisonRow(
                distance_code=measure.code,
                feasible=result.feasible,
                distance_value=result.distance_value,
                deviation=result.deviation,
                changes=changes,
                total_seconds=result.total_seconds,
                top_k_overlap=overlap,
            )
        )
    return comparison


def refinement_report(result: RefinementResult, query: SPJQuery, top: int = 10) -> str:
    """A detailed multi-line report for a single refinement result."""
    lines = [f"method: {result.method}   distance: {result.distance_code}"]
    if not result.feasible:
        lines.append("outcome: no refinement within the maximum deviation exists")
        return "\n".join(lines)
    lines.append(f"outcome: refinement found ({result.refinement.describe(query)})")
    lines.append(
        f"distance: {result.distance_value:.4g}   deviation: {result.deviation:.4g}"
    )
    lines.append(
        f"timings: setup {result.setup_seconds:.3f}s, solve {result.solve_seconds:.3f}s"
    )
    lines.append("original query:")
    lines.extend("  " + line for line in render_sql(query).splitlines())
    lines.append("refined query:")
    lines.extend("  " + line for line in (result.sql or "").splitlines())
    lines.append(f"top-{top} of the refined ranking:")
    for rank, row in enumerate(result.refined_result.projected.rows[:top], start=1):
        lines.append(f"  {rank:3d}. {row}")
    lines.append("constraint counts:")
    for label, count in result.constraint_counts.items():
        lines.append(f"  {label}: {count}")
    return "\n".join(lines)


__all__ = [
    "ComparisonRow",
    "DistanceComparison",
    "compare_distances",
    "refinement_report",
]
