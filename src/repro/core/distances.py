"""Refinement distance measures and their MILP linearizations (Section 2.2).

Three measures are provided, matching the paper's experiments:

``PredicateDistance`` (QD)
    Compares the predicates of ``Q`` and ``Q'``: the normalised absolute
    change of every numerical constant plus the Jaccard distance between the
    value sets of every categorical predicate.

``JaccardDistance`` (JAC)
    Compares the top-``k`` of ``Q`` and ``Q'`` as sets, via Jaccard distance.

``KendallDistance`` (KEN)
    Fagin et al.'s Kendall's tau for top-``k`` lists, restricted to Cases 2
    and 3 — the only cases that can occur when refinements never reorder
    tuples.

Each measure knows how to *evaluate* itself on a concrete pair of
query/refined-query results (used for reporting and by the exhaustive
baselines) and how to *linearise* itself into the MILP objective (used by the
MILP-based algorithms).
"""

from __future__ import annotations

import abc

from repro.core.context import MILPBuildContext
from repro.exceptions import RefinementError
from repro.milp.expression import LinearExpression, linear_sum
from repro.relational.executor import RankedResult
from repro.relational.query import SPJQuery


def _jaccard(first: frozenset | set, second: frozenset | set) -> float:
    """Plain Jaccard distance between two sets (1 - |∩| / |∪|)."""
    union = first | second
    if not union:
        return 0.0
    return 1.0 - len(first & second) / len(union)


class DistanceMeasure(abc.ABC):
    """Interface shared by all refinement distance measures."""

    #: Short code used in figures and benchmark output ("QD", "JAC", "KEN").
    code: str = "?"
    #: Whether the measure needs the ranked output of refinements (outcome-based).
    outcome_based: bool = False

    # -- evaluation on concrete rankings --------------------------------------

    @abc.abstractmethod
    def evaluate(
        self,
        query: SPJQuery,
        refined_query: SPJQuery,
        original_result: RankedResult,
        refined_result: RankedResult,
        k: int,
    ) -> float:
        """The distance between ``Q`` and ``Q'`` (smaller is closer)."""

    # -- MILP linearization -----------------------------------------------------

    def required_topk_positions(self, context: MILPBuildContext) -> dict[int, set[int]]:
        """Extra ``(position -> set of k)`` pairs that need ``l_{t,k}`` variables.

        Predicate-based distances need none; outcome-based distances request
        the positions their objective sums over.  The builder merges these
        with the positions needed by the cardinality constraints.
        """
        return {}

    @abc.abstractmethod
    def build_objective(self, context: MILPBuildContext) -> LinearExpression:
        """Linear objective to *minimize*; may add auxiliary variables/constraints."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PredicateDistance(DistanceMeasure):
    """The paper's ``DIS_pred``: compares the selection predicates of ``Q`` and ``Q'``.

    For every numerical predicate the contribution is ``|C - C'| / C`` (the
    normaliser falls back to 1 when the original constant is 0).  For every
    categorical predicate it is the Jaccard distance between the original and
    refined value sets.

    Linearization: the numerical term uses a standard absolute-value split.
    The categorical Jaccard term ``1 - |R∩S| / |R∪S|`` has an integer-valued
    denominator ``|R∪S| ∈ {|R|, ..., |R| + m}``, so it is linearised exactly
    with one indicator per possible denominator value and a big-M product
    linearization (the paper mentions the Charnes–Cooper transformation; the
    indicator formulation is the equivalent exact rewrite that composes with
    the other objective terms, see DESIGN.md).
    """

    code = "QD"
    outcome_based = False

    def evaluate(
        self,
        query: SPJQuery,
        refined_query: SPJQuery,
        original_result: RankedResult,
        refined_result: RankedResult,
        k: int,
    ) -> float:
        return self.evaluate_queries(query, refined_query)

    def evaluate_refinement(self, query: SPJQuery, refinement) -> float:
        """Predicate distance straight from a :class:`Refinement`'s parameter maps.

        Equivalent to :meth:`evaluate_queries` on ``refinement.apply(query)``
        but without rebuilding the refined query's predicate dictionaries —
        the exhaustive baselines call this once per candidate.
        """
        total = 0.0
        for predicate in query.numerical_predicates:
            key = (predicate.attribute, predicate.operator)
            constant = refinement.numerical.get(key, predicate.constant)
            normaliser = abs(predicate.constant) if predicate.constant else 1.0
            total += abs(predicate.constant - constant) / normaliser
        for predicate in query.categorical_predicates:
            values = refinement.categorical.get(predicate.attribute, predicate.values)
            total += _jaccard(predicate.values, values)
        return total

    def evaluate_queries(self, query: SPJQuery, refined_query: SPJQuery) -> float:
        """Predicate distance needs only the two queries, not their outputs."""
        refined_numerical = {
            (predicate.attribute, predicate.operator): predicate.constant
            for predicate in refined_query.numerical_predicates
        }
        refined_categorical = {
            predicate.attribute: predicate.values
            for predicate in refined_query.categorical_predicates
        }
        total = 0.0
        for predicate in query.numerical_predicates:
            key = (predicate.attribute, predicate.operator)
            if key not in refined_numerical:
                raise RefinementError(
                    f"refined query dropped the numerical predicate on {key}"
                )
            normaliser = abs(predicate.constant) if predicate.constant else 1.0
            total += abs(predicate.constant - refined_numerical[key]) / normaliser
        for predicate in query.categorical_predicates:
            if predicate.attribute not in refined_categorical:
                raise RefinementError(
                    f"refined query dropped the categorical predicate on "
                    f"{predicate.attribute!r}"
                )
            total += _jaccard(predicate.values, refined_categorical[predicate.attribute])
        return total

    def build_objective(self, context: MILPBuildContext) -> LinearExpression:
        model = context.model
        terms: list[LinearExpression] = []

        # Numerical predicates: |C' - C| / C via two-sided bounds on an aux var.
        for predicate in context.query.numerical_predicates:
            key = (predicate.attribute, predicate.operator)
            constant_variable = context.numerical_constant_variables[key]
            normaliser = abs(predicate.constant) if predicate.constant else 1.0
            deviation = model.continuous_var(
                f"qd_abs[{predicate.attribute},{predicate.operator.value}]", lower=0.0
            )
            model.add_constraint(
                deviation >= (constant_variable - predicate.constant) * (1.0 / normaliser),
                name=f"qd_abs_pos[{predicate.attribute},{predicate.operator.value}]",
            )
            model.add_constraint(
                deviation >= (predicate.constant - constant_variable) * (1.0 / normaliser),
                name=f"qd_abs_neg[{predicate.attribute},{predicate.operator.value}]",
            )
            terms.append(deviation.to_expression())

        # Categorical predicates: exact Jaccard linearization.
        for predicate in context.query.categorical_predicates:
            terms.append(self._categorical_term(context, predicate))

        return linear_sum(terms) if terms else LinearExpression()

    @staticmethod
    def _categorical_term(context: MILPBuildContext, predicate) -> LinearExpression:
        model = context.model
        attribute = predicate.attribute
        original = predicate.values
        domain = context.annotated.categorical_domains[attribute]
        in_original = [value for value in domain if value in original]
        outside_original = [value for value in domain if value not in original]

        intersection = linear_sum(
            context.categorical_variables[(attribute, value)] for value in in_original
        )
        extras = linear_sum(
            context.categorical_variables[(attribute, value)] for value in outside_original
        )
        base = len(original)
        max_intersection = max(len(in_original), 1)

        # One indicator per feasible denominator value |R ∪ S| = base + e.
        selectors = []
        ratio_terms: list[LinearExpression] = []
        for extra_count in range(len(outside_original) + 1):
            denominator = base + extra_count
            selector = model.binary_var(f"qd_den[{attribute},{denominator}]")
            gated = model.continuous_var(
                f"qd_int[{attribute},{denominator}]", lower=0.0, upper=max_intersection
            )
            # gated == intersection when this denominator is selected, else 0.
            model.add_constraint(gated <= intersection)
            model.add_constraint(gated <= max_intersection * selector)
            model.add_constraint(
                gated >= intersection - max_intersection * (1 - selector)
            )
            selectors.append((selector, extra_count))
            ratio_terms.append(gated * (1.0 / denominator))

        model.add_constraint(
            linear_sum(selector for selector, _ in selectors) == 1,
            name=f"qd_den_pick[{attribute}]",
        )
        model.add_constraint(
            linear_sum(selector * count for selector, count in selectors) == extras,
            name=f"qd_den_match[{attribute}]",
        )
        # Jaccard distance = 1 - intersection / denominator.
        return LinearExpression({}, 1.0) - linear_sum(ratio_terms)


class JaccardDistance(DistanceMeasure):
    """The paper's ``DIS_Jaccard``: Jaccard distance between the two top-k sets.

    MILP linearization: following the paper's implementation notes, minimising
    the Jaccard distance over a fixed-size top-``k*`` is equivalent to
    maximising the number of original top-``k*`` items that remain, so the
    objective is ``k* - Σ l_{t,k*}`` over the tuples representing the original
    top-``k*`` items.
    """

    code = "JAC"
    outcome_based = True

    def evaluate(
        self,
        query: SPJQuery,
        refined_query: SPJQuery,
        original_result: RankedResult,
        refined_result: RankedResult,
        k: int,
    ) -> float:
        original_items = set(original_result.top_k_keys(k))
        refined_items = set(refined_result.top_k_keys(k))
        return _jaccard(original_items, refined_items)

    def required_topk_positions(self, context: MILPBuildContext) -> dict[int, set[int]]:
        required: dict[int, set[int]] = {}
        for positions in context.original_topk_positions:
            for position in positions:
                required.setdefault(position, set()).add(context.k_star)
        return required

    def build_objective(self, context: MILPBuildContext) -> LinearExpression:
        kept = []
        for positions in context.original_topk_positions:
            for position in positions:
                kept.append(context.topk_variable(position, context.k_star))
        return LinearExpression({}, float(context.k_star)) - linear_sum(kept)


class KendallDistance(DistanceMeasure):
    """Fagin et al.'s Kendall's tau for top-k lists, Cases 2 and 3 only.

    Because refinements never reorder tuples, the only discordant pairs are
    those where a tuple leaves the original top-``k*`` (Case 2, paired with
    every originally-worse tuple that stays) or is displaced by a newly
    entering tuple (Case 3).  The MILP follows the paper's Section 5.1
    formulation: auxiliary variables ``CaseII_t``/``CaseIII_t`` per original
    top-``k*`` tuple, bounded by big-M expressions over the ``l_{t,k*}``
    variables, summed into the objective.
    """

    code = "KEN"
    outcome_based = True

    def evaluate(
        self,
        query: SPJQuery,
        refined_query: SPJQuery,
        original_result: RankedResult,
        refined_result: RankedResult,
        k: int,
    ) -> float:
        """The exact Fagin Cases 2+3 penalty between the two top-``k`` lists.

        Case 3 pairs one departed item with one entering item.  Case 2 pairs an
        item present in both lists with an item present in exactly one of them
        and ranked above it there (a departed item above a surviving one in the
        original list, or an entering item above a surviving one in the refined
        list).  This is the textbook measure the paper's Example 2.4 computes;
        the MILP objective below follows the coarser linearization the paper's
        implementation section describes, so the reported ``distance_value`` of
        a Kendall solve can differ slightly from its ``objective_value``.
        """
        original_keys = original_result.top_k_keys(k)
        refined_keys = refined_result.top_k_keys(k)
        original_set = set(original_keys)
        refined_set = set(refined_keys)
        departed = [key for key in original_keys if key not in refined_set]
        entered = [key for key in refined_keys if key not in original_set]

        # Case 3: every (departed, entered) pair is discordant.
        total = float(len(departed) * len(entered))

        # Case 2a: a departed item ranked above a surviving item originally.
        for index, key in enumerate(original_keys):
            if key in refined_set:
                continue
            total += sum(
                1 for other in original_keys[index + 1 :] if other in refined_set
            )
        # Case 2b: an entering item ranked above a surviving item in the
        # refined list (it displaced that survivor downwards).
        for index, key in enumerate(refined_keys):
            if key in original_set:
                continue
            total += sum(
                1 for other in refined_keys[index + 1 :] if other in original_set
            )
        return total

    def required_topk_positions(self, context: MILPBuildContext) -> dict[int, set[int]]:
        # Case 3 counts how many tuples outside the original top-k* enter the
        # refined top-k*, so every annotated tuple needs an l_{t,k*} variable.
        return {
            annotated_tuple.position: {context.k_star}
            for annotated_tuple in context.annotated.tuples
        }

    def build_objective(self, context: MILPBuildContext) -> LinearExpression:
        model = context.model
        k_star = context.k_star
        big_m = len(context.annotated) + 1

        original_positions = [
            positions[0] for positions in context.original_topk_positions if positions
        ]
        original_set = set(original_positions)
        outside = [
            annotated_tuple.position
            for annotated_tuple in context.annotated.tuples
            if annotated_tuple.position not in original_set
            and context.has_topk_variable(annotated_tuple.position, k_star)
        ]
        entering = linear_sum(
            context.topk_variable(position, k_star) for position in outside
        )

        case_terms = []
        for rank, position in enumerate(original_positions):
            membership = context.topk_variable(position, k_star)
            worse_survivors = linear_sum(
                context.topk_variable(other, k_star)
                for other in original_positions[rank + 1 :]
            )

            # Under lazy generation these six rows join the "distance" pool
            # keyed by this position (the cut loop only materialises them
            # when a candidate's case variables understate the penalty);
            # otherwise they enter the model exactly as before.
            case_two = model.continuous_var(f"ken_case2[{position}]", lower=0.0)
            context.add_linking_constraint(case_two <= big_m * (1 - membership), position)
            context.add_linking_constraint(
                case_two <= big_m * membership + worse_survivors, position
            )
            context.add_linking_constraint(
                case_two >= worse_survivors - big_m * membership, position
            )

            case_three = model.continuous_var(f"ken_case3[{position}]", lower=0.0)
            context.add_linking_constraint(case_three <= big_m * (1 - membership), position)
            context.add_linking_constraint(
                case_three <= big_m * membership + entering, position
            )
            context.add_linking_constraint(
                case_three >= entering - big_m * membership, position
            )

            case_terms.append(case_two + case_three)

        return linear_sum(case_terms) if case_terms else LinearExpression()


_DISTANCES: dict[str, type[DistanceMeasure]] = {
    "pred": PredicateDistance,
    "qd": PredicateDistance,
    "predicate": PredicateDistance,
    "jaccard": JaccardDistance,
    "jac": JaccardDistance,
    "kendall": KendallDistance,
    "ken": KendallDistance,
}


def get_distance(name: str | DistanceMeasure) -> DistanceMeasure:
    """Resolve a distance measure by name (``"pred"``, ``"jaccard"``, ``"kendall"``)."""
    if isinstance(name, DistanceMeasure):
        return name
    key = name.lower()
    if key not in _DISTANCES:
        raise RefinementError(
            f"unknown distance measure {name!r}; available: pred, jaccard, kendall"
        )
    return _DISTANCES[key]()
