"""A bundle describing one Best Approximation Refinement instance."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import ConstraintSet
from repro.core.distances import DistanceMeasure, get_distance
from repro.relational.database import Database
from repro.relational.query import SPJQuery


@dataclass
class RefinementProblem:
    """Everything that defines one instance of the problem (Definition 2.7).

    Attributes
    ----------
    database:
        The database ``D``.
    query:
        The original query ``Q``.
    constraints:
        The cardinality constraint set ``C``.
    epsilon:
        The maximum acceptable deviation from ``C``.
    distance:
        The distance measure (name or instance); defaults to the predicate
        distance, which is also the paper's default.
    """

    database: Database
    query: SPJQuery
    constraints: ConstraintSet
    epsilon: float = 0.5
    distance: DistanceMeasure | str = "pred"

    def __post_init__(self) -> None:
        self.distance = get_distance(self.distance)

    @property
    def k_star(self) -> int:
        return self.constraints.k_star

    def describe(self) -> str:
        """One-line description used by the benchmark harness."""
        constraint_labels = ", ".join(c.label() for c in self.constraints)
        return (
            f"{self.query.name} | eps={self.epsilon:g} | {self.distance.code} | "
            f"C = {{{constraint_labels}}}"
        )
