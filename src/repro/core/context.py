"""The build context shared between the MILP builder and the distance measures.

The distance measures need access to the variables the builder created (the
categorical annotation variables ``A_v``, the refined numerical constants
``C_{A,⋄}`` and the top-k membership variables ``l_{t,k}``) in order to express
their objective.  :class:`MILPBuildContext` is the narrow interface through
which they get it, keeping the builder and the distances decoupled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.constraints import ConstraintSet
from repro.milp.expression import Variable
from repro.milp.model import Model
from repro.provenance.lineage import AnnotatedDatabase
from repro.relational.executor import RankedResult
from repro.relational.predicates import Operator
from repro.relational.query import SPJQuery


@dataclass
class MILPBuildContext:
    """Everything a distance measure needs to linearise itself.

    Attributes
    ----------
    model:
        The MILP model under construction; distances may add auxiliary
        variables and constraints to it.
    query:
        The original query ``Q``.
    annotated:
        The annotated ``~Q(D)`` (already pruned if the relevancy optimization
        is active).
    constraints:
        The cardinality constraint set ``C``.
    k_star:
        The largest ``k`` with a constraint.
    original_result:
        The ranked output of the original query (used by outcome-based
        distances).
    original_topk_positions:
        For each item of the original top-``k*``, the positions (within
        ``annotated``) of the tuples representing it.  Items may map to more
        than one position when the query is DISTINCT and the item has
        duplicates in ``~Q(D)``.
    categorical_variables:
        ``(attribute, value) -> A_v``.
    numerical_constant_variables:
        ``(attribute, operator) -> C_{A,⋄}``.
    topk_variables:
        ``(position, k) -> l_{t,k}``; only the positions/k the builder decided
        are needed have variables.
    """

    model: Model
    query: SPJQuery
    annotated: AnnotatedDatabase
    constraints: ConstraintSet
    k_star: int
    original_result: RankedResult
    original_topk_positions: list[list[int]] = field(default_factory=list)
    categorical_variables: Mapping[tuple[str, object], Variable] = field(default_factory=dict)
    numerical_constant_variables: Mapping[tuple[str, Operator], Variable] = field(
        default_factory=dict
    )
    topk_variables: Mapping[tuple[int, int], Variable] = field(default_factory=dict)

    def topk_variable(self, position: int, k: int) -> Variable:
        """The ``l_{t,k}`` variable for a tuple position, failing loudly if absent."""
        return self.topk_variables[(position, k)]

    def has_topk_variable(self, position: int, k: int) -> bool:
        return (position, k) in self.topk_variables
