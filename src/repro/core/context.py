"""The build context shared between the MILP builder and the distance measures.

The distance measures need access to the variables the builder created (the
categorical annotation variables ``A_v``, the refined numerical constants
``C_{A,⋄}`` and the top-k membership variables ``l_{t,k}``) in order to express
their objective.  :class:`MILPBuildContext` is the narrow interface through
which they get it, keeping the builder and the distances decoupled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.core.constraints import ConstraintSet
from repro.milp.constraint import LinearConstraint
from repro.milp.expression import Variable
from repro.milp.model import Model

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.core.lazy_generation import LinkingConstraintSink
from repro.provenance.lineage import AnnotatedDatabase
from repro.relational.executor import RankedResult
from repro.relational.predicates import Operator
from repro.relational.query import SPJQuery


@dataclass
class MILPBuildContext:
    """Everything a distance measure needs to linearise itself.

    Attributes
    ----------
    model:
        The MILP model under construction; distances may add auxiliary
        variables and constraints to it.
    query:
        The original query ``Q``.
    annotated:
        The annotated ``~Q(D)`` (already pruned if the relevancy optimization
        is active).
    constraints:
        The cardinality constraint set ``C``.
    k_star:
        The largest ``k`` with a constraint.
    original_result:
        The ranked output of the original query (used by outcome-based
        distances).
    original_topk_positions:
        For each item of the original top-``k*``, the positions (within
        ``annotated``) of the tuples representing it.  Items may map to more
        than one position when the query is DISTINCT and the item has
        duplicates in ``~Q(D)``.
    categorical_variables:
        ``(attribute, value) -> A_v``.
    numerical_constant_variables:
        ``(attribute, operator) -> C_{A,⋄}``.
    topk_variables:
        ``(position, k) -> l_{t,k}``; only the positions/k the builder decided
        are needed have variables.
    linking_sink:
        Destination for the distance measures' auxiliary *linking* rows under
        lazy constraint generation (``None`` otherwise — rows then go
        straight into the model).  See :meth:`add_linking_constraint`.
    """

    model: Model
    query: SPJQuery
    annotated: AnnotatedDatabase
    constraints: ConstraintSet
    k_star: int
    original_result: RankedResult
    original_topk_positions: list[list[int]] = field(default_factory=list)
    categorical_variables: Mapping[tuple[str, object], Variable] = field(default_factory=dict)
    numerical_constant_variables: Mapping[tuple[str, Operator], Variable] = field(
        default_factory=dict
    )
    topk_variables: Mapping[tuple[int, int], Variable] = field(default_factory=dict)
    linking_sink: "LinkingConstraintSink | None" = None

    def add_linking_constraint(
        self, constraint: LinearConstraint, key: int, name: str | None = None
    ) -> None:
        """Route a distance-linking row eagerly or into the lazy pool.

        Distance measures call this for rows that merely *link* auxiliary
        variables to the membership variables (the Kendall case rows): with
        no sink they enter the model as before; under lazy generation they
        join the ``distance`` pool keyed by the tuple position ``key`` they
        link, and the cut loop generates them only when violated.
        """
        if self.linking_sink is None:
            self.model.add_constraint(constraint, name=name)
        else:
            self.linking_sink.add(constraint, key)

    def topk_variable(self, position: int, k: int) -> Variable:
        """The ``l_{t,k}`` variable for a tuple position, failing loudly if absent."""
        return self.topk_variables[(position, k)]

    def has_topk_variable(self, position: int, k: int) -> bool:
        return (position, k) in self.topk_variables
