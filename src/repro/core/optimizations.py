"""The three Section 4 optimizations.

1. **Relevancy-based pruning** (:func:`apply_relevancy_pruning`): drop tuples
   that can never appear in the top-``k*`` of any refinement — those past
   position ``k*`` within their lineage equivalence class.
2. **Lineage-class variable merging**: tuples sharing a lineage always share
   the value of their selection variable, so one binary per class suffices.
   (Not applicable to DISTINCT queries; implemented inside the MILP builder,
   which consumes :class:`BuilderOptions`.)
3. **Rank-expression relaxation** for tuples whose groups carry only
   lower-bound or only upper-bound constraints (also implemented in the
   builder).

Options are bundled in :class:`BuilderOptions` so the solver facade can switch
between the paper's ``MILP`` (no optimizations) and ``MILP+opt`` (all
applicable optimizations) configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.constraints import BoundType, ConstraintSet
from repro.provenance.lineage import AnnotatedDatabase, AnnotatedTuple


@dataclass(frozen=True)
class BuilderOptions:
    """Which optimizations the MILP builder should apply.

    Attributes
    ----------
    relevancy_pruning:
        Apply the relevancy-based pruning before building the program.
    merge_lineage_variables:
        Use one selection variable per lineage class instead of one per tuple
        (silently skipped for DISTINCT queries, which need per-tuple variables).
    relax_rank_expressions:
        Replace the rank-definition equality with an inequality for tuples
        whose groups have only lower-bound (or only upper-bound) constraints.
    block_lowering:
        Emit constraint families as COO row blocks
        (:meth:`repro.milp.Model.add_constraint_block`) instead of one
        :class:`LinearConstraint` per row.  This is a *lowering* detail, not a
        Section 4 optimization: both values produce matrix-identical standard
        forms (asserted by the golden tests), so it is ``True`` for the
        paper's ``MILP`` and ``MILP+opt`` configurations alike and exists as
        a switch only for those tests and for debugging.
    lazy_generation:
        Withhold the separable constraint families (rank definitions, top-k
        membership rows, Kendall distance-linking rows) from the model as
        :class:`repro.core.lazy_generation.LazyPool` objects instead of
        lowering them eagerly; the solver facade then drives the
        cutting-plane loop (:func:`repro.core.lazy_generation.run_cut_loop`)
        over them.  Like ``block_lowering`` this is a solve strategy, not a
        Section 4 optimization — the loop provably converges to the same
        optima — so it defaults to ``False`` here and is switched on by
        :class:`repro.core.solver.RefinementSolver` for the ``MILP`` and
        ``MILP+opt`` configurations alike (``REPRO_MILP_LAZY``).
    lazy_generation_min_rows:
        Pool-size floor for the loop: when a build's pools end up holding
        fewer pending rows than this, the solver facade rebuilds the model
        eagerly (byte-identical to ``lazy_generation=False``).  Row
        generation only pays off when the withheld rows dominate the solve;
        on small models the repeated backend start-up costs more than it
        saves.  ``0`` (the default) disables the floor — callers forcing
        ``lazy_generation=True`` get the loop unconditionally; the solver
        facade's environment-default path applies
        :data:`repro.core.lazy_generation.MIN_LAZY_POOL_ROWS`.
    """

    relevancy_pruning: bool = True
    merge_lineage_variables: bool = True
    relax_rank_expressions: bool = True
    block_lowering: bool = True
    lazy_generation: bool = False
    lazy_generation_min_rows: int = 0

    @classmethod
    def none(cls) -> "BuilderOptions":
        """The paper's unoptimized ``MILP`` configuration."""
        return cls(
            relevancy_pruning=False,
            merge_lineage_variables=False,
            relax_rank_expressions=False,
        )

    @classmethod
    def all(cls) -> "BuilderOptions":
        """The paper's ``MILP+opt`` configuration."""
        return cls()


def apply_relevancy_pruning(
    annotated: AnnotatedDatabase,
    k_star: int,
    keep_positions: Iterable[int] = (),
) -> AnnotatedDatabase:
    """Return a pruned copy of ``annotated`` keeping only potentially relevant tuples.

    A tuple past position ``k*`` within its lineage equivalence class can never
    be ranked within the global top-``k*`` of any refinement, because every
    refinement that selects it also selects all better-ranked tuples of the
    same class (Section 4 of the paper).

    Two safeguards keep the pruning sound in the presence of DISTINCT queries
    and outcome-based distances:

    * positions listed in ``keep_positions`` (e.g. the tuples representing the
      original top-``k*`` items, which outcome-based objectives reference) are
      always kept, and
    * the duplicate sets ``S(t)`` of kept tuples are kept as well (transitively),
      so the DISTINCT de-duplication logic in the MILP stays exact.
    """
    keep: set[int] = set(keep_positions)
    for positions in annotated.lineage_classes.values():
        keep.update(positions[:k_star])

    # Close the kept set under "higher-ranked duplicate of a kept tuple".
    frontier = list(keep)
    while frontier:
        position = frontier.pop()
        for duplicate in annotated.duplicates_before(position):
            if duplicate not in keep:
                keep.add(duplicate)
                frontier.append(duplicate)

    kept_tuples: list[AnnotatedTuple] = [
        annotated_tuple
        for annotated_tuple in annotated.tuples
        if annotated_tuple.position in keep
    ]
    return AnnotatedDatabase(
        annotated.query,
        kept_tuples,
        annotated.categorical_domains,
        annotated.numerical_domains,
    )


def forced_predecessor_counts(
    annotated: AnnotatedDatabase, query, cap: int | None = None,
    scan_limit: int = 8192,
) -> dict[int, int] | None:
    """For each tuple, how many earlier tuples every refinement selecting it selects.

    For a non-DISTINCT query the selection variable of a tuple equals "all its
    lineage atoms hold".  A lineage atom of an earlier tuple ``t'`` is
    *implied* by the corresponding atom of ``t`` when satisfying ``t``'s atom
    forces ``t'``'s: equal values for categorical predicates, ``v' >= v`` for
    lower-bound numerical predicates (``v > C`` implies ``v' > C`` whenever
    ``v' >= v``), and ``v' <= v`` for upper-bound ones.  If every predicate
    implies, then any refinement selecting ``t`` also selects ``t'`` — so the
    rank of ``t``, when selected, is at least ``1 +`` this count.

    Returns a position → count mapping, or ``None`` when the bound does not
    apply (DISTINCT queries, where de-duplication breaks the equivalence, or
    non-numeric values in a numerical predicate column).  With ``cap`` the
    scan stops counting a tuple's dominators once ``cap`` are found (the
    caller only compares counts against ``k <= cap``), and ``scan_limit``
    bounds how many nearest predecessors are examined per tuple, keeping the
    otherwise O(n²) pairwise scan O(n·scan_limit) even when nothing
    dominates.  Both cut-offs under-count, and an undercount only *keeps*
    variables the exact count would have pruned — never the reverse — so the
    pruning stays sound.

    This is the rank-variable analogue of :func:`apply_relevancy_pruning`:
    a tuple whose count is ``>= k`` can never rank within the top-``k`` of
    any refinement, so its ``l_{t,k}`` variable is identically zero and the
    MILP builder omits it (together with its rank variable and big-M rows).
    """
    if query.distinct:
        return None
    tuples = annotated.tuples
    lower_columns: list[np.ndarray] = []
    upper_columns: list[np.ndarray] = []
    categorical_columns: list[np.ndarray] = []
    try:
        for predicate in query.numerical_predicates:
            column = np.array(
                [float(t.values[predicate.attribute]) for t in tuples], dtype=np.float64
            )
            if predicate.operator.is_lower_bound:
                lower_columns.append(column)
            else:
                upper_columns.append(column)
    except (TypeError, ValueError):
        return None
    for predicate in query.categorical_predicates:
        values = [t.values[predicate.attribute] for t in tuples]
        codes = {value: code for code, value in enumerate(dict.fromkeys(values))}
        categorical_columns.append(
            np.array([codes[value] for value in values], dtype=np.int64)
        )

    chunk = 1024
    counts: dict[int, int] = {}
    for index, annotated_tuple in enumerate(tuples):
        count = 0
        stop = index
        floor = max(0, index - scan_limit)
        while stop > floor and (cap is None or count < cap):
            start = max(floor, stop - chunk)
            implied = np.ones(stop - start, dtype=bool)
            for column in lower_columns:
                implied &= column[start:stop] >= column[index]
            for column in upper_columns:
                implied &= column[start:stop] <= column[index]
            for column in categorical_columns:
                implied &= column[start:stop] == column[index]
            count += int(np.count_nonzero(implied))
            stop = start
        counts[annotated_tuple.position] = count
    return counts


def classify_bound_types(
    annotated: AnnotatedDatabase, constraints: ConstraintSet
) -> dict[int, set[BoundType]]:
    """Map each tuple position to the bound types of the groups containing it.

    The rank-expression relaxation applies to tuples whose set is exactly
    ``{LOWER}`` or exactly ``{UPPER}``; tuples in groups of both kinds (or in
    no constrained group) keep the exact rank definition.
    """
    classification: dict[int, set[BoundType]] = {
        annotated_tuple.position: set() for annotated_tuple in annotated.tuples
    }
    # Constraints often share groups (e.g. a lower and an upper bound over the
    # same group); match each distinct group against the tuples once and fan
    # its bound types out, instead of re-matching per constraint.
    bound_types_by_group: dict = {}
    for constraint in constraints:
        bound_types_by_group.setdefault(constraint.group, set()).add(
            constraint.bound_type
        )
    for group, bound_types in bound_types_by_group.items():
        for annotated_tuple in annotated.tuples:
            if group.matches(annotated_tuple.values):
                classification[annotated_tuple.position].update(bound_types)
    return classification
