"""The three Section 4 optimizations.

1. **Relevancy-based pruning** (:func:`apply_relevancy_pruning`): drop tuples
   that can never appear in the top-``k*`` of any refinement — those past
   position ``k*`` within their lineage equivalence class.
2. **Lineage-class variable merging**: tuples sharing a lineage always share
   the value of their selection variable, so one binary per class suffices.
   (Not applicable to DISTINCT queries; implemented inside the MILP builder,
   which consumes :class:`BuilderOptions`.)
3. **Rank-expression relaxation** for tuples whose groups carry only
   lower-bound or only upper-bound constraints (also implemented in the
   builder).

Options are bundled in :class:`BuilderOptions` so the solver facade can switch
between the paper's ``MILP`` (no optimizations) and ``MILP+opt`` (all
applicable optimizations) configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.constraints import BoundType, ConstraintSet
from repro.provenance.lineage import AnnotatedDatabase, AnnotatedTuple


@dataclass(frozen=True)
class BuilderOptions:
    """Which optimizations the MILP builder should apply.

    Attributes
    ----------
    relevancy_pruning:
        Apply the relevancy-based pruning before building the program.
    merge_lineage_variables:
        Use one selection variable per lineage class instead of one per tuple
        (silently skipped for DISTINCT queries, which need per-tuple variables).
    relax_rank_expressions:
        Replace the rank-definition equality with an inequality for tuples
        whose groups have only lower-bound (or only upper-bound) constraints.
    """

    relevancy_pruning: bool = True
    merge_lineage_variables: bool = True
    relax_rank_expressions: bool = True

    @classmethod
    def none(cls) -> "BuilderOptions":
        """The paper's unoptimized ``MILP`` configuration."""
        return cls(
            relevancy_pruning=False,
            merge_lineage_variables=False,
            relax_rank_expressions=False,
        )

    @classmethod
    def all(cls) -> "BuilderOptions":
        """The paper's ``MILP+opt`` configuration."""
        return cls()


def apply_relevancy_pruning(
    annotated: AnnotatedDatabase,
    k_star: int,
    keep_positions: Iterable[int] = (),
) -> AnnotatedDatabase:
    """Return a pruned copy of ``annotated`` keeping only potentially relevant tuples.

    A tuple past position ``k*`` within its lineage equivalence class can never
    be ranked within the global top-``k*`` of any refinement, because every
    refinement that selects it also selects all better-ranked tuples of the
    same class (Section 4 of the paper).

    Two safeguards keep the pruning sound in the presence of DISTINCT queries
    and outcome-based distances:

    * positions listed in ``keep_positions`` (e.g. the tuples representing the
      original top-``k*`` items, which outcome-based objectives reference) are
      always kept, and
    * the duplicate sets ``S(t)`` of kept tuples are kept as well (transitively),
      so the DISTINCT de-duplication logic in the MILP stays exact.
    """
    keep: set[int] = set(keep_positions)
    for positions in annotated.lineage_classes.values():
        keep.update(positions[:k_star])

    # Close the kept set under "higher-ranked duplicate of a kept tuple".
    frontier = list(keep)
    while frontier:
        position = frontier.pop()
        for duplicate in annotated.duplicates_before(position):
            if duplicate not in keep:
                keep.add(duplicate)
                frontier.append(duplicate)

    kept_tuples: list[AnnotatedTuple] = [
        annotated_tuple
        for annotated_tuple in annotated.tuples
        if annotated_tuple.position in keep
    ]
    return AnnotatedDatabase(
        annotated.query,
        kept_tuples,
        annotated.categorical_domains,
        annotated.numerical_domains,
    )


def classify_bound_types(
    annotated: AnnotatedDatabase, constraints: ConstraintSet
) -> dict[int, set[BoundType]]:
    """Map each tuple position to the bound types of the groups containing it.

    The rank-expression relaxation applies to tuples whose set is exactly
    ``{LOWER}`` or exactly ``{UPPER}``; tuples in groups of both kinds (or in
    no constrained group) keep the exact rank definition.
    """
    classification: dict[int, set[BoundType]] = {
        annotated_tuple.position: set() for annotated_tuple in annotated.tuples
    }
    # Constraints often share groups (e.g. a lower and an upper bound over the
    # same group); match each distinct group against the tuples once and fan
    # its bound types out, instead of re-matching per constraint.
    bound_types_by_group: dict = {}
    for constraint in constraints:
        bound_types_by_group.setdefault(constraint.group, set()).add(
            constraint.bound_type
        )
    for group, bound_types in bound_types_by_group.items():
        for annotated_tuple in annotated.tuples:
            if group.matches(annotated_tuple.values):
                classification[annotated_tuple.position].update(bound_types)
    return classification
