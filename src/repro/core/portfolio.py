"""Anytime portfolio racing: race the refinement engines under one deadline.

The engines this repository grew — warm-started MILP (``milp``/``milp+opt``),
the sharded exhaustive baselines (``naive``/``naive+prov``) — have wildly
dataset-dependent runtimes, so no single engine can promise a latency SLA.
:class:`PortfolioSolver` converts "fast as the hardware allows" into an SLA
knob: it races several engines on threads (each engine may fan its own work
out over the existing multiprocessing sweep pool via ``jobs``), streams
incumbents back through one result queue, shares proven bounds across engines,
and returns the best *verified* incumbent when the budget expires.

The harness follows the generator/verifier/selector shape of the
generate-verify-refine loop: engines *generate* incumbents, the portfolio
*verifies* each candidate winner against the database (re-evaluating the
refined query — a buggy or adversarial engine cannot smuggle an infeasible
answer through), and the *selector* picks the best verified incumbent with a
deterministic tie-break (plan order).

Bound-sharing protocol
----------------------
* An engine that **proves** its answer (MILP ``OPTIMAL``/``INFEASIBLE``, an
  exhausted enumeration) publishes a proven lower bound on the optimal
  distance; the race ends — no other engine can improve on a proof.
* Exhaustive engines consult that proven bound *live* (the ``cutoff`` hook is
  re-read every candidate) and stop as soon as their incumbent matches it.
* MILP engines receive the bound at launch as ``known_lower_bound`` (the
  branch-and-bound backend terminates the moment its incumbent matches it;
  SciPy/HiGHS maps it to the ``objective_target`` option and stops just the
  same, reporting the incumbent with a time-limit status).
  Staggered starts therefore inherit everything earlier engines proved.
* Incumbents (unproven feasible answers) are streamed through the result
  queue as :class:`IncumbentUpdate` messages, so an engine cancelled at the
  deadline still contributes its partial best.

Cancellation rules
------------------
* Every engine run gets a wall-clock budget no larger than the remaining
  deadline; the exhaustive engines pass it to their (possibly sharded)
  sweep as ``timeout`` and the MILP engines as the backend ``time_limit``,
  so a stuck engine can never hold the pool past the budget.
* Cooperative cancellation: losers poll :meth:`RaceControl.should_stop`
  between candidates (and between shard submissions on the pool path) and
  exit with status ``cancelled`` as soon as a winner is proven.
* The solver itself never blocks past the deadline: engine threads are
  daemons, and the selection loop returns as soon as the budget expires,
  marking silent engines ``timeout``.

Determinism / injection points
------------------------------
Wall-clock scheduling is inherently racy, so every scheduling decision is
injectable: the *clock* (:class:`WallClock` — ``now()`` plus the blocking
wait on the result queue), the *policy* (:class:`RaceAllPolicy` —
engine start order, offsets and budget splits), and the *runner*
(:class:`ThreadEngineRunner` — how a planned start becomes a running
engine).  The deterministic test harness drives all three with a fake clock
and scripted engines: no real threads, no sleeps, identical schedules every
run.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from repro.core.constraints import ConstraintSet
from repro.core.distances import (
    DistanceMeasure,
    PredicateDistance,
    get_distance,
)
from repro.core.naive import MaskIndexData, NaiveProvenanceSearch, NaiveSearch
from repro.core.refinement import Refinement
from repro.core.solver import RefinementSolver
from repro.exceptions import DeadlineExceeded, RefinementError
from repro.provenance.lineage import AnnotatedDatabase
from repro.relational.database import Database
from repro.relational.executor import QueryExecutor
from repro.relational.query import SPJQuery

#: Methods a portfolio may race (Erica enumerates whole solution lists and
#: has no incumbent semantics, so it is not a portfolio member).
PORTFOLIO_METHODS = ("milp", "milp+opt", "naive", "naive+prov")

#: The default race: the optimized MILP against the provenance-accelerated
#: exhaustive search — the two engines whose relative speed flips between
#: datasets (see benchmarks/results/latest.json).
DEFAULT_ENGINES = ("milp+opt", "naive+prov")

#: Per-engine terminal statuses reported in the provenance record.
STATUS_SOLVED = "solved"
STATUS_INCUMBENT = "incumbent"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"
STATUS_CANCELLED = "cancelled"

#: Feasibility tolerance shared with the serial search loop's epsilon check.
_DEVIATION_TOLERANCE = 1e-9

#: Strict-improvement tolerance for incumbent comparison (mirrors the sweep
#: engine's IMPROVEMENT_EPSILON).
_IMPROVEMENT_EPSILON = 1e-12


# -- specs and plans -------------------------------------------------------------------


@dataclass(frozen=True)
class EngineSpec:
    """One engine entry in a portfolio: a method plus its solve knobs.

    ``label`` names the engine in reports and the bounds timeline; it
    defaults to the method name and must be unique within one portfolio.
    """

    method: str
    label: str = ""
    backend: str = "auto"
    jobs: int | None = None
    max_candidates: int | None = None

    def __post_init__(self) -> None:
        if self.method not in PORTFOLIO_METHODS:
            raise RefinementError(
                f"unknown portfolio engine {self.method!r}; "
                f"available: {list(PORTFOLIO_METHODS)}"
            )
        if not self.label:
            object.__setattr__(self, "label", self.method)


@dataclass(frozen=True)
class EngineStart:
    """One scheduled launch: which engine, when, and with how much budget.

    ``offset`` is seconds after race start; ``budget`` caps the engine's
    wall-clock run (``None`` = whatever remains of the deadline at launch).
    """

    spec: EngineSpec
    offset: float = 0.0
    budget: float | None = None


class SchedulingPolicy(Protocol):
    """Decides engine start order, offsets and budget splits."""

    def plan(
        self, specs: Sequence[EngineSpec], deadline: float
    ) -> tuple[EngineStart, ...]: ...


class RaceAllPolicy:
    """The default policy: start every engine immediately, full budget each."""

    def plan(
        self, specs: Sequence[EngineSpec], deadline: float
    ) -> tuple[EngineStart, ...]:
        return tuple(EngineStart(spec, offset=0.0, budget=None) for spec in specs)


class StaggeredPolicy:
    """Start engines one ``stagger`` apart, in spec order, full budget each.

    Later starts inherit every bound the earlier engines proved by then
    (the MILP launch reads ``known_lower_bound`` from the race control).
    """

    def __init__(self, stagger: float) -> None:
        if stagger < 0:
            raise RefinementError(f"stagger must be non-negative, got {stagger}")
        self.stagger = float(stagger)

    def plan(
        self, specs: Sequence[EngineSpec], deadline: float
    ) -> tuple[EngineStart, ...]:
        return tuple(
            EngineStart(spec, offset=index * self.stagger, budget=None)
            for index, spec in enumerate(specs)
        )


# -- clock -----------------------------------------------------------------------------


class Clock(Protocol):
    """Time source plus the blocking wait on the result queue.

    The solver never calls ``time.*`` or ``queue.get`` directly — everything
    temporal goes through this seam so tests can drive schedules with a fake
    clock and zero real sleeps.
    """

    def now(self) -> float: ...

    def wait(self, reports: "queue_module.Queue", timeout: float) -> object | None: ...


class WallClock:
    """The production clock: monotonic time, blocking queue reads."""

    def now(self) -> float:
        return time.monotonic()

    def wait(self, reports: "queue_module.Queue", timeout: float) -> object | None:
        try:
            return reports.get(timeout=max(0.0, timeout))
        except queue_module.Empty:
            return None


# -- shared race state -----------------------------------------------------------------


class RaceControl:
    """Shared state of one race: bounds, timeline, cancellation.

    Thread-safe — engine adapters publish from worker threads while the
    selection loop reads.  Never pickled: workers on the multiprocessing
    sweep pool receive plain timeouts/budgets, not the control object.
    """

    def __init__(self, clock: Clock, started_at: float) -> None:
        self._clock = clock
        self._started_at = started_at
        self._lock = threading.Lock()
        self._best_upper: float | None = None
        self._proven_lower: float | None = None
        self._timeline: list[tuple[float, str, float]] = []
        self._cancelled: set[str] = set()
        self._cancel_all = False

    def elapsed(self) -> float:
        """Seconds since race start (on the race's clock)."""
        return self._clock.now() - self._started_at

    # -- bounds ---------------------------------------------------------------------

    def publish_incumbent(self, label: str, distance: float) -> None:
        """Record an engine's new best feasible distance on the timeline."""
        with self._lock:
            self._timeline.append((self.elapsed(), label, float(distance)))
            if self._best_upper is None or distance < self._best_upper:
                self._best_upper = float(distance)

    def publish_lower_bound(self, label: str, bound: float) -> None:
        """Record a *proven* lower bound on the optimal distance."""
        with self._lock:
            if self._proven_lower is None or bound > self._proven_lower:
                self._proven_lower = float(bound)

    def best_incumbent_distance(self) -> float | None:
        with self._lock:
            return self._best_upper

    def known_lower_bound(self) -> float | None:
        """The tightest proven lower bound so far (re-read live by engines)."""
        with self._lock:
            return self._proven_lower

    def timeline(self) -> list[tuple[float, str, float]]:
        with self._lock:
            return list(self._timeline)

    # -- cancellation ---------------------------------------------------------------

    def cancel(self, label: str) -> None:
        with self._lock:
            self._cancelled.add(label)

    def cancel_all(self) -> None:
        with self._lock:
            self._cancel_all = True

    def should_stop(self, label: str) -> bool:
        """Cooperative-cancel poll, called between candidates/shards."""
        with self._lock:
            return self._cancel_all or label in self._cancelled

    def stopper(self, label: str) -> Callable[[], bool]:
        """A zero-argument ``should_stop`` bound to one engine label."""
        return lambda: self.should_stop(label)


# -- messages on the result queue ------------------------------------------------------


@dataclass
class IncumbentUpdate:
    """A streamed (non-terminal) incumbent from a still-running engine."""

    label: str
    distance_value: float
    deviation: float
    refinement: Refinement


@dataclass
class EngineReport:
    """The terminal outcome of one engine run."""

    label: str
    method: str
    status: str
    feasible: bool = False
    proven_optimal: bool = False
    proven_infeasible: bool = False
    distance_value: float | None = None
    deviation: float | None = None
    refinement: Refinement | None = None
    error: str | None = None
    elapsed: float = 0.0
    statistics: dict = field(default_factory=dict)

    def provenance(self) -> dict:
        """The JSON-ready per-engine record for the race provenance."""
        record: dict = {"method": self.method, "status": self.status}
        if self.distance_value is not None:
            record["distance_value"] = self.distance_value
        if self.error is not None:
            record["error"] = self.error
        record["elapsed_seconds"] = self.elapsed
        return record


# -- runners ---------------------------------------------------------------------------


class EngineRunner(Protocol):
    """Turns a planned start into a running engine that reports to the queue."""

    def launch(
        self,
        start: EngineStart,
        control: RaceControl,
        reports: "queue_module.Queue",
        run: Callable[[EngineStart, RaceControl, "queue_module.Queue"], None],
    ) -> None: ...


class ThreadEngineRunner:
    """The production runner: one daemon thread per engine.

    Daemon threads guarantee an overrunning engine can never block process
    exit (or the solver's return at the deadline); its eventual report is
    simply discarded.  :meth:`join` gives cancelled engines a bounded window
    to acknowledge — a native solve (HiGHS) torn down at interpreter exit can
    abort the process, so the solver waits briefly for losers to park.
    """

    def __init__(self) -> None:
        self._threads: list[threading.Thread] = []

    def launch(
        self,
        start: EngineStart,
        control: RaceControl,
        reports: "queue_module.Queue",
        run: Callable[[EngineStart, RaceControl, "queue_module.Queue"], None],
    ) -> None:
        thread = threading.Thread(
            target=run,
            args=(start, control, reports),
            name=f"portfolio-{start.spec.label}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def join(self, timeout: float) -> None:
        """Wait up to ``timeout`` seconds total for the engine threads."""
        deadline = time.monotonic() + max(0.0, timeout)
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))


# -- results ---------------------------------------------------------------------------


@dataclass
class PortfolioResult:
    """The outcome of one race, with a full provenance record.

    ``status`` is ``"ok"`` (a verified feasible incumbent), ``"infeasible"``
    (an engine *proved* no refinement within epsilon exists), ``"deadline"``
    (the budget expired with no feasible incumbent) or ``"error"`` (every
    engine failed before the deadline).
    """

    feasible: bool
    status: str
    distance_code: str
    deadline: float
    method: str = "portfolio"
    winner: str | None = None
    proven_optimal: bool = False
    refinement: Refinement | None = None
    refined_query: SPJQuery | None = None
    distance_value: float | None = None
    deviation: float | None = None
    constraint_counts: dict[str, int] = field(default_factory=dict)
    reports: dict[str, EngineReport] = field(default_factory=dict)
    bounds_timeline: list[tuple[float, str, float]] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def engine_statuses(self) -> dict[str, str]:
        return {label: report.status for label, report in self.reports.items()}

    def race_record(self) -> dict:
        """The JSON-ready provenance record (winner, statuses, timeline)."""
        return {
            "winner": self.winner,
            "status": self.status,
            "proven_optimal": self.proven_optimal,
            "deadline_s": self.deadline,
            "elapsed_seconds": self.elapsed,
            "engines": {
                label: report.provenance() for label, report in self.reports.items()
            },
            "bounds_timeline": [
                {"elapsed_seconds": at, "engine": label, "distance": distance}
                for at, label, distance in self.bounds_timeline
            ],
        }


@dataclass(frozen=True)
class _Candidate:
    """An incumbent awaiting verification, ordered deterministically."""

    distance: float
    plan_index: int
    label: str
    refinement: Refinement


# -- the solver ------------------------------------------------------------------------


class PortfolioSolver:
    """Race a portfolio of refinement engines under a wall-clock deadline.

    Parameters
    ----------
    database, query, constraints, epsilon, distance:
        The problem instance (as for :class:`RefinementSolver`).
    engines:
        Engine specs to race — method-name strings or :class:`EngineSpec`
        objects (defaults to :data:`DEFAULT_ENGINES`).  Labels must be
        unique.
    deadline:
        The wall-clock budget in seconds (required, positive).  The solver
        returns the best verified incumbent available when it expires.
    clock, policy, runner:
        Injection points for scheduling (see the module docstring).  The
        defaults are :class:`WallClock`, :class:`RaceAllPolicy` and
        :class:`ThreadEngineRunner`.
    executor, annotated, mask_data:
        Warm per-dataset state shared by all engines of the race (and, via a
        :class:`~repro.service.session.DatasetSession`, across requests).
        Built here when not supplied.
    """

    def __init__(
        self,
        database: Database,
        query: SPJQuery,
        constraints: ConstraintSet,
        epsilon: float = 0.5,
        distance: DistanceMeasure | str = "pred",
        engines: Sequence[EngineSpec | str] | None = None,
        deadline: float | None = None,
        clock: Clock | None = None,
        policy: SchedulingPolicy | None = None,
        runner: EngineRunner | None = None,
        executor: QueryExecutor | None = None,
        annotated: AnnotatedDatabase | None = None,
        mask_data: MaskIndexData | None = None,
        milp_slice_initial: float = 0.5,
        milp_slice_max: float = 2.0,
    ) -> None:
        if deadline is None or deadline <= 0:
            raise RefinementError(
                f"a portfolio race needs a positive deadline, got {deadline!r}"
            )
        self.database = database
        self.query = query
        self.constraints = constraints
        self.epsilon = float(epsilon)
        self.distance = get_distance(distance)
        self.deadline = float(deadline)
        self.engines = self._resolve_specs(engines)
        self._clock: Clock = clock or WallClock()
        self._policy: SchedulingPolicy = policy or RaceAllPolicy()
        self._runner: EngineRunner = runner or ThreadEngineRunner()
        self._executor = executor or QueryExecutor(database)
        self._annotated = annotated
        self._mask_data = mask_data
        # MILP budgets are split into geometrically growing time slices with
        # a cooperative-cancel check (and a fresh known_lower_bound) between
        # slices: the cap bounds how long a cancelled MILP engine can keep a
        # native solve running after the race has been decided.
        self._milp_slice_initial = float(milp_slice_initial)
        self._milp_slice_max = float(milp_slice_max)

    @staticmethod
    def _resolve_specs(
        engines: Sequence[EngineSpec | str] | None,
    ) -> tuple[EngineSpec, ...]:
        specs = tuple(
            spec if isinstance(spec, EngineSpec) else EngineSpec(method=str(spec))
            for spec in (engines if engines is not None else DEFAULT_ENGINES)
        )
        if not specs:
            raise RefinementError("a portfolio race needs at least one engine")
        labels = [spec.label for spec in specs]
        if len(set(labels)) != len(labels):
            raise RefinementError(
                f"portfolio engine labels must be unique, got {labels}"
            )
        return specs

    # -- the race -------------------------------------------------------------------

    def solve(self, raise_on_deadline: bool = False) -> PortfolioResult:
        """Run the race and return the best verified incumbent.

        With ``raise_on_deadline=True`` a race that expires without any
        feasible incumbent raises :class:`DeadlineExceeded` instead of
        returning a ``status="deadline"`` result.
        """
        started = self._clock.now()
        deadline_at = started + self.deadline
        control = RaceControl(self._clock, started)
        plan = self._policy.plan(self.engines, self.deadline)
        self._validate_plan(plan)
        order = {start.spec.label: index for index, start in enumerate(plan)}
        pending = sorted(plan, key=lambda start: (start.offset, order[start.spec.label]))
        reports: dict[str, EngineReport] = {}
        candidates: dict[str, _Candidate] = {}
        queue: queue_module.Queue = queue_module.Queue()
        launched: set[str] = set()
        expired = False
        finished = False

        pending_index = 0
        while len(reports) < len(plan):
            now = self._clock.now()
            while pending_index < len(pending) and (
                now - started >= pending[pending_index].offset - 1e-12
            ):
                start = pending[pending_index]
                pending_index += 1
                self._launch(start, deadline_at, control, queue)
                launched.add(start.spec.label)
            if finished:
                break
            remaining = deadline_at - now
            if remaining <= 0:
                expired = True
                break
            timeout = remaining
            if pending_index < len(pending):
                until_next = started + pending[pending_index].offset - now
                timeout = min(timeout, max(until_next, 0.0))
            message = self._clock.wait(queue, timeout)
            if message is None:
                continue
            self._record(message, order, reports, candidates)
            if isinstance(message, EngineReport) and (
                message.proven_optimal or message.proven_infeasible
            ):
                # A proof ends the race: no engine can improve on it.
                control.cancel_all()
                finished = True

        if expired:
            control.cancel_all()
        # Give cancelled/just-finishing engines a bounded window to park (a
        # native solve torn down at interpreter exit can abort the process),
        # then collect any terminal reports that landed in the meantime.
        self._join_runner(deadline_at)
        self._drain(queue, order, reports, candidates)

        for start in plan:
            label = start.spec.label
            if label in reports:
                continue
            status = STATUS_TIMEOUT if label in launched else STATUS_CANCELLED
            if finished:
                status = STATUS_CANCELLED
            reports[label] = EngineReport(
                label=label, method=start.spec.method, status=status
            )

        result = self._select(control, reports, candidates, started)
        if result.status == "deadline" and raise_on_deadline:
            raise DeadlineExceeded(
                f"portfolio race over {self.query.name!r} found no feasible "
                f"incumbent within the {self.deadline:g}s deadline"
            )
        return result

    def _join_runner(self, deadline_at: float) -> None:
        """Bounded join of the engine threads (runners without one are skipped).

        The grace never stretches a deadline-expired race past its margin
        (engine budgets end at the deadline, so threads are already parking)
        and is capped at the MILP slice cap for early proof-ended races.
        Hung engines are simply abandoned — the threads are daemons.
        """
        join = getattr(self._runner, "join", None)
        if join is None:
            return
        remaining = deadline_at - self._clock.now()
        join(min(self._milp_slice_max + 0.5, max(0.2, remaining + 0.4)))

    def _validate_plan(self, plan: Sequence[EngineStart]) -> None:
        planned = [start.spec.label for start in plan]
        expected = [spec.label for spec in self.engines]
        if sorted(planned) != sorted(expected):
            raise RefinementError(
                f"scheduling policy planned engines {planned}, expected "
                f"exactly {expected}"
            )

    def _launch(
        self,
        start: EngineStart,
        deadline_at: float,
        control: RaceControl,
        queue: "queue_module.Queue",
    ) -> None:
        self._runner.launch(start, control, queue, self._run_engine_for(deadline_at))

    def _run_engine_for(
        self, deadline_at: float
    ) -> Callable[[EngineStart, RaceControl, "queue_module.Queue"], None]:
        def run(
            start: EngineStart,
            control: RaceControl,
            reports: "queue_module.Queue",
        ) -> None:
            began = self._clock.now()
            budget = max(deadline_at - began, 0.0)
            if start.budget is not None:
                budget = min(budget, start.budget)
            try:
                report = self._run_engine(start.spec, budget, control, reports)
            except Exception as error:  # noqa: BLE001 - engine isolation is the point
                report = EngineReport(
                    label=start.spec.label,
                    method=start.spec.method,
                    status=STATUS_ERROR,
                    error=f"{type(error).__name__}: {error}",
                )
            report.elapsed = self._clock.now() - began
            reports.put(report)

        return run

    # -- engine adapters ------------------------------------------------------------

    def _run_engine(
        self,
        spec: EngineSpec,
        budget: float,
        control: RaceControl,
        reports: "queue_module.Queue",
    ) -> EngineReport:
        if spec.method in ("milp", "milp+opt"):
            return self._run_milp(spec, budget, control, reports)
        return self._run_exhaustive(spec, budget, control, reports)

    def _run_milp(
        self,
        spec: EngineSpec,
        budget: float,
        control: RaceControl,
        reports: "queue_module.Queue",
    ) -> EngineReport:
        """Run a MILP engine as a sequence of budgeted time slices.

        The MILP backends cannot be interrupted mid-solve, so cancellation
        latency is bought with ``time_limit`` splits: slices grow
        geometrically (bounded restart overhead) up to the slice cap, and
        between slices the engine polls ``should_stop``, re-reads the
        latest proven ``known_lower_bound`` (branch_and_bound terminates the
        moment its incumbent matches it; the scipy backend stops via the
        HiGHS ``objective_target`` option), and streams any improved
        incumbent to the race.
        """
        label = spec.label
        deadline_at = self._clock.now() + budget
        solver = RefinementSolver(
            self.database,
            self.query,
            self.constraints,
            epsilon=self.epsilon,
            distance=self.distance,
            method=spec.method,
            backend=spec.backend,
            executor=self._executor,
            annotated=self._annotated,
        )
        prepared = solver.prepare()
        report = EngineReport(label=label, method=spec.method, status=STATUS_TIMEOUT)
        best: tuple[float, float, Refinement] | None = None
        slice_s = self._milp_slice_initial
        while True:
            if control.should_stop(label):
                report.status = STATUS_CANCELLED
                break
            remaining = deadline_at - self._clock.now()
            if remaining <= 1e-9:
                break
            solver.time_limit = min(slice_s, remaining)
            options: dict = {}
            known = control.known_lower_bound()
            if known is not None:
                options["known_lower_bound"] = known
            solver.solver_options = options
            result = solver.solve(prepared=prepared)
            report.statistics = dict(result.model_statistics)
            if result.feasible and (
                best is None
                or result.distance_value < best[0] - _IMPROVEMENT_EPSILON
            ):
                assert result.refinement is not None
                assert result.deviation is not None
                best = (result.distance_value, result.deviation, result.refinement)
                control.publish_incumbent(label, result.distance_value)
                reports.put(
                    IncumbentUpdate(
                        label=label,
                        distance_value=result.distance_value,
                        deviation=result.deviation,
                        refinement=result.refinement,
                    )
                )
            if result.solution_status == "optimal":
                report.status = STATUS_SOLVED
                report.proven_optimal = True
                assert result.distance_value is not None
                control.publish_lower_bound(label, result.distance_value)
                break
            if result.solution_status == "infeasible":
                report.status = STATUS_SOLVED
                report.proven_infeasible = True
                break
            slice_s = min(slice_s * 2.0, self._milp_slice_max)
        if best is not None:
            report.feasible = True
            report.distance_value, report.deviation, report.refinement = best
            if report.status == STATUS_TIMEOUT:
                report.status = STATUS_INCUMBENT
        return report

    def _run_exhaustive(
        self,
        spec: EngineSpec,
        budget: float,
        control: RaceControl,
        reports: "queue_module.Queue",
    ) -> EngineReport:
        label = spec.label

        def on_incumbent(
            distance: float, refinement: Refinement, deviation: float
        ) -> None:
            control.publish_incumbent(label, distance)
            reports.put(
                IncumbentUpdate(
                    label=label,
                    distance_value=distance,
                    deviation=deviation,
                    refinement=refinement,
                )
            )

        kwargs: dict = dict(
            epsilon=self.epsilon,
            distance=self.distance,
            timeout=budget,
            max_candidates=spec.max_candidates,
            jobs=spec.jobs,
            executor=self._executor,
            annotated=self._annotated,
            should_stop=control.stopper(label),
            on_incumbent=on_incumbent,
            cutoff=control.known_lower_bound,
        )
        if spec.method == "naive+prov":
            search: NaiveSearch | NaiveProvenanceSearch = NaiveProvenanceSearch(
                self.database,
                self.query,
                self.constraints,
                mask_data=self._mask_data,
                **kwargs,
            )
        else:
            search = NaiveSearch(
                self.database, self.query, self.constraints, **kwargs
            )
        result = search.search()
        report = EngineReport(
            label=label,
            method=spec.method,
            status=STATUS_TIMEOUT,
            statistics={
                "candidates_examined": result.candidates_examined,
                "space_size": result.space_size,
            },
        )
        if result.feasible:
            report.feasible = True
            report.distance_value = result.distance_value
            report.deviation = result.deviation
            report.refinement = result.refinement
        proved = result.exhausted or result.cutoff_reached
        if proved:
            report.status = STATUS_SOLVED
            if result.feasible:
                report.proven_optimal = True
                control.publish_lower_bound(label, result.distance_value)
            elif result.exhausted:
                report.proven_infeasible = True
        elif result.cancelled:
            report.status = STATUS_CANCELLED
        elif result.feasible:
            report.status = STATUS_INCUMBENT
        return report

    # -- bookkeeping ----------------------------------------------------------------

    def _record(
        self,
        message: object,
        order: dict[str, int],
        reports: dict[str, EngineReport],
        candidates: dict[str, _Candidate],
    ) -> None:
        if isinstance(message, IncumbentUpdate):
            self._offer(
                candidates,
                order,
                message.label,
                message.distance_value,
                message.refinement,
            )
        elif isinstance(message, EngineReport):
            reports[message.label] = message
            if message.feasible and message.refinement is not None:
                assert message.distance_value is not None
                self._offer(
                    candidates,
                    order,
                    message.label,
                    message.distance_value,
                    message.refinement,
                )

    @staticmethod
    def _offer(
        candidates: dict[str, _Candidate],
        order: dict[str, int],
        label: str,
        distance: float,
        refinement: Refinement,
    ) -> None:
        current = candidates.get(label)
        if current is None or distance < current.distance - _IMPROVEMENT_EPSILON:
            candidates[label] = _Candidate(
                distance=float(distance),
                plan_index=order.get(label, len(order)),
                label=label,
                refinement=refinement,
            )

    def _drain(
        self,
        queue: "queue_module.Queue",
        order: dict[str, int],
        reports: dict[str, EngineReport],
        candidates: dict[str, _Candidate],
    ) -> None:
        """Collect already-delivered messages without blocking (post-deadline)."""
        while True:
            try:
                message = queue.get_nowait()
            except queue_module.Empty:
                return
            self._record(message, order, reports, candidates)

    # -- selection + verification ---------------------------------------------------

    def _select(
        self,
        control: RaceControl,
        reports: dict[str, EngineReport],
        candidates: dict[str, _Candidate],
        started: float,
    ) -> PortfolioResult:
        result = PortfolioResult(
            feasible=False,
            status="deadline",
            distance_code=self.distance.code,
            deadline=self.deadline,
            reports=dict(reports),
            bounds_timeline=control.timeline(),
            elapsed=self._clock.now() - started,
        )
        ranked = sorted(
            candidates.values(), key=lambda c: (c.distance, c.plan_index)
        )
        for candidate in ranked:
            verified = self._verify(candidate)
            if verified is None:
                # An engine handed back an incumbent the database refutes:
                # isolate it and fall through to the next-best candidate.
                report = result.reports.get(candidate.label)
                if report is not None:
                    report.status = STATUS_ERROR
                    report.feasible = False
                    report.error = (
                        "engine reported an incumbent that violates the "
                        "constraint deviation bound"
                    )
                continue
            refined_query, distance_value, deviation, counts = verified
            winner_report = result.reports.get(candidate.label)
            result.feasible = True
            result.status = "ok"
            result.winner = candidate.label
            result.refinement = candidate.refinement
            result.refined_query = refined_query
            result.distance_value = distance_value
            result.deviation = deviation
            result.constraint_counts = counts
            lower = control.known_lower_bound()
            result.proven_optimal = bool(
                (winner_report is not None and winner_report.proven_optimal)
                or (lower is not None and distance_value <= lower + _DEVIATION_TOLERANCE)
            )
            return result
        if any(report.proven_infeasible for report in result.reports.values()):
            result.status = "infeasible"
        elif all(
            report.status == STATUS_ERROR for report in result.reports.values()
        ):
            result.status = "error"
        return result

    def _verify(
        self, candidate: _Candidate
    ) -> tuple[SPJQuery, float, float, dict[str, int]] | None:
        """Re-evaluate a candidate against the database (the verifier stage)."""
        refined_query = candidate.refinement.apply(self.query)
        refined_result = self._executor.evaluate(refined_query)
        if len(refined_result) < self.constraints.k_star:
            return None
        deviation = self.constraints.deviation(refined_result)
        if deviation > self.epsilon + _DEVIATION_TOLERANCE:
            return None
        if isinstance(self.distance, PredicateDistance):
            distance_value = self.distance.evaluate_refinement(
                self.query, candidate.refinement
            )
        else:
            original_result = self._executor.evaluate(self.query)
            distance_value = self.distance.evaluate(
                self.query,
                refined_query,
                original_result,
                refined_result,
                self.constraints.k_star,
            )
        counts = self.constraints.counts(refined_result)
        return refined_query, float(distance_value), float(deviation), counts


__all__ = [
    "DEFAULT_ENGINES",
    "PORTFOLIO_METHODS",
    "Clock",
    "EngineReport",
    "EngineRunner",
    "EngineSpec",
    "EngineStart",
    "IncumbentUpdate",
    "PortfolioResult",
    "PortfolioSolver",
    "RaceAllPolicy",
    "RaceControl",
    "StaggeredPolicy",
    "ThreadEngineRunner",
    "WallClock",
]
