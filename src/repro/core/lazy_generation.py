"""Lazy constraint generation (row generation) for the refinement MILPs.

The Figure 1 program is dominated by per-tuple rank machinery: one
rank-definition row plus two top-k membership rows per (tuple, k) pair, and —
for Kendall's tau — six distance-linking rows per original top-k item.  At the
optimum only a small fraction of these rows is active (a distance-0 refinement
keeps every original top-k member, so no rank ever needs to be pinned down),
yet the eager lowering makes HiGHS carry all of them through every node.

This module implements the classic cutting-plane alternative:

* the builder withholds the separable families as :class:`LazyPool` objects
  (COO triplets plus per-row group keys) and seeds the model with everything
  else — indicator, selection, minimum-output-size, prefix-chain and
  deviation rows;
* :func:`run_cut_loop` solves the seeded relaxation, asks every pool's
  *separation oracle* (:meth:`LazyPool.separate`) which pending rows the
  candidate violates, appends those rows block-wise through
  :meth:`repro.milp.Model.add_constraint_block` (extending the cached CSR —
  never re-lowering), and re-solves warm-started until separation finds
  nothing or the budget expires.

Correctness: every pool row belongs to the full Figure 1 program, so each
relaxation's feasible set contains the full program's and each relaxation
optimum is a lower bound on the full optimum.  When separation finds no
violated row the incumbent is feasible for the *full* program while attaining
a relaxation optimum — i.e. it is optimal for the full program.  An infeasible
relaxation proves the full program infeasible for the same containment
reason.  Pools are finite, every round permanently adds at least one row, so
the loop terminates.

Group closure: a violated row is never added alone.  Pools key their rows by
tuple position, and the loop adds *all* pending rows sharing a violated key
across *all* pools — a top-k membership row without its rank-definition row
accomplishes nothing (the rank variable would stay free), so rows travel as
per-position groups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np
from scipy import sparse

from repro.core.deadline import Deadline
from repro.exceptions import ModelError
from repro.milp.constraint import ConstraintSense, LinearConstraint
from repro.milp.model import SENSE_EQ, SENSE_GE, SENSE_LE, Model
from repro.milp.solution import Solution, SolveStatus

_SENSE_CODE = {
    ConstraintSense.LESS_EQUAL: SENSE_LE,
    ConstraintSense.GREATER_EQUAL: SENSE_GE,
    ConstraintSense.EQUAL: SENSE_EQ,
}

#: Absolute feasibility slack below which a pending row is not considered
#: violated.  Looser than the backends' own ~1e-7 primal tolerance because the
#: rank rows carry O(n) big-M coefficients that amplify rounding noise;
#: genuine violations are at least _RANK_DELTA = 0.5.
DEFAULT_TOLERANCE = 1e-4

#: Smallest time limit handed to a backend: an expired budget still buys one
#: token solve so a caller with ``time_limit=0`` gets a typed time-limited
#: answer rather than an exception.
_MIN_SOLVE_LIMIT = 0.01

#: Slack when comparing an incumbent's objective against a proven lower bound.
_BOUND_TOLERANCE = 1e-6

#: After this many incremental rounds the loop stops trickling groups in and
#: adds every pending row at once.  Degenerate instances otherwise crawl —
#: each round's relaxation sneaks a single new tuple into the top-k and
#: separation flags one group — so escalation caps the loop at
#: ``DEFAULT_ESCALATION_ROUNDS`` cheap relaxation solves plus one solve of the
#: full program (the eager model, warm-started), bounding the worst case near
#: the eager solve time while keeping the large wins when convergence is fast.
DEFAULT_ESCALATION_ROUNDS = 4

#: Pool-size floor applied by the solver facade's environment-default path:
#: models whose pools hold fewer pending rows than this solve eagerly.  Row
#: generation trades extra backend start-ups for a smaller matrix, which only
#: pays off once the withheld rows dominate the solve — on the reduced
#: law_students Kendall workload (~3,000 pool rows) the loop wins ~30x, while
#: sub-500-row models solve faster eagerly than any two rounds of the loop.
MIN_LAZY_POOL_ROWS = 512


class LazyPool:
    """One lazily-separable family of constraint rows.

    Rows are stored as COO triplets over *local* row ids with per-row senses,
    right-hand sides and an integer ``group_keys`` label (the tuple position a
    row belongs to).  ``pending`` tracks which rows are still withheld from
    the model; :meth:`take` hands violated groups over for
    :meth:`~repro.milp.Model.add_constraint_block` and marks them added.
    """

    __slots__ = (
        "name",
        "rows",
        "cols",
        "coeffs",
        "senses",
        "rhs",
        "group_keys",
        "pending",
        "_matrix",
    )

    def __init__(self, name, rows, cols, coeffs, senses, rhs, group_keys) -> None:
        self.name = str(name)
        self.rows = np.asarray(rows, dtype=np.int64)
        self.cols = np.asarray(cols, dtype=np.int64)
        self.coeffs = np.asarray(coeffs, dtype=np.float64)
        self.senses = np.asarray(senses, dtype=np.int8)
        self.rhs = np.asarray(rhs, dtype=np.float64)
        self.group_keys = np.asarray(group_keys, dtype=np.int64)
        if not (self.senses.shape == self.rhs.shape == self.group_keys.shape):
            raise ModelError(
                f"lazy pool {self.name!r}: senses/rhs/group_keys must be "
                f"parallel arrays, got {self.senses.shape}, {self.rhs.shape}, "
                f"{self.group_keys.shape}"
            )
        if not (self.rows.shape == self.cols.shape == self.coeffs.shape):
            raise ModelError(
                f"lazy pool {self.name!r}: rows/cols/coeffs must be parallel "
                f"arrays, got {self.rows.shape}, {self.cols.shape}, "
                f"{self.coeffs.shape}"
            )
        self.pending = np.ones(self.rhs.shape[0], dtype=bool)
        self._matrix: sparse.csr_matrix | None = None

    def __len__(self) -> int:
        return int(self.rhs.shape[0])

    @property
    def num_pending(self) -> int:
        """How many rows are still withheld from the model."""
        return int(self.pending.sum())

    def _ensure_matrix(self, width: int) -> sparse.csr_matrix:
        # Built on first separation: by then every model variable (including
        # the distance auxiliaries created after the pools) exists, so the
        # candidate vector fixes the column count.
        if self._matrix is None or self._matrix.shape[1] != width:
            self._matrix = sparse.csr_matrix(
                (self.coeffs, (self.rows, self.cols)), shape=(len(self), width)
            )
        return self._matrix

    def separate(self, x: np.ndarray, tolerance: float = DEFAULT_TOLERANCE) -> np.ndarray:
        """The separation oracle: group keys of pending rows that ``x`` violates.

        Vectorized over the whole pool: one sparse mat-vec gives every row's
        residual, compared against its sense and right-hand side at once.
        """
        if not self.pending.any():
            return np.empty(0, dtype=np.int64)
        slack = self._ensure_matrix(x.shape[0]) @ x - self.rhs
        violated = np.where(
            self.senses == SENSE_LE,
            slack > tolerance,
            np.where(
                self.senses == SENSE_GE,
                slack < -tolerance,
                np.abs(slack) > tolerance,
            ),
        )
        violated &= self.pending
        return np.unique(self.group_keys[violated])

    def take(self, keys: np.ndarray):
        """Pending rows of the given groups as a COO block, marked as added.

        Returns ``(rows, cols, coeffs, senses, rhs)`` ready for
        :meth:`repro.milp.Model.add_constraint_block`, or ``None`` when no
        pending row carries one of ``keys``.
        """
        keys = np.asarray(keys, dtype=np.int64)
        selected = self.pending & np.isin(self.group_keys, keys)
        if not selected.any():
            return None
        row_ids = np.flatnonzero(selected)
        remap = np.full(len(self), -1, dtype=np.int64)
        remap[row_ids] = np.arange(row_ids.size, dtype=np.int64)
        entries = selected[self.rows]
        self.pending[row_ids] = False
        return (
            remap[self.rows[entries]],
            self.cols[entries],
            self.coeffs[entries],
            self.senses[row_ids],
            self.rhs[row_ids],
        )


class RankCompletion:
    """Rewrites a candidate's rank variables to the ranks its selection implies.

    The relaxation leaves the rank variables unconstrained (their defining
    rows live in the ``rank`` pool), so a relaxation optimum carries arbitrary
    values for them — separating on the raw candidate would flag every rank
    row and flood the model with the whole pool on round one.  The selection
    and prefix-chain variables *are* pinned by the eager seed, and the rank
    definition ``rank = rhs - expr(selection, prefix)`` determines each rank
    uniquely from them; substituting that implied rank yields an equivalent
    candidate (rank variables appear in no objective and no eager row) that
    satisfies every rank-definition row exactly.  Separation then flags only
    groups whose membership claims genuinely contradict the implied ranks —
    and the rank rows themselves enter the model via group closure.

    Because the completed candidate is a *witness*: when no pool row rejects
    it, it is feasible for the full program at the relaxation's objective
    value, which is what makes accepting the incumbent sound.
    """

    def __init__(self, rank_cols, rows, cols, coeffs, rhs) -> None:
        self._rank_cols = np.asarray(rank_cols, dtype=np.int64)
        self._rows = np.asarray(rows, dtype=np.int64)
        self._cols = np.asarray(cols, dtype=np.int64)
        self._coeffs = np.asarray(coeffs, dtype=np.float64)
        self._rhs = np.asarray(rhs, dtype=np.float64)
        self._matrix: sparse.csr_matrix | None = None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self._matrix is None or self._matrix.shape[1] != x.shape[0]:
            self._matrix = sparse.csr_matrix(
                (self._coeffs, (self._rows, self._cols)),
                shape=(self._rhs.shape[0], x.shape[0]),
            )
        completed = np.array(x, dtype=np.float64, copy=True)
        completed[self._rank_cols] = self._rhs - self._matrix @ x
        return completed


class LinkingConstraintSink:
    """Collects distance-linking :class:`LinearConstraint`s into a lazy pool.

    The distance measures build their auxiliary rows as expression-level
    constraints; under lazy generation the build context routes them here
    instead of into the model, and the sink lowers each one to COO triplets
    keyed by the tuple position it links.
    """

    def __init__(self, model: Model) -> None:
        self._model = model
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._coeffs: list[float] = []
        self._senses: list[int] = []
        self._rhs: list[float] = []
        self._keys: list[int] = []

    def __len__(self) -> int:
        return len(self._rhs)

    def add(self, constraint: LinearConstraint, key: int) -> None:
        """Lower one constraint into the sink under group key ``key``."""
        row = len(self._rhs)
        for variable, coeff in constraint.iter_coefficients():
            self._rows.append(row)
            self._cols.append(self._model.index_of(variable))
            self._coeffs.append(coeff)
        self._senses.append(_SENSE_CODE[constraint.sense])
        self._rhs.append(constraint.rhs)
        self._keys.append(int(key))

    def into_pool(self, name: str) -> LazyPool:
        """Freeze the collected rows into a :class:`LazyPool`."""
        return LazyPool(
            name,
            self._rows,
            self._cols,
            self._coeffs,
            self._senses,
            self._rhs,
            self._keys,
        )


@dataclass
class CutLoopOutcome:
    """What one :func:`run_cut_loop` invocation did.

    ``solution`` is the terminal backend solution — proven optimal when
    ``proven_optimal``; otherwise a typed time-limited incumbent (or an
    infeasible/error pass-through).  ``solve_seconds`` is the wall-clock time
    of the whole loop including separation.
    """

    solution: Solution
    rounds: int
    rows_generated: int
    proven_optimal: bool
    solve_seconds: float = 0.0


def run_cut_loop(
    model: Model,
    pools: Sequence[LazyPool],
    solve: Callable[[float | None, dict], Solution],
    *,
    time_limit: float | None = None,
    deadline: Deadline | None = None,
    external_bound: float | None = None,
    completion: Callable[[np.ndarray], np.ndarray] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    escalation_rounds: int = DEFAULT_ESCALATION_ROUNDS,
) -> CutLoopOutcome:
    """Drive the cutting-plane loop until proven optimal or out of budget.

    ``solve(limit, guidance)`` runs one backend solve under ``limit`` seconds;
    ``guidance`` carries ``known_lower_bound`` (a proven lower bound on the
    full optimum — HiGHS maps it to ``objective_target``, branch-and-bound
    stops when its incumbent matches it) and, from the second round on,
    ``warm_start_values`` (the previous incumbent; branch-and-bound
    re-verifies it against the grown model and discards it if the new rows
    exclude it).

    ``completion`` (see :class:`RankCompletion`) maps a candidate to an
    objective-equivalent witness before separation — substituting determined
    values for variables the relaxation leaves free, so separation measures
    genuine inconsistency instead of the arbitrary values a backend parks
    unconstrained variables at.

    ``external_bound`` seeds the bound from outside knowledge (e.g. a
    portfolio race's proven bound); any bound that provably underestimates the
    full optimum is sound here, because acceptance is always backed by
    full-model feasibility.  The loop's own bound only advances on rounds that
    are proven (relaxation-optimal, or an incumbent matching the current
    bound) — a plain time-limited incumbent never becomes a bound.

    After ``escalation_rounds`` incremental rounds the loop adds *every*
    pending row instead of only the violated groups (see
    :data:`DEFAULT_ESCALATION_ROUNDS`), so slowly-converging instances pay at
    most that many relaxation solves before one warm-started solve of the
    full program settles the matter.
    """
    started = time.perf_counter()

    def remaining() -> float | None:
        limits = []
        if time_limit is not None:
            limits.append(time_limit - (time.perf_counter() - started))
        if deadline is not None:
            limits.append(deadline.remaining())
        return min(limits) if limits else None

    def finish(solution: Solution, rounds: int, generated: int, proven: bool) -> CutLoopOutcome:
        return CutLoopOutcome(
            solution=solution,
            rounds=rounds,
            rows_generated=generated,
            proven_optimal=proven,
            solve_seconds=time.perf_counter() - started,
        )

    variables = model.variables
    bound = external_bound
    incumbent: Solution | None = None
    rounds = 0
    generated = 0
    while True:
        budget = remaining()
        if budget is not None and budget <= 0.0 and incumbent is not None:
            # The ambient deadline or the caller's budget expired between
            # rounds: hand back the best relaxation incumbent, typed as a
            # time-limited stop so anytime callers (portfolio slices, the
            # service's deadline scope) treat it like any interrupted solve.
            return finish(
                replace(incumbent, status=SolveStatus.TIME_LIMIT),
                rounds,
                generated,
                False,
            )
        guidance: dict = {}
        if bound is not None:
            guidance["known_lower_bound"] = bound
        if incumbent is not None:
            guidance["warm_start_values"] = incumbent.values
        limit = None if budget is None else max(budget, _MIN_SOLVE_LIMIT)
        solution = solve(limit, guidance)
        if not solution.is_feasible:
            # An infeasible relaxation proves the full program infeasible
            # (its feasible set contains the full one); errors and empty
            # time-outs pass through untouched.
            return finish(solution, rounds, generated, False)
        incumbent = solution
        proven = solution.is_optimal or (
            bound is not None
            and solution.objective_value is not None
            and solution.objective_value <= bound + _BOUND_TOLERANCE
        )
        x = np.fromiter(
            (solution.values.get(variable, 0.0) for variable in variables),
            dtype=np.float64,
            count=len(variables),
        )
        if completion is not None:
            x = completion(x)
        violated = [pool.separate(x, tolerance) for pool in pools]
        keys = (
            np.unique(np.concatenate(violated))
            if violated
            else np.empty(0, dtype=np.int64)
        )
        if keys.size == 0:
            # Full-program feasible.  If this round was proven it attains a
            # lower bound on the full optimum, so it *is* the full optimum.
            if proven and not solution.is_optimal:
                solution = replace(solution, status=SolveStatus.OPTIMAL)
            return finish(solution, rounds, generated, proven)
        # Violated rows are rows of the full program, so adding them is sound
        # whether or not this round was proven — group closure pulls every
        # pending row of a violated position across all pools.
        if rounds >= escalation_rounds:
            # Escalate: the incremental trickle is not converging, so hand
            # the backend the complete program in one go.
            keys = np.unique(
                np.concatenate(
                    [pool.group_keys[pool.pending] for pool in pools]
                )
            )
        for pool in pools:
            block = pool.take(keys)
            if block is not None:
                model.add_constraint_block(*block)
                generated += int(block[4].shape[0])
        rounds += 1
        if not proven:
            # A time-limited incumbent with violations left: the budget is
            # gone (each round gets everything that remains), so return the
            # typed incumbent.  The rows just added make the next call —
            # e.g. the next portfolio slice over the same prepared problem —
            # resume from a tighter relaxation.
            return finish(solution, rounds, generated, False)
        if solution.objective_value is not None:
            bound = (
                solution.objective_value
                if bound is None
                else max(bound, solution.objective_value)
            )


__all__ = [
    "DEFAULT_ESCALATION_ROUNDS",
    "DEFAULT_TOLERANCE",
    "MIN_LAZY_POOL_ROWS",
    "CutLoopOutcome",
    "LazyPool",
    "LinkingConstraintSink",
    "RankCompletion",
    "run_cut_loop",
]
