"""Refinements of selection predicates and the space of possible refinements.

Following Section 2.1 (and the refinement notion of Mishra & Koudas), a
refinement of a query changes the constant of numerical predicates and/or the
value set of categorical predicates, leaving everything else (joins,
projection, ranking) untouched.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.exceptions import RefinementError
from repro.provenance.lineage import AnnotatedDatabase
from repro.relational.predicates import (
    CategoricalPredicate,
    Conjunction,
    NumericalPredicate,
    Operator,
)
from repro.relational.query import SPJQuery

NumericalKey = tuple[str, Operator]


@dataclass(frozen=True)
class Refinement:
    """New predicate parameters keyed by the predicate they refine.

    ``numerical`` maps ``(attribute, operator)`` to the refined constant;
    ``categorical`` maps an attribute name to the refined value set.  Missing
    keys keep the original predicate unchanged, so ``Refinement()`` is the
    identity refinement.
    """

    numerical: Mapping[NumericalKey, float] = field(default_factory=dict)
    categorical: Mapping[str, frozenset] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "numerical", dict(self.numerical))
        object.__setattr__(
            self,
            "categorical",
            {attribute: frozenset(values) for attribute, values in self.categorical.items()},
        )
        for attribute, values in self.categorical.items():
            if not values:
                raise RefinementError(
                    f"categorical refinement on {attribute!r} must keep at least one value"
                )

    # -- application ---------------------------------------------------------------

    def apply(self, query: SPJQuery) -> SPJQuery:
        """The refined query ``Q'`` obtained by applying this refinement to ``query``."""
        predicates = []
        for predicate in query.where:
            if isinstance(predicate, NumericalPredicate):
                key = (predicate.attribute, predicate.operator)
                if key in self.numerical:
                    predicate = predicate.with_constant(self.numerical[key])
            elif isinstance(predicate, CategoricalPredicate):
                if predicate.attribute in self.categorical:
                    predicate = predicate.with_values(self.categorical[predicate.attribute])
            predicates.append(predicate)
        return SPJQuery(
            tables=query.tables,
            where=Conjunction(predicates),
            order_by=query.order_by,
            select=query.select,
            distinct=query.distinct,
            name=f"{query.name}'",
        )

    def is_identity(self, query: SPJQuery) -> bool:
        """Whether applying this refinement to ``query`` changes nothing."""
        for predicate in query.numerical_predicates:
            key = (predicate.attribute, predicate.operator)
            if key in self.numerical and self.numerical[key] != predicate.constant:
                return False
        for predicate in query.categorical_predicates:
            if (
                predicate.attribute in self.categorical
                and self.categorical[predicate.attribute] != predicate.values
            ):
                return False
        return True

    def describe(self, query: SPJQuery) -> str:
        """Readable change summary relative to ``query`` (used in examples/reports)."""
        changes = []
        for predicate in query.numerical_predicates:
            key = (predicate.attribute, predicate.operator)
            if key in self.numerical and self.numerical[key] != predicate.constant:
                changes.append(
                    f"{predicate.attribute} {predicate.operator.value} "
                    f"{predicate.constant:g} -> {self.numerical[key]:g}"
                )
        for predicate in query.categorical_predicates:
            refined = self.categorical.get(predicate.attribute)
            if refined is not None and refined != predicate.values:
                added = sorted(refined - predicate.values, key=str)
                removed = sorted(predicate.values - refined, key=str)
                parts = []
                if added:
                    parts.append("+{" + ", ".join(map(str, added)) + "}")
                if removed:
                    parts.append("-{" + ", ".join(map(str, removed)) + "}")
                changes.append(f"{predicate.attribute}: " + " ".join(parts))
        return "; ".join(changes) if changes else "(no change)"

    @classmethod
    def identity(cls, query: SPJQuery) -> "Refinement":
        """The refinement that reproduces ``query`` exactly."""
        numerical = {
            (predicate.attribute, predicate.operator): predicate.constant
            for predicate in query.numerical_predicates
        }
        categorical = {
            predicate.attribute: predicate.values
            for predicate in query.categorical_predicates
        }
        return cls(numerical=numerical, categorical=categorical)


class RefinementSpace:
    """The space of possible refinements of a query over a database.

    Candidate constants for a numerical predicate are the distinct values of
    its attribute in ``~Q(D)`` (refining to any other constant selects the
    same set of tuples as one of these).  Candidate value sets for a
    categorical predicate are all non-empty subsets of the attribute's active
    domain.  The exhaustive baselines enumerate this space lazily; the MILP
    never materialises it.
    """

    def __init__(self, query: SPJQuery, annotated: AnnotatedDatabase) -> None:
        self.query = query
        self.annotated = annotated
        self._numerical_candidates: dict[NumericalKey, list[float]] = {}
        for predicate in query.numerical_predicates:
            domain = annotated.numeric_domain(predicate.attribute)
            delta = annotated.smallest_gap(predicate.attribute)
            # A refinement is characterised by the set of values it selects,
            # but its *distance* depends on the constant chosen to represent
            # that set.  The MILP picks the representative closest to the
            # original constant (a domain value, or a domain value shifted by
            # the +/- delta margin of expressions (1)/(2)); enumerating the
            # same representatives keeps the exhaustive baselines exact.
            candidates = set(domain) | {predicate.constant}
            candidates.update(value + delta for value in domain)
            candidates.update(value - delta for value in domain)
            self._numerical_candidates[(predicate.attribute, predicate.operator)] = sorted(
                candidates
            )
        self._categorical_domains: dict[str, list[object]] = {
            predicate.attribute: annotated.categorical_domains[predicate.attribute]
            for predicate in query.categorical_predicates
        }

    # -- size accounting -----------------------------------------------------------

    def size(self) -> int:
        """Number of candidate refinements (may be astronomically large)."""
        total = 1
        for candidates in self._numerical_candidates.values():
            total *= len(candidates)
        for domain in self._categorical_domains.values():
            total *= 2 ** len(domain) - 1
        return total

    def numerical_candidates(self, key: NumericalKey) -> list[float]:
        return list(self._numerical_candidates[key])

    def categorical_domain(self, attribute: str) -> list[object]:
        return list(self._categorical_domains[attribute])

    # -- sharding support (parallel sweep engine) ------------------------------------

    def num_dimensions(self) -> int:
        """Number of enumeration dimensions (numerical keys + categorical attributes)."""
        return len(self._numerical_candidates) + len(self._categorical_domains)

    def first_dimension_size(self) -> int:
        """Candidate count of the outermost enumeration dimension.

        May be astronomically large for a categorical-first space (``2^d - 1``
        subsets); callers must treat it as a number, never materialise it.
        """
        for candidates in self._numerical_candidates.values():
            return len(candidates)
        for domain in self._categorical_domains.values():
            return 2 ** len(domain) - 1
        return 0

    def first_dimension_values(self) -> Iterator:
        """The outermost dimension's candidate values, in enumeration order.

        Numerical constants for a numerical-first space, lazily generated
        value subsets (nearest-to-original first) for a categorical-first one.
        """
        for key in self._numerical_candidates:
            return iter(self._numerical_candidates[key])
        for attribute in self._categorical_domains:
            return self._ordered_subsets(attribute)
        return iter(())

    def tail_size(self) -> int:
        """Number of candidates per outermost-dimension value (inner cross product).

        Together with :meth:`first_dimension_values` this gives exact global
        candidate offsets for contiguous shards of the enumeration order, so a
        parallel search can reproduce ``max_candidates`` truncation exactly.
        """
        first = True
        total = 1
        for candidates in self._numerical_candidates.values():
            if first:
                first = False
                continue
            total *= len(candidates)
        for domain in self._categorical_domains.values():
            if first:
                first = False
                continue
            total *= 2 ** len(domain) - 1
        return total

    # -- enumeration -----------------------------------------------------------------

    def __iter__(self) -> Iterator[Refinement]:
        return self.enumerate()

    def enumerate(self, first_values: Iterable | None = None) -> Iterator[Refinement]:
        """Lazily enumerate every candidate refinement.

        Categorical subsets are enumerated in order of increasing symmetric
        difference from the original value set so that, under a timeout, the
        exhaustive baselines explore "small" refinements first (as a human
        would).  Nothing is materialised up front: for a categorical domain of
        114 values (Astronauts) the space has ~2^114 members and the baselines
        rely on their timeout to stop early.

        ``first_values`` restricts the *outermost* dimension to the given
        candidate values (in the given order) instead of its full list — the
        sharding hook of the parallel sweep engine.  A shard built from
        consecutive outer values is a contiguous block of the full enumeration
        order.
        """
        numerical_keys = list(self._numerical_candidates)
        categorical_attributes = list(self._categorical_domains)

        def expand(position: int, chosen_numerical: tuple, chosen_categorical: tuple):
            if position < len(numerical_keys):
                key = numerical_keys[position]
                if position == 0 and first_values is not None:
                    candidates = first_values
                else:
                    candidates = self._numerical_candidates[key]
                for constant in candidates:
                    yield from expand(
                        position + 1, chosen_numerical + (constant,), chosen_categorical
                    )
                return
            categorical_position = position - len(numerical_keys)
            if categorical_position < len(categorical_attributes):
                attribute = categorical_attributes[categorical_position]
                if position == 0 and first_values is not None:
                    subsets = iter(first_values)
                else:
                    subsets = self._ordered_subsets(attribute)
                for values in subsets:
                    yield from expand(
                        position + 1, chosen_numerical, chosen_categorical + (values,)
                    )
                return
            yield Refinement(
                numerical=dict(zip(numerical_keys, chosen_numerical)),
                categorical=dict(zip(categorical_attributes, chosen_categorical)),
            )

        return expand(0, (), ())

    def _ordered_subsets(self, attribute: str) -> Iterator[frozenset]:
        """Yield non-empty subsets of the attribute domain, nearest-to-original first.

        Subsets are generated by toggling ``d`` values of the domain relative
        to the original value set, for ``d = 0, 1, 2, ...`` — so the number of
        changed values grows monotonically and the generator never needs to
        materialise the full power set.
        """
        domain = self._categorical_domains[attribute]
        original = next(
            predicate.values
            for predicate in self.query.categorical_predicates
            if predicate.attribute == attribute
        )
        for toggles in range(len(domain) + 1):
            for toggled in itertools.combinations(domain, toggles):
                candidate = frozenset(original.symmetric_difference(toggled))
                if candidate:
                    yield candidate
