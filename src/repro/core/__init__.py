"""The paper's contribution: Best Approximation Refinement.

This subpackage implements Sections 2–4 of the paper:

* :mod:`repro.core.constraints` — groups, cardinality constraints over top-k
  prefixes, and the deviation measure (Definition 2.6);
* :mod:`repro.core.refinement` — refinements of selection predicates and how
  they are applied to queries;
* :mod:`repro.core.distances` — the three refinement distance measures
  (predicate distance, Jaccard over the top-k, Kendall's tau for top-k lists)
  and their MILP linearizations;
* :mod:`repro.core.milp_builder` — the MILP of Figure 1 (expressions (1)–(8));
* :mod:`repro.core.optimizations` — the three Section 4 optimizations;
* :mod:`repro.core.solver` — the :class:`RefinementSolver` facade
  (methods ``"milp"`` and ``"milp+opt"``);
* :mod:`repro.core.naive` — the exhaustive baselines (``Naive`` and
  ``Naive+prov``);
* :mod:`repro.core.erica` — the Erica-style baseline used in Section 5.3.
"""

from repro.core.constraints import (
    BoundType,
    CardinalityConstraint,
    ConstraintSet,
    Group,
    at_least,
    at_most,
)
from repro.core.distances import (
    DistanceMeasure,
    JaccardDistance,
    KendallDistance,
    PredicateDistance,
    get_distance,
)
from repro.core.erica import EricaBaseline, EricaResult
from repro.core.naive import MaskIndexData, NaiveProvenanceSearch, NaiveSearch
from repro.core.portfolio import (
    EngineReport,
    EngineSpec,
    PortfolioResult,
    PortfolioSolver,
    RaceAllPolicy,
    StaggeredPolicy,
)
from repro.core.problem import RefinementProblem
from repro.core.refinement import Refinement, RefinementSpace
from repro.core.reporting import (
    DistanceComparison,
    compare_distances,
    refinement_report,
)
from repro.core.solver import PreparedProblem, RefinementResult, RefinementSolver

__all__ = [
    "BoundType",
    "CardinalityConstraint",
    "ConstraintSet",
    "DistanceComparison",
    "DistanceMeasure",
    "EngineReport",
    "EngineSpec",
    "EricaBaseline",
    "EricaResult",
    "Group",
    "JaccardDistance",
    "KendallDistance",
    "MaskIndexData",
    "NaiveProvenanceSearch",
    "NaiveSearch",
    "PortfolioResult",
    "PortfolioSolver",
    "PredicateDistance",
    "PreparedProblem",
    "RaceAllPolicy",
    "Refinement",
    "RefinementProblem",
    "RefinementResult",
    "RefinementSolver",
    "RefinementSpace",
    "StaggeredPolicy",
    "at_least",
    "at_most",
    "compare_distances",
    "get_distance",
    "refinement_report",
]
