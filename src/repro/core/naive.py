"""Exhaustive-search baselines: ``Naive`` and ``Naive+prov`` (Section 5).

``Naive`` enumerates candidate refinements and re-evaluates each refined query
on the database.  ``Naive+prov`` enumerates the same space but evaluates each
candidate on the annotated ``~Q(D)`` instead, avoiding the DBMS round-trip —
the same provenance trick the MILP uses, applied to brute-force search.

Both support a wall-clock timeout, mirroring the 1-hour timeout in the paper's
experiments (the refinement space of the Astronauts query has ~2^114 members,
so the baselines are *expected* to time out there).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.constraints import ConstraintSet
from repro.core.distances import DistanceMeasure, PredicateDistance, get_distance
from repro.core.refinement import Refinement, RefinementSpace
from repro.provenance.lineage import AnnotatedDatabase, annotate_result
from repro.relational import columnar
from repro.relational.database import Database
from repro.relational.executor import QueryExecutor, RankedResult
from repro.relational.predicates import Operator
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

try:  # pragma: no cover - gated via columnar.vectorization_enabled()
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


@dataclass
class NaiveResult:
    """Outcome of an exhaustive search."""

    feasible: bool
    method: str
    distance_code: str
    refinement: Refinement | None = None
    refined_query: SPJQuery | None = None
    distance_value: float | None = None
    deviation: float | None = None
    candidates_examined: int = 0
    exhausted: bool = False
    timed_out: bool = False
    setup_seconds: float = 0.0
    search_seconds: float = 0.0
    total_seconds: float = 0.0
    space_size: int = 0


class _BaseExhaustiveSearch:
    """Shared plumbing of the two exhaustive baselines."""

    method = "naive"

    def __init__(
        self,
        database: Database,
        query: SPJQuery,
        constraints: ConstraintSet,
        epsilon: float = 0.5,
        distance: DistanceMeasure | str = "pred",
        timeout: float | None = None,
        max_candidates: int | None = None,
    ) -> None:
        self.database = database
        self.query = query
        self.constraints = constraints
        self.epsilon = float(epsilon)
        self.distance = get_distance(distance)
        self.timeout = timeout
        self.max_candidates = max_candidates
        self._executor = QueryExecutor(database)
        self._space: RefinementSpace | None = None

    def search(self) -> NaiveResult:
        """Enumerate the refinement space and return the closest acceptable refinement."""
        setup_started = time.perf_counter()
        original_result = self._executor.evaluate(self.query)
        # annotate_result reuses this executor's cached join+sort of ~Q(D);
        # annotate() would rebuild both on a fresh executor.
        annotated = annotate_result(
            self.query, self._executor.evaluate_unfiltered(self.query)
        )
        space = RefinementSpace(self.query, annotated)
        self._space = space
        self._prepare(annotated)
        setup_seconds = time.perf_counter() - setup_started
        # Predicate distance depends only on the refinement's parameter maps,
        # so the hot loop can skip rebuilding the refined query's dicts.
        predicate_distance = (
            self.distance if isinstance(self.distance, PredicateDistance) else None
        )

        best: tuple[float, Refinement, SPJQuery, RankedResult, float] | None = None
        examined = 0
        exhausted = True
        timed_out = False
        search_started = time.perf_counter()
        for refinement in space.enumerate():
            if self.timeout is not None and time.perf_counter() - search_started > self.timeout:
                exhausted = False
                timed_out = True
                break
            if self.max_candidates is not None and examined >= self.max_candidates:
                exhausted = False
                break
            examined += 1
            refined_query = refinement.apply(self.query)
            refined_result = self._evaluate(refinement, refined_query)
            if len(refined_result) < self.constraints.k_star:
                continue
            deviation = self._deviation(refined_result)
            if deviation > self.epsilon + 1e-9:
                continue
            if predicate_distance is not None:
                distance_value = predicate_distance.evaluate_refinement(
                    self.query, refinement
                )
            else:
                distance_value = self.distance.evaluate(
                    self.query,
                    refined_query,
                    original_result,
                    refined_result,
                    self.constraints.k_star,
                )
            if best is None or distance_value < best[0] - 1e-12:
                best = (distance_value, refinement, refined_query, refined_result, deviation)
        search_seconds = time.perf_counter() - search_started

        result = NaiveResult(
            feasible=best is not None,
            method=self.method,
            distance_code=self.distance.code,
            candidates_examined=examined,
            exhausted=exhausted,
            timed_out=timed_out,
            setup_seconds=setup_seconds,
            search_seconds=search_seconds,
            total_seconds=setup_seconds + search_seconds,
            space_size=space.size(),
        )
        if best is not None:
            distance_value, refinement, refined_query, refined_result, deviation = best
            result.refinement = refinement
            result.refined_query = refined_query
            result.distance_value = distance_value
            result.deviation = deviation
        return result

    # -- hooks ------------------------------------------------------------------------

    def _prepare(self, annotated: AnnotatedDatabase) -> None:
        """Hook for subclasses that need the annotations."""

    def _evaluate(self, refinement: Refinement, refined_query: SPJQuery) -> RankedResult:
        raise NotImplementedError

    def _deviation(self, refined_result: RankedResult) -> float:
        """Constraint deviation of a candidate (overridable fast path)."""
        return self.constraints.deviation(refined_result)


class NaiveSearch(_BaseExhaustiveSearch):
    """The paper's ``Naive``: every candidate is re-evaluated on the DBMS."""

    method = "naive"

    def _evaluate(self, refinement: Refinement, refined_query: SPJQuery) -> RankedResult:
        return self._executor.evaluate(refined_query)


class _CandidateMaskIndex:
    """Precomputed per-atom masks over the rank-ordered ``~Q(D)``.

    Candidate refinements are evaluated by AND-ing one boolean mask per
    predicate: numerical thresholds are resolved against the pre-sorted
    column (NULL positions excluded up front, so they can never match),
    categorical value sets OR together per-value masks, and DISTINCT
    de-duplication keeps the first (best-ranked) position of each precomputed
    distinct-key code.

    Numerical thresholds are resolved in *batch*: :meth:`prepare_sweep`
    answers an entire refinement sweep with one ``searchsorted`` call per
    predicate, yielding a positions-per-threshold table (each threshold maps
    to a ``[start, stop)`` window of the value-sorted position array).  Per
    candidate that leaves a dict lookup, and each threshold's boolean part
    mask is built at most once per sweep (within a memory budget; above it,
    only the most recent mask per predicate is kept, which still serves the
    outer predicates of the nested enumeration).
    """

    def __init__(self, length, numeric_index, value_masks, distinct_codes) -> None:
        self._length = length
        self._numeric = numeric_index
        self._value_masks = value_masks
        self._distinct_codes = distinct_codes
        #: (attribute, operator) -> {threshold: (start, stop) into the order array}
        self._windows: dict = {}
        #: (attribute, operator) -> {threshold: mask} of built part masks.  The
        #: whole sweep is kept when it fits the memory budget (so the inner
        #: predicates of a nested enumeration pay for each mask exactly once);
        #: otherwise only the most recent mask per predicate is retained.
        self._parts: dict = {}
        self._keep_all_parts = True

    @classmethod
    def build(cls, query: SPJQuery, base: Relation) -> "_CandidateMaskIndex | None":
        if not columnar.vectorization_enabled():
            return None
        store = base.column_store()
        if store is None:
            return None
        numeric_index: dict[str, tuple] = {}
        for predicate in query.numerical_predicates:
            values = store.numeric(predicate.attribute)
            if values is None:
                return None
            valid = _np.flatnonzero(~_np.isnan(values))
            order = valid[_np.argsort(values[valid], kind="stable")]
            numeric_index[predicate.attribute] = (order, values[order])
        value_masks: dict[str, dict] = {}
        for predicate in query.categorical_predicates:
            factorized = store.codes(predicate.attribute)
            if factorized is None:
                return None
            codes, mapping = factorized
            value_masks[predicate.attribute] = {
                value: codes == code for value, code in mapping.items()
            }
        distinct_codes = None
        if query.distinct and query.select:
            distinct_codes = columnar.combined_codes(store, list(query.select))
            if distinct_codes is None:
                return None
        return cls(store.length, numeric_index, value_masks, distinct_codes)

    def prepare_sweep(self, query: SPJQuery, space) -> None:
        """Batch-resolve every candidate threshold of a refinement sweep.

        One ``searchsorted`` call per numerical predicate (two for the
        two-sided ``=`` operator) maps the predicate's entire candidate list
        to ``[start, stop)`` windows of its value-sorted position array — the
        positions-per-threshold table that :meth:`selected_positions` then
        answers candidates from without ever searching again.
        """
        total_masks = 0
        for predicate in query.numerical_predicates:
            key = (predicate.attribute, predicate.operator)
            entry = self._numeric.get(predicate.attribute)
            if entry is None:
                continue
            _, sorted_values = entry
            thresholds = _np.asarray(
                space.numerical_candidates(key), dtype=float
            )
            total_masks += thresholds.shape[0]
            self._windows[key] = dict(
                zip(
                    thresholds.tolist(),
                    self._batched_windows(
                        sorted_values, thresholds, predicate.operator
                    ),
                )
            )
        # One bool per row per cached mask; cap the sweep-wide cache at ~64 MB.
        self._keep_all_parts = total_masks * self._length <= 64_000_000

    @staticmethod
    def _batched_windows(sorted_values, thresholds, operator):
        """``[start, stop)`` windows for many thresholds of one predicate."""
        total = int(sorted_values.shape[0])
        if operator is Operator.GREATER_EQUAL:
            cuts = _np.searchsorted(sorted_values, thresholds, side="left")
            return [(int(cut), total) for cut in cuts]
        if operator is Operator.GREATER:
            cuts = _np.searchsorted(sorted_values, thresholds, side="right")
            return [(int(cut), total) for cut in cuts]
        if operator is Operator.LESS_EQUAL:
            cuts = _np.searchsorted(sorted_values, thresholds, side="right")
            return [(0, int(cut)) for cut in cuts]
        if operator is Operator.LESS:
            cuts = _np.searchsorted(sorted_values, thresholds, side="left")
            return [(0, int(cut)) for cut in cuts]
        low = _np.searchsorted(sorted_values, thresholds, side="left")
        high = _np.searchsorted(sorted_values, thresholds, side="right")
        return [(int(lo), int(hi)) for lo, hi in zip(low, high)]

    def _numeric_part(self, predicate, batched: bool):
        """Boolean mask of one numerical predicate (cached per sweep threshold)."""
        key = (predicate.attribute, predicate.operator)
        constant = predicate.constant
        if batched:
            cached = self._parts.get(key)
            if cached is not None:
                part = cached.get(constant)
                if part is not None:
                    return part
        entry = self._numeric.get(predicate.attribute)
        if entry is None:
            return None
        order, sorted_values = entry
        window = self._windows.get(key, {}).get(constant) if batched else None
        if window is None:
            window = self._batched_windows(
                sorted_values, _np.asarray([constant], dtype=float), predicate.operator
            )[0]
        start, stop = window
        part = _np.zeros(self._length, dtype=bool)
        part[order[start:stop]] = True
        if batched:
            if self._keep_all_parts:
                self._parts.setdefault(key, {})[constant] = part
            else:
                self._parts[key] = {constant: part}
        return part

    def selected_positions(self, refined_query: SPJQuery, batched: bool = True):
        """Rank-ordered positions of ``~Q(D)`` selected by the refined query."""
        parts = []
        for predicate in refined_query.numerical_predicates:
            part = self._numeric_part(predicate, batched)
            if part is None:
                return None
            parts.append(part)
        for predicate in refined_query.categorical_predicates:
            masks = self._value_masks.get(predicate.attribute)
            if masks is None:
                return None
            selected = [masks[value] for value in predicate.values if value in masks]
            if not selected:
                return _np.empty(0, dtype=_np.int64)
            if len(selected) == 1:
                parts.append(selected[0])
            else:
                parts.append(_np.logical_or.reduce(selected))
        if not parts:
            positions = _np.arange(self._length)
        elif len(parts) == 1:
            positions = _np.flatnonzero(parts[0])
        else:
            positions = _np.flatnonzero(_np.logical_and.reduce(parts))
        if self._distinct_codes is not None and positions.size:
            codes = self._distinct_codes[positions]
            _, first = _np.unique(codes, return_index=True)
            positions = positions[_np.sort(first)]
        return positions


class NaiveProvenanceSearch(_BaseExhaustiveSearch):
    """The paper's ``Naive+prov``: candidates are evaluated on the annotations.

    ``batched_sweeps`` (default on) resolves every numerical candidate
    threshold up front with one batched ``searchsorted`` per predicate and
    reuses per-predicate masks across the sweep; turning it off restores the
    per-candidate evaluation of the plain columnar engine, which the
    sweep-batching benchmark uses as its baseline.
    """

    method = "naive+prov"

    def __init__(self, *args, batched_sweeps: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._batched = bool(batched_sweeps)
        self._annotated: AnnotatedDatabase | None = None
        self._schema = None
        self._base: Relation | None = None
        self._fast: _CandidateMaskIndex | None = None
        self._group_masks: dict | None = None
        self._positions = None

    def _prepare(self, annotated: AnnotatedDatabase) -> None:
        self._annotated = annotated
        # The rank-ordered ~Q(D) is needed to materialise candidate outputs;
        # compute it once here (the executor caches the join and sort) and
        # derive the per-atom mask index from its columns.
        unfiltered = self._executor.evaluate_unfiltered(self.query)
        self._base = unfiltered.relation
        self._schema = unfiltered.relation.schema
        self._fast = _CandidateMaskIndex.build(self.query, self._base)
        if self._fast is not None and self._batched and self._space is not None:
            self._fast.prepare_sweep(self.query, self._space)
        store = self._base.column_store()
        if store is not None:
            # Warm the factorizations the per-candidate deviation counts
            # read, so lazily-gathered top-k slices inherit them instead of
            # re-factorizing per candidate.
            for constraint in self.constraints:
                for attribute in constraint.group.attributes:
                    if attribute in self._base.schema:
                        store.codes(attribute)
            self._group_masks = self._build_group_masks(store)

    def _build_group_masks(self, store) -> dict | None:
        """One boolean membership mask over ``~Q(D)`` per constraint group.

        Candidate deviations then reduce to counting mask hits among the
        candidate's top-k positions.  ``None`` (falling back to the generic
        :meth:`ConstraintSet.deviation`) when a group condition cannot be
        resolved through the column codes with identical semantics.
        """
        masks: dict = {}
        for constraint in self.constraints:
            group = constraint.group
            if group in masks:
                continue
            mask = _np.ones(store.length, dtype=bool)
            for attribute, value in group.condition_map.items():
                if attribute not in self._base.schema:
                    return None
                factorized = store.codes(attribute)
                if factorized is None:
                    return None
                codes, mapping = factorized
                try:
                    code = mapping.get(value)
                except TypeError:
                    return None
                if code is None:
                    mask = _np.zeros(store.length, dtype=bool)
                    break
                mask &= codes == code
            masks[group] = mask
        return masks

    def _deviation(self, refined_result: RankedResult) -> float:
        """Deviation from the candidate's positions over the shared group masks."""
        positions = self._positions
        if positions is None or self._group_masks is None:
            return self.constraints.deviation(refined_result)
        total = 0.0
        for constraint in self.constraints:
            topk = positions[: constraint.k]
            count = int(self._group_masks[constraint.group][topk].sum())
            total += constraint.shortfall(count) / constraint.denominator()
        return total / len(self.constraints)

    def _evaluate(self, refinement: Refinement, refined_query: SPJQuery) -> RankedResult:
        """Evaluate a refinement directly on ``~Q(D)`` without touching the database.

        A tuple is selected when every predicate of the refined query accepts
        its value; DISTINCT de-duplication keeps the better-ranked tuple.  The
        tuples of ``~Q(D)`` are already in rank order, so the selected tuples
        are too.  The columnar fast path composes precomputed per-atom masks;
        the row-based reference below remains for parity testing and as the
        NumPy-free fallback.
        """
        self._positions = None
        if self._fast is not None:
            positions = self._fast.selected_positions(refined_query, self._batched)
            if positions is not None:
                if self._batched:
                    self._positions = positions
                relation = self._base.take(positions).rename(refined_query.name)
                if not self._batched:
                    # Reconstruct the pre-batching cost model: the old engine
                    # gathered every column and cached view per candidate.
                    store = relation.column_store()
                    if store is not None:
                        store.materialize()
                projected = (
                    relation.project(list(refined_query.select))
                    if refined_query.select
                    else relation
                )
                return RankedResult(
                    query=refined_query, relation=relation, projected=projected
                )
        return self._evaluate_rowwise(refinement, refined_query)

    def _evaluate_rowwise(
        self, refinement: Refinement, refined_query: SPJQuery
    ) -> RankedResult:
        """Row-at-a-time reference evaluation over the annotated tuples."""
        assert self._annotated is not None
        numerical = list(refined_query.numerical_predicates)
        categorical = list(refined_query.categorical_predicates)

        selected_rows = []
        seen_distinct: set[tuple[object, ...]] = set()
        for annotated_tuple in self._annotated.tuples:
            values = annotated_tuple.values
            if not all(predicate.matches(values) for predicate in numerical):
                continue
            if not all(predicate.matches(values) for predicate in categorical):
                continue
            if annotated_tuple.distinct_key is not None:
                if annotated_tuple.distinct_key in seen_distinct:
                    continue
                seen_distinct.add(annotated_tuple.distinct_key)
            selected_rows.append(values)

        schema = self._schema
        relation = Relation(
            refined_query.name,
            schema,
            [tuple(values[name] for name in schema.names) for values in selected_rows],
        )
        projected = (
            relation.project(list(refined_query.select))
            if refined_query.select
            else relation
        )
        return RankedResult(query=refined_query, relation=relation, projected=projected)


__all__ = ["NaiveProvenanceSearch", "NaiveResult", "NaiveSearch"]
