"""Exhaustive-search baselines: ``Naive`` and ``Naive+prov`` (Section 5).

``Naive`` enumerates candidate refinements and re-evaluates each refined query
on the database.  ``Naive+prov`` enumerates the same space but evaluates each
candidate on the annotated ``~Q(D)`` instead, avoiding the DBMS round-trip —
the same provenance trick the MILP uses, applied to brute-force search.

Both support a wall-clock timeout, mirroring the 1-hour timeout in the paper's
experiments (the refinement space of the Astronauts query has ~2^114 members,
so the baselines are *expected* to time out there).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.constraints import ConstraintSet
from repro.core.distances import DistanceMeasure, get_distance
from repro.core.refinement import Refinement, RefinementSpace
from repro.provenance.lineage import AnnotatedDatabase, annotate
from repro.relational.database import Database
from repro.relational.executor import QueryExecutor, RankedResult
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation


@dataclass
class NaiveResult:
    """Outcome of an exhaustive search."""

    feasible: bool
    method: str
    distance_code: str
    refinement: Refinement | None = None
    refined_query: SPJQuery | None = None
    distance_value: float | None = None
    deviation: float | None = None
    candidates_examined: int = 0
    exhausted: bool = False
    timed_out: bool = False
    setup_seconds: float = 0.0
    search_seconds: float = 0.0
    total_seconds: float = 0.0
    space_size: int = 0


class _BaseExhaustiveSearch:
    """Shared plumbing of the two exhaustive baselines."""

    method = "naive"

    def __init__(
        self,
        database: Database,
        query: SPJQuery,
        constraints: ConstraintSet,
        epsilon: float = 0.5,
        distance: DistanceMeasure | str = "pred",
        timeout: float | None = None,
        max_candidates: int | None = None,
    ) -> None:
        self.database = database
        self.query = query
        self.constraints = constraints
        self.epsilon = float(epsilon)
        self.distance = get_distance(distance)
        self.timeout = timeout
        self.max_candidates = max_candidates
        self._executor = QueryExecutor(database)

    def search(self) -> NaiveResult:
        """Enumerate the refinement space and return the closest acceptable refinement."""
        setup_started = time.perf_counter()
        original_result = self._executor.evaluate(self.query)
        annotated = annotate(self.query, self.database)
        space = RefinementSpace(self.query, annotated)
        self._prepare(annotated)
        setup_seconds = time.perf_counter() - setup_started

        best: tuple[float, Refinement, SPJQuery, RankedResult, float] | None = None
        examined = 0
        exhausted = True
        timed_out = False
        search_started = time.perf_counter()
        for refinement in space.enumerate():
            if self.timeout is not None and time.perf_counter() - search_started > self.timeout:
                exhausted = False
                timed_out = True
                break
            if self.max_candidates is not None and examined >= self.max_candidates:
                exhausted = False
                break
            examined += 1
            refined_query = refinement.apply(self.query)
            refined_result = self._evaluate(refinement, refined_query)
            if len(refined_result) < self.constraints.k_star:
                continue
            deviation = self.constraints.deviation(refined_result)
            if deviation > self.epsilon + 1e-9:
                continue
            distance_value = self.distance.evaluate(
                self.query,
                refined_query,
                original_result,
                refined_result,
                self.constraints.k_star,
            )
            if best is None or distance_value < best[0] - 1e-12:
                best = (distance_value, refinement, refined_query, refined_result, deviation)
        search_seconds = time.perf_counter() - search_started

        result = NaiveResult(
            feasible=best is not None,
            method=self.method,
            distance_code=self.distance.code,
            candidates_examined=examined,
            exhausted=exhausted,
            timed_out=timed_out,
            setup_seconds=setup_seconds,
            search_seconds=search_seconds,
            total_seconds=setup_seconds + search_seconds,
            space_size=space.size(),
        )
        if best is not None:
            distance_value, refinement, refined_query, refined_result, deviation = best
            result.refinement = refinement
            result.refined_query = refined_query
            result.distance_value = distance_value
            result.deviation = deviation
        return result

    # -- hooks ------------------------------------------------------------------------

    def _prepare(self, annotated: AnnotatedDatabase) -> None:
        """Hook for subclasses that need the annotations."""

    def _evaluate(self, refinement: Refinement, refined_query: SPJQuery) -> RankedResult:
        raise NotImplementedError


class NaiveSearch(_BaseExhaustiveSearch):
    """The paper's ``Naive``: every candidate is re-evaluated on the DBMS."""

    method = "naive"

    def _evaluate(self, refinement: Refinement, refined_query: SPJQuery) -> RankedResult:
        return self._executor.evaluate(refined_query)


class NaiveProvenanceSearch(_BaseExhaustiveSearch):
    """The paper's ``Naive+prov``: candidates are evaluated on the annotations."""

    method = "naive+prov"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._annotated: AnnotatedDatabase | None = None
        self._schema = None

    def _prepare(self, annotated: AnnotatedDatabase) -> None:
        self._annotated = annotated
        # The joined schema is needed to materialise candidate outputs; compute
        # it once here rather than per candidate.
        self._schema = self._executor.evaluate_unfiltered(self.query).relation.schema

    def _evaluate(self, refinement: Refinement, refined_query: SPJQuery) -> RankedResult:
        """Evaluate a refinement directly on ``~Q(D)`` without touching the database.

        A tuple is selected when every predicate of the refined query accepts
        its value; DISTINCT de-duplication keeps the better-ranked tuple.  The
        tuples of ``~Q(D)`` are already in rank order, so the selected tuples
        are too.
        """
        assert self._annotated is not None
        numerical = list(refined_query.numerical_predicates)
        categorical = list(refined_query.categorical_predicates)

        selected_rows = []
        seen_distinct: set[tuple[object, ...]] = set()
        for annotated_tuple in self._annotated.tuples:
            values = annotated_tuple.values
            if not all(predicate.matches(values) for predicate in numerical):
                continue
            if not all(predicate.matches(values) for predicate in categorical):
                continue
            if annotated_tuple.distinct_key is not None:
                if annotated_tuple.distinct_key in seen_distinct:
                    continue
                seen_distinct.add(annotated_tuple.distinct_key)
            selected_rows.append(values)

        schema = self._schema
        relation = Relation(
            refined_query.name,
            schema,
            [tuple(values[name] for name in schema.names) for values in selected_rows],
        )
        projected = (
            relation.project(list(refined_query.select))
            if refined_query.select
            else relation
        )
        return RankedResult(query=refined_query, relation=relation, projected=projected)


__all__ = ["NaiveProvenanceSearch", "NaiveResult", "NaiveSearch"]
