"""Exhaustive-search baselines: ``Naive`` and ``Naive+prov`` (Section 5).

``Naive`` enumerates candidate refinements and re-evaluates each refined query
on the database.  ``Naive+prov`` enumerates the same space but evaluates each
candidate on the annotated ``~Q(D)`` instead, avoiding the DBMS round-trip —
the same provenance trick the MILP uses, applied to brute-force search.

Both support a wall-clock timeout, mirroring the 1-hour timeout in the paper's
experiments (the refinement space of the Astronauts query has ~2^114 members,
so the baselines are *expected* to time out there).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core import parallel
from repro.core.constraints import ConstraintSet
from repro.core.distances import DistanceMeasure, PredicateDistance, get_distance
from repro.core.parallel import ShardOutcome, ShardTask
from repro.core.refinement import Refinement, RefinementSpace
from repro.provenance.lineage import AnnotatedDatabase, annotate_result
from repro.relational import columnar
from repro.relational.database import Database
from repro.relational.executor import QueryExecutor, RankedResult
from repro.relational.predicates import Operator
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

try:  # pragma: no cover - gated via columnar.vectorization_enabled()
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


@dataclass
class NaiveResult:
    """Outcome of an exhaustive search."""

    feasible: bool
    method: str
    distance_code: str
    refinement: Refinement | None = None
    refined_query: SPJQuery | None = None
    distance_value: float | None = None
    deviation: float | None = None
    candidates_examined: int = 0
    exhausted: bool = False
    timed_out: bool = False
    #: The search was stopped by its ``should_stop`` hook (portfolio racing).
    cancelled: bool = False
    #: The incumbent matched the ``cutoff`` lower bound — proven optimal
    #: without exhausting the space.
    cutoff_reached: bool = False
    setup_seconds: float = 0.0
    search_seconds: float = 0.0
    total_seconds: float = 0.0
    space_size: int = 0
    #: Sweep pools restarted after worker crashes (parallel runs only).
    pool_restarts: int = 0
    #: The sweep's tail ran serially after exhausting the restart budget.
    degraded_to_serial: bool = False


class _BaseExhaustiveSearch:
    """Shared plumbing of the two exhaustive baselines."""

    method = "naive"

    def __init__(
        self,
        database: Database,
        query: SPJQuery,
        constraints: ConstraintSet,
        epsilon: float = 0.5,
        distance: DistanceMeasure | str = "pred",
        timeout: float | None = None,
        max_candidates: int | None = None,
        jobs: int | None = None,
        executor_backend: str | None = None,
        executor_db: str | None = None,
        executor: QueryExecutor | None = None,
        annotated: AnnotatedDatabase | None = None,
        should_stop: Callable[[], bool] | None = None,
        on_incumbent: Callable[[float, Refinement, float], None] | None = None,
        cutoff: float | Callable[[], float | None] | None = None,
    ) -> None:
        self.database = database
        self.query = query
        self.constraints = constraints
        self.epsilon = float(epsilon)
        self.distance = get_distance(distance)
        self.timeout = timeout
        self.max_candidates = max_candidates
        self.jobs = parallel.resolve_jobs(jobs)
        # Portfolio-racing hooks (all optional; the defaults leave behaviour
        # byte-identical to the plain search).  ``should_stop`` is polled
        # between candidates for cooperative cancellation; ``on_incumbent``
        # streams each strict improvement out; ``cutoff`` is a proven lower
        # bound (value or live callable) — an incumbent matching it is
        # optimal, so the search stops with ``cutoff_reached``.
        self._should_stop = should_stop
        self._on_incumbent = on_incumbent
        self._cutoff = cutoff
        # A warm dataset session shares its executor (cached join/sort, warm
        # sqlite store) and pre-annotated ~Q(D) across searches; one-shot
        # callers keep the build-it-here behaviour.
        self._executor = executor or QueryExecutor(
            database, backend=executor_backend, db_path=executor_db
        )
        self._warm_annotated = annotated
        self._space: RefinementSpace | None = None
        self._original_result: RankedResult | None = None

    def search(self) -> NaiveResult:
        """Enumerate the refinement space and return the closest acceptable refinement."""
        setup_started = time.perf_counter()
        self._original_result = self._executor.evaluate(self.query)
        # annotate_result reuses this executor's cached join+sort of ~Q(D);
        # annotate() would rebuild both on a fresh executor.  A warm session
        # passes its cached annotation in instead.
        annotated = self._warm_annotated
        if annotated is None:
            annotated = annotate_result(
                self.query,
                self._executor.evaluate_unfiltered(self.query),
                scan=self._executor.annotation_scan(self.query),
            )
        space = RefinementSpace(self.query, annotated)
        self._space = space
        self._prepare(annotated)
        setup_seconds = time.perf_counter() - setup_started

        search_started = time.perf_counter()
        summary = None
        if self.jobs > 1:
            summary = parallel.run_sharded_search(
                self, self.jobs, self.timeout, self.max_candidates
            )
        if summary is None:
            summary = self._search_serial()
        search_seconds = time.perf_counter() - search_started

        result = NaiveResult(
            feasible=summary.best is not None,
            method=self.method,
            distance_code=self.distance.code,
            candidates_examined=summary.examined,
            exhausted=summary.exhausted,
            timed_out=summary.timed_out,
            cancelled=summary.cancelled,
            cutoff_reached=summary.cutoff_reached,
            pool_restarts=summary.pool_restarts,
            degraded_to_serial=summary.degraded_to_serial,
            setup_seconds=setup_seconds,
            search_seconds=search_seconds,
            total_seconds=setup_seconds + search_seconds,
            space_size=space.size(),
        )
        if summary.best is not None:
            distance_value, refinement, deviation = summary.best
            result.refinement = refinement
            result.refined_query = refinement.apply(self.query)
            result.distance_value = distance_value
            result.deviation = deviation
        return result

    def _search_serial(self) -> "parallel.SweepSummary":
        """The serial hot loop (also the ``jobs=1`` reference semantics)."""
        best: tuple[float, Refinement, float] | None = None
        examined = 0
        exhausted = True
        timed_out = False
        cancelled = False
        cutoff_reached = False
        search_started = time.perf_counter()
        for refinement in self._space.enumerate():
            if self._should_stop is not None and self._should_stop():
                exhausted = False
                cancelled = True
                break
            if self.timeout is not None and time.perf_counter() - search_started > self.timeout:
                exhausted = False
                timed_out = True
                break
            if self.max_candidates is not None and examined >= self.max_candidates:
                exhausted = False
                break
            examined += 1
            candidate = self._examine(refinement)
            if candidate is not None and (
                best is None or candidate[0] < best[0] - parallel.IMPROVEMENT_EPSILON
            ):
                best = candidate
                if self._on_incumbent is not None:
                    self._on_incumbent(best[0], best[1], best[2])
                cutoff = self.cutoff_value()
                if cutoff is not None and best[0] <= cutoff + 1e-9:
                    exhausted = False
                    cutoff_reached = True
                    break
        return parallel.SweepSummary(
            best=best,
            examined=examined,
            exhausted=exhausted,
            timed_out=timed_out,
            cancelled=cancelled,
            cutoff_reached=cutoff_reached,
        )

    def cutoff_value(self) -> float | None:
        """The current proven lower bound (resolving a live callable)."""
        if self._cutoff is None:
            return None
        if callable(self._cutoff):
            value = self._cutoff()
            return None if value is None else float(value)
        return float(self._cutoff)

    def __getstate__(self) -> dict:
        # The racing hooks close over thread-local race state (locks, result
        # queues) and must never cross a pickle/fork boundary; workers are
        # bounded by plain shard deadlines and budgets instead.
        state = self.__dict__.copy()
        state["_should_stop"] = None
        state["_on_incumbent"] = None
        state["_cutoff"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def _examine(self, refinement: Refinement) -> tuple[float, Refinement, float] | None:
        """Evaluate one candidate; ``(distance, refinement, deviation)`` if acceptable."""
        refined_query = refinement.apply(self.query)
        refined_result = self._evaluate(refinement, refined_query)
        if len(refined_result) < self.constraints.k_star:
            return None
        deviation = self._deviation(refined_result)
        if deviation > self.epsilon + 1e-9:
            return None
        # Predicate distance depends only on the refinement's parameter maps,
        # so the hot loop can skip rebuilding the refined query's dicts.
        if isinstance(self.distance, PredicateDistance):
            distance_value = self.distance.evaluate_refinement(self.query, refinement)
        else:
            distance_value = self.distance.evaluate(
                self.query,
                refined_query,
                self._original_result,
                refined_result,
                self.constraints.k_star,
            )
        return (distance_value, refinement, deviation)

    # -- parallel worker protocol ------------------------------------------------------

    def evaluate_shard(self, task: ShardTask) -> ShardOutcome:
        """Run the hot loop over one contiguous shard of the candidate space.

        Called inside a pool worker on the fork-inherited (or unpickled)
        prepared search object; returns only the shard's best candidate and
        bookkeeping, never result relations.
        """
        best: tuple[float, Refinement, float] | None = None
        examined = 0
        exhausted = True
        timed_out = False
        for refinement in self._space.enumerate(first_values=task.first_values):
            if task.deadline is not None and time.time() > task.deadline:
                exhausted = False
                timed_out = True
                break
            if task.budget is not None and examined >= task.budget:
                exhausted = False
                break
            examined += 1
            candidate = self._examine(refinement)
            if candidate is not None and (
                best is None or candidate[0] < best[0] - parallel.IMPROVEMENT_EPSILON
            ):
                best = candidate
        return ShardOutcome(
            index=task.index,
            examined=examined,
            best=best,
            exhausted=exhausted,
            timed_out=timed_out,
        )

    def reset_after_fork(self) -> None:
        """Drop state that must not cross a process boundary.

        SQLite connections are not fork-safe: each pool worker reopens its
        own (an on-disk ``REPRO_EXECUTOR_DB`` makes that reopen skip the data
        load entirely).
        """
        self._executor.reset_connections()

    # -- hooks ------------------------------------------------------------------------

    def _prepare(self, annotated: AnnotatedDatabase) -> None:
        """Hook for subclasses that need the annotations."""

    def _evaluate(self, refinement: Refinement, refined_query: SPJQuery) -> RankedResult:
        raise NotImplementedError

    def _deviation(self, refined_result: RankedResult) -> float:
        """Constraint deviation of a candidate (overridable fast path)."""
        return self.constraints.deviation(refined_result)


class NaiveSearch(_BaseExhaustiveSearch):
    """The paper's ``Naive``: every candidate is re-evaluated on the DBMS."""

    method = "naive"

    def _evaluate(self, refinement: Refinement, refined_query: SPJQuery) -> RankedResult:
        return self._executor.evaluate(refined_query)


@dataclass(frozen=True)
class MaskIndexData:
    """The immutable, shareable half of the candidate mask index.

    Holds the expensive precomputations over the rank-ordered ``~Q(D)`` —
    value-sorted position arrays per numerical predicate, per-value boolean
    masks per categorical predicate, combined DISTINCT-key codes — all of
    which are read-only NumPy arrays.  A warm
    :class:`~repro.service.session.DatasetSession` builds this once and hands
    it to every search over the dataset; each search then wraps it in its own
    :class:`_CandidateMaskIndex`, which keeps the *mutable* per-sweep caches
    (threshold windows, part masks, categorical chains) private, so concurrent
    searches never share mutable state.
    """

    length: int
    numeric_index: Mapping[str, tuple]
    value_masks: Mapping[str, Mapping]
    distinct_codes: object | None

    @classmethod
    def build(cls, query: SPJQuery, base: Relation) -> "MaskIndexData | None":
        if not columnar.vectorization_enabled():
            return None
        store = base.column_store()
        if store is None:
            return None
        numeric_index: dict[str, tuple] = {}
        for predicate in query.numerical_predicates:
            values = store.numeric(predicate.attribute)
            if values is None:
                return None
            valid = _np.flatnonzero(~_np.isnan(values))
            order = valid[_np.argsort(values[valid], kind="stable")]
            numeric_index[predicate.attribute] = (order, values[order])
        value_masks: dict[str, dict] = {}
        for predicate in query.categorical_predicates:
            factorized = store.codes(predicate.attribute)
            if factorized is None:
                return None
            codes, mapping = factorized
            # repro-lint: disable=hot-path-rowwise -- per-distinct-value mask table, built once per index, not per row
            value_masks[predicate.attribute] = {
                value: codes == code for value, code in mapping.items()
            }
        distinct_codes = None
        if query.distinct and query.select:
            distinct_codes = columnar.combined_codes(store, list(query.select))
            if distinct_codes is None:
                return None
        return cls(store.length, numeric_index, value_masks, distinct_codes)


class _CandidateMaskIndex:
    """Precomputed per-atom masks over the rank-ordered ``~Q(D)``.

    Candidate refinements are evaluated by AND-ing one boolean mask per
    predicate: numerical thresholds are resolved against the pre-sorted
    column (NULL positions excluded up front, so they can never match),
    categorical value sets OR together per-value masks, and DISTINCT
    de-duplication keeps the first (best-ranked) position of each precomputed
    distinct-key code.

    Numerical thresholds are resolved in *batch*: :meth:`prepare_sweep`
    answers an entire refinement sweep with one ``searchsorted`` call per
    predicate, yielding a positions-per-threshold table (each threshold maps
    to a ``[start, stop)`` window of the value-sorted position array).  Per
    candidate that leaves a dict lookup, and each threshold's boolean part
    mask is built at most once per sweep (within a memory budget; above it,
    only the most recent mask per predicate is kept, which still serves the
    outer predicates of the nested enumeration).

    The categorical side of a sweep is *incremental* (``incremental=True``):
    candidate subsets arrive in toggle order, so consecutive candidates
    differ in a handful of values, and each per-value mask partitions the
    rows — updating the previous candidate's cached mask with one in-place
    XOR per toggled value replaces the full OR-reduce over the subset.  The
    AND of all numerical part masks is likewise cached across the categorical
    chain (the numerical constants only change when a chain ends).
    """

    #: Sweep-wide cache budget in bytes, covering the cached boolean part
    #: masks *and* the int64 positions/values arrays of the numeric index.
    CACHE_BUDGET_BYTES = 64_000_000

    def __init__(self, data: MaskIndexData, incremental=True) -> None:
        self._data = data
        self._length = data.length
        self._numeric = data.numeric_index
        self._value_masks = data.value_masks
        self._distinct_codes = data.distinct_codes
        self._incremental = bool(incremental)
        #: (attribute, operator) -> {threshold: (start, stop) into the order array}
        self._windows: dict = {}
        #: (attribute, operator) -> {threshold: mask} of built part masks.  The
        #: whole sweep is kept when it fits the memory budget (so the inner
        #: predicates of a nested enumeration pay for each mask exactly once);
        #: otherwise only the most recent mask per predicate is retained.
        self._parts: dict = {}
        self._keep_all_parts = True
        #: attribute -> [subset, mask] of the categorical chain cache; the
        #: mask buffer is updated in place (never handed out past the current
        #: candidate's AND-reduce).
        self._chain: dict = {}
        #: [numeric constants key, combined numeric mask] cache.
        self._numeric_prefix: list | None = None

    @classmethod
    def build(
        cls, query: SPJQuery, base: Relation, incremental: bool = True
    ) -> "_CandidateMaskIndex | None":
        data = MaskIndexData.build(query, base)
        if data is None:
            return None
        return cls(data, incremental)

    def prepare_sweep(self, query: SPJQuery, space) -> None:
        """Batch-resolve every candidate threshold of a refinement sweep.

        One ``searchsorted`` call per numerical predicate (two for the
        two-sided ``=`` operator) maps the predicate's entire candidate list
        to ``[start, stop)`` windows of its value-sorted position array — the
        positions-per-threshold table that :meth:`selected_positions` then
        answers candidates from without ever searching again.
        """
        total_masks = 0
        for predicate in query.numerical_predicates:
            key = (predicate.attribute, predicate.operator)
            entry = self._numeric.get(predicate.attribute)
            if entry is None:
                continue
            _, sorted_values = entry
            thresholds = _np.asarray(
                space.numerical_candidates(key), dtype=float
            )
            total_masks += thresholds.shape[0]
            # repro-lint: disable=hot-path-rowwise -- per-threshold window table, one vectorized batch per predicate sweep
            self._windows[key] = dict(
                zip(
                    thresholds.tolist(),
                    self._batched_windows(
                        sorted_values, thresholds, predicate.operator
                    ),
                )
            )
        # The budget meters everything the sweep keeps alive per row: one bool
        # per row per cached part mask, the int64 positions arrays (and their
        # float64 sorted-value companions) of the numeric index, and the one
        # chain mask per categorical attribute.
        positions_bytes = sum(
            order.nbytes + sorted_values.nbytes
            for order, sorted_values in self._numeric.values()
        )
        chain_bytes = len(self._value_masks) * self._length
        mask_bytes = total_masks * self._length
        self._keep_all_parts = (
            positions_bytes + chain_bytes + mask_bytes <= self.CACHE_BUDGET_BYTES
        )

    @staticmethod
    def _batched_windows(sorted_values, thresholds, operator):
        """``[start, stop)`` windows for many thresholds of one predicate."""
        total = int(sorted_values.shape[0])
        if operator is Operator.GREATER_EQUAL:
            cuts = _np.searchsorted(sorted_values, thresholds, side="left")
            return [(int(cut), total) for cut in cuts]
        if operator is Operator.GREATER:
            cuts = _np.searchsorted(sorted_values, thresholds, side="right")
            return [(int(cut), total) for cut in cuts]
        if operator is Operator.LESS_EQUAL:
            cuts = _np.searchsorted(sorted_values, thresholds, side="right")
            return [(0, int(cut)) for cut in cuts]
        if operator is Operator.LESS:
            cuts = _np.searchsorted(sorted_values, thresholds, side="left")
            return [(0, int(cut)) for cut in cuts]
        low = _np.searchsorted(sorted_values, thresholds, side="left")
        high = _np.searchsorted(sorted_values, thresholds, side="right")
        return [(int(lo), int(hi)) for lo, hi in zip(low, high)]

    def _numeric_part(self, predicate, constant, batched: bool):
        """Boolean mask of one numerical predicate (cached per sweep threshold).

        ``constant`` is the refined threshold (it may differ from
        ``predicate.constant`` when the caller resolves a refinement against
        the original query's predicates).
        """
        key = (predicate.attribute, predicate.operator)
        if batched:
            cached = self._parts.get(key)
            if cached is not None:
                part = cached.get(constant)
                if part is not None:
                    return part
        entry = self._numeric.get(predicate.attribute)
        if entry is None:
            return None
        order, sorted_values = entry
        window = self._windows.get(key, {}).get(constant) if batched else None
        if window is None:
            window = self._batched_windows(
                sorted_values, _np.asarray([constant], dtype=float), predicate.operator
            )[0]
        start, stop = window
        part = _np.zeros(self._length, dtype=bool)
        part[order[start:stop]] = True
        if batched:
            if self._keep_all_parts:
                self._parts.setdefault(key, {})[constant] = part
            else:
                self._parts[key] = {constant: part}
        return part

    def _categorical_part(self, attribute: str, values, batched: bool):
        """Boolean mask of one categorical predicate.

        On the incremental path the previous candidate's mask is cached per
        attribute and updated with one in-place XOR per toggled value —
        valid because the per-value masks partition the rows, so toggling a
        value flips exactly its rows.  ``False`` signals an unknown
        attribute (caller falls back), ``None`` a candidate that selects
        nothing.
        """
        masks = self._value_masks.get(attribute)
        if masks is None:
            return False
        if isinstance(values, frozenset) and values <= masks.keys():
            subset = values
        else:
            subset = frozenset(value for value in values if value in masks)
        if not subset:
            return None
        if batched and self._incremental:
            cached = self._chain.get(attribute)
            if cached is not None:
                last, buffer = cached
                toggled = subset ^ last
                if len(toggled) < len(subset):
                    for value in toggled:
                        _np.logical_xor(buffer, masks[value], out=buffer)
                    cached[0] = subset
                    return buffer
        selected = [masks[value] for value in subset]
        if len(selected) == 1:
            part = selected[0]
        else:
            part = _np.logical_or.reduce(selected)
        if batched and self._incremental:
            # Seed the chain cache with a private buffer (per-value masks are
            # shared and must never be XORed in place).
            buffer = part.copy() if len(selected) == 1 else part
            self._chain[attribute] = [subset, buffer]
            return buffer
        return part

    def _numeric_conjunction(self, constants: tuple, predicates, batched: bool):
        """AND of all numerical part masks (``False`` -> caller fallback).

        On the incremental path the combined mask is cached under the tuple
        of constants: the numerical constants only change when a categorical
        chain rolls over, so the whole chain reuses one cached AND.
        ``predicates`` supplies the ``(attribute, operator)`` of each
        constant, in query order.
        """
        if not predicates:
            return None
        key = None
        if batched and self._incremental:
            key = constants
            cached = self._numeric_prefix
            if cached is not None and cached[0] == key:
                return cached[1]
        parts = []
        for predicate, constant in zip(predicates, constants):
            part = self._numeric_part(predicate, constant, batched)
            if part is None:
                return False
            parts.append(part)
        combined = parts[0] if len(parts) == 1 else _np.logical_and.reduce(parts)
        if key is not None:
            self._numeric_prefix = [key, combined]
        return combined

    def _positions_from_parts(self, numeric, categorical_parts):
        parts = ([] if numeric is None else [numeric]) + categorical_parts
        if not parts:
            positions = _np.arange(self._length)
        elif len(parts) == 1:
            positions = _np.flatnonzero(parts[0])
        else:
            positions = _np.flatnonzero(_np.logical_and.reduce(parts))
        if self._distinct_codes is not None and positions.size:
            codes = self._distinct_codes[positions]
            _, first = _np.unique(codes, return_index=True)
            positions = positions[_np.sort(first)]
        return positions

    def selected_positions(self, refined_query: SPJQuery, batched: bool = True):
        """Rank-ordered positions of ``~Q(D)`` selected by the refined query."""
        predicates = refined_query.numerical_predicates
        numeric = self._numeric_conjunction(
            tuple(predicate.constant for predicate in predicates),
            predicates,
            batched,
        )
        if numeric is False:
            return None
        categorical_parts = []
        for predicate in refined_query.categorical_predicates:
            part = self._categorical_part(predicate.attribute, predicate.values, batched)
            if part is False:
                return None
            if part is None:
                return _np.empty(0, dtype=_np.int64)
            categorical_parts.append(part)
        return self._positions_from_parts(numeric, categorical_parts)

    def positions_for(self, query: SPJQuery, refinement: Refinement):
        """Rank-ordered selected positions straight from a refinement's maps.

        The hot-loop entry point: reads the refined constants and value sets
        off the :class:`Refinement` against the *original* query's predicates,
        so candidate evaluation never has to build a refined
        :class:`SPJQuery` at all.
        """
        predicates = query.numerical_predicates
        numerical = refinement.numerical
        constants = tuple(
            numerical.get((predicate.attribute, predicate.operator), predicate.constant)
            for predicate in predicates
        )
        numeric = self._numeric_conjunction(constants, predicates, True)
        if numeric is False:
            return None
        categorical = refinement.categorical
        categorical_parts = []
        for predicate in query.categorical_predicates:
            values = categorical.get(predicate.attribute, predicate.values)
            part = self._categorical_part(predicate.attribute, values, True)
            if part is False:
                return None
            if part is None:
                return _np.empty(0, dtype=_np.int64)
            categorical_parts.append(part)
        return self._positions_from_parts(numeric, categorical_parts)


class NaiveProvenanceSearch(_BaseExhaustiveSearch):
    """The paper's ``Naive+prov``: candidates are evaluated on the annotations.

    ``batched_sweeps`` (default on) resolves every numerical candidate
    threshold up front with one batched ``searchsorted`` per predicate and
    reuses per-predicate masks across the sweep; turning it off restores the
    per-candidate evaluation of the plain columnar engine, which the
    sweep-batching benchmark uses as its baseline.  ``incremental_categorical``
    (default on) additionally evaluates categorical subset chains by XOR-ing
    only the toggled values over the previous candidate's cached mask;
    turning it off restores the per-candidate OR-reduce, which the
    incremental-categorical benchmark uses as its baseline.
    """

    method = "naive+prov"

    def __init__(
        self,
        *args,
        batched_sweeps: bool = True,
        incremental_categorical: bool = True,
        mask_data: MaskIndexData | None = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._batched = bool(batched_sweeps)
        self._incremental = bool(incremental_categorical)
        self._mask_data = mask_data
        self._annotated: AnnotatedDatabase | None = None
        self._schema = None
        self._base: Relation | None = None
        self._fast: _CandidateMaskIndex | None = None
        self._group_masks: dict | None = None
        self._positions = None

    def _prepare(self, annotated: AnnotatedDatabase) -> None:
        self._annotated = annotated
        # The rank-ordered ~Q(D) is needed to materialise candidate outputs;
        # compute it once here (the executor caches the join and sort) and
        # derive the per-atom mask index from its columns.
        unfiltered = self._executor.evaluate_unfiltered(self.query)
        self._base = unfiltered.relation
        self._schema = unfiltered.relation.schema
        # The per-sweep caches stay private to this search; only the
        # immutable MaskIndexData half is shareable (and a warm session
        # passes its cached copy in).
        data = self._mask_data
        if data is None:
            data = MaskIndexData.build(self.query, self._base)
        self._fast = (
            None if data is None else _CandidateMaskIndex(data, self._incremental)
        )
        if self._fast is not None and self._batched and self._space is not None:
            self._fast.prepare_sweep(self.query, self._space)
        store = self._base.column_store()
        if store is not None:
            # Warm the factorizations the per-candidate deviation counts
            # read, so lazily-gathered top-k slices inherit them instead of
            # re-factorizing per candidate.
            for constraint in self.constraints:
                for attribute in constraint.group.attributes:
                    if attribute in self._base.schema:
                        store.codes(attribute)
            self._group_masks = self._build_group_masks(store)

    def _build_group_masks(self, store) -> dict | None:
        """One boolean membership mask over ``~Q(D)`` per constraint group.

        Candidate deviations then reduce to counting mask hits among the
        candidate's top-k positions.  ``None`` (falling back to the generic
        :meth:`ConstraintSet.deviation`) when a group condition cannot be
        resolved through the column codes with identical semantics.
        """
        masks: dict = {}
        for constraint in self.constraints:
            group = constraint.group
            if group in masks:
                continue
            mask = _np.ones(store.length, dtype=bool)
            for attribute, value in group.condition_map.items():
                if attribute not in self._base.schema:
                    return None
                factorized = store.codes(attribute)
                if factorized is None:
                    return None
                codes, mapping = factorized
                try:
                    code = mapping.get(value)
                except TypeError:
                    return None
                if code is None:
                    mask = _np.zeros(store.length, dtype=bool)
                    break
                mask &= codes == code
            masks[group] = mask
        return masks

    def _deviation(self, refined_result: RankedResult) -> float:
        """Deviation from the candidate's positions over the shared group masks."""
        positions = self._positions
        if positions is None or self._group_masks is None:
            return self.constraints.deviation(refined_result)
        return self._deviation_from_positions(positions)

    def _deviation_from_positions(self, positions) -> float:
        total = 0.0
        for constraint in self.constraints:
            topk = positions[: constraint.k]
            count = int(self._group_masks[constraint.group][topk].sum())
            total += constraint.shortfall(count) / constraint.denominator()
        return total / len(self.constraints)

    def _examine(self, refinement: Refinement) -> tuple[float, Refinement, float] | None:
        """Candidate evaluation without materialising the refined query.

        When every ingredient has a vectorized form — the mask index, the
        per-group membership masks and the predicate distance — a candidate
        reduces to a position set plus a few mask counts, so neither the
        refined :class:`SPJQuery` nor a result relation is ever built.  Any
        missing ingredient falls back to the generic path (which the parity
        suite holds byte-identical to this one).
        """
        if (
            self._fast is None
            or not self._batched
            or self._group_masks is None
            or not isinstance(self.distance, PredicateDistance)
        ):
            return super()._examine(refinement)
        positions = self._fast.positions_for(self.query, refinement)
        if positions is None:
            return super()._examine(refinement)
        if positions.size < self.constraints.k_star:
            return None
        deviation = self._deviation_from_positions(positions)
        if deviation > self.epsilon + 1e-9:
            return None
        distance_value = self.distance.evaluate_refinement(self.query, refinement)
        return (distance_value, refinement, deviation)

    def _evaluate(self, refinement: Refinement, refined_query: SPJQuery) -> RankedResult:
        """Evaluate a refinement directly on ``~Q(D)`` without touching the database.

        A tuple is selected when every predicate of the refined query accepts
        its value; DISTINCT de-duplication keeps the better-ranked tuple.  The
        tuples of ``~Q(D)`` are already in rank order, so the selected tuples
        are too.  The columnar fast path composes precomputed per-atom masks;
        the row-based reference below remains for parity testing and as the
        NumPy-free fallback.
        """
        self._positions = None
        if self._fast is not None:
            positions = self._fast.selected_positions(refined_query, self._batched)
            if positions is not None:
                if self._batched:
                    self._positions = positions
                relation = self._base.take(positions).rename(refined_query.name)
                if not self._batched:
                    # Reconstruct the pre-batching cost model: the old engine
                    # gathered every column and cached view per candidate.
                    store = relation.column_store()
                    if store is not None:
                        store.materialize()
                projected = (
                    relation.project(list(refined_query.select))
                    if refined_query.select
                    else relation
                )
                return RankedResult(
                    query=refined_query, relation=relation, projected=projected
                )
        return self._evaluate_rowwise(refinement, refined_query)

    def _evaluate_rowwise(
        self, refinement: Refinement, refined_query: SPJQuery
    ) -> RankedResult:
        """Row-at-a-time reference evaluation over the annotated tuples."""
        assert self._annotated is not None
        numerical = list(refined_query.numerical_predicates)
        categorical = list(refined_query.categorical_predicates)

        selected_rows = []
        seen_distinct: set[tuple[object, ...]] = set()
        for annotated_tuple in self._annotated.tuples:
            values = annotated_tuple.values
            if not all(predicate.matches(values) for predicate in numerical):
                continue
            if not all(predicate.matches(values) for predicate in categorical):
                continue
            if annotated_tuple.distinct_key is not None:
                if annotated_tuple.distinct_key in seen_distinct:
                    continue
                seen_distinct.add(annotated_tuple.distinct_key)
            selected_rows.append(values)

        schema = self._schema
        relation = Relation(
            refined_query.name,
            schema,
            [tuple(values[name] for name in schema.names) for values in selected_rows],
        )
        projected = (
            relation.project(list(refined_query.select))
            if refined_query.select
            else relation
        )
        return RankedResult(query=refined_query, relation=relation, projected=projected)


__all__ = ["MaskIndexData", "NaiveProvenanceSearch", "NaiveResult", "NaiveSearch"]
