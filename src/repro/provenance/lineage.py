"""Lineage annotations over the unfiltered query output ``~Q(D)``."""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.executor import QueryExecutor, RankedResult
from repro.relational.predicates import Operator
from repro.relational.query import SPJQuery

try:  # pragma: no cover - optional, used only when a column store exists
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class _RowValues(Mapping):
    """Read-only attribute → value view over one row tuple.

    Every :class:`AnnotatedTuple` of one annotation shares a single
    name → position index and keeps only its row tuple, instead of
    materialising one dict per tuple — at paper scale (34k+ rows) that is the
    difference between one index and tens of thousands of dicts.  The MILP
    builder and the row-based baselines read it exactly like the dict it
    replaces (``[]``, ``.get``, ``.values()`` in schema order).
    """

    __slots__ = ("_index", "_row")

    def __init__(self, index: Mapping[str, int], row: tuple) -> None:
        self._index = index
        self._row = row

    def __getitem__(self, name: str) -> object:
        return self._row[self._index[name]]

    def __iter__(self):
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _RowValues):
            if self._index is other._index:
                return self._row == other._row
            return dict(self) == dict(other)
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return repr(dict(self))


@dataclass(frozen=True)
class CategoricalAtom:
    """Annotation ``A_v``: "the categorical predicate on ``attribute`` includes ``value``"."""

    attribute: str
    value: object

    def label(self) -> str:
        return f"{self.attribute}[{self.value}]"


@dataclass(frozen=True)
class NumericalAtom:
    """Annotation ``A_{v,⋄}``: "``value ⋄ C`` holds for the refined constant ``C``"."""

    attribute: str
    operator: Operator
    value: float

    def label(self) -> str:
        return f"{self.attribute}[{self.value:g}{self.operator.value}]"


LineageAtom = CategoricalAtom | NumericalAtom


class _AtomInterner:
    """Process-wide intern tables for lineage atoms.

    Repeated annotations of the same workload — benchmark sweeps, the MILP
    and the baselines sharing a query, re-annotation inside pool workers —
    share one atom object per distinct ``(attribute, value)`` instead of
    re-allocating per annotation.  A lock makes the tables thread-safe, and
    the ``os.register_at_fork`` hooks keep the interner safe to reuse after
    ``fork`` (the parallel sweep engine forks workers): the lock is held
    across the fork so a child can never inherit it mid-update, and the child
    re-creates its own released lock.  The tables hold only immutable atoms,
    so the inherited contents stay valid.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._categorical: dict[tuple, CategoricalAtom] = {}
        self._numerical: dict[tuple, NumericalAtom] = {}
        if hasattr(os, "register_at_fork"):  # pragma: no branch
            os.register_at_fork(
                before=self._before_fork,
                after_in_parent=self._after_fork_parent,
                after_in_child=self._after_fork_child,
            )

    def _before_fork(self) -> None:
        self._lock.acquire()

    def _after_fork_parent(self) -> None:
        self._lock.release()

    def _after_fork_child(self) -> None:
        self._lock = threading.Lock()

    def categorical(self, attribute: str, value: object) -> CategoricalAtom:
        key = (attribute, value)
        atom = self._categorical.get(key)
        if atom is None:
            with self._lock:
                atom = self._categorical.setdefault(
                    key, CategoricalAtom(attribute, value)
                )
        return atom

    def numerical(
        self, attribute: str, operator: Operator, value: float
    ) -> NumericalAtom:
        key = (attribute, operator, value)
        atom = self._numerical.get(key)
        if atom is None:
            with self._lock:
                atom = self._numerical.setdefault(
                    key, NumericalAtom(attribute, operator, value)
                )
        return atom

    def clear(self) -> None:
        with self._lock:
            self._categorical.clear()
            self._numerical.clear()


#: The shared interner used by every annotation pass in this process.
ATOM_INTERNER = _AtomInterner()


@dataclass(frozen=True)
class AnnotatedTuple:
    """A tuple of ``~Q(D)`` together with its lineage annotation.

    Attributes
    ----------
    position:
        0-based rank of the tuple in ``~Q(D)`` (the ranking that any
        refinement preserves).
    values:
        The full-width row as an attribute → value mapping.
    lineage:
        The set of annotation atoms whose conjunction selects this tuple
        (the paper's ``Lineage(t)``).
    distinct_key:
        Values of the DISTINCT attributes, or ``None`` for non-DISTINCT queries.
    score:
        Value of the ranking attribute.
    """

    position: int
    values: Mapping[str, object]
    lineage: frozenset[LineageAtom]
    distinct_key: tuple[object, ...] | None
    score: float

    def __getitem__(self, attribute: str) -> object:
        return self.values[attribute]


class AnnotatedDatabase:
    """The annotated output of ``~Q(D)`` plus the derived index structures.

    This object is what both the MILP construction (Section 3) and the
    provenance-accelerated baselines consume: it contains everything needed to
    reason about *every possible refinement* of the input query without going
    back to the DBMS.
    """

    def __init__(
        self,
        query: SPJQuery,
        tuples: list[AnnotatedTuple],
        categorical_domains: dict[str, list[object]],
        numerical_domains: dict[str, list[float]],
    ) -> None:
        self.query = query
        self.tuples = tuples
        self.categorical_domains = categorical_domains
        self.numerical_domains = numerical_domains
        self._duplicates_before = self._compute_duplicates()
        self._lineage_classes = self._compute_lineage_classes()

    # -- construction helpers --------------------------------------------------

    def _compute_duplicates(self) -> dict[int, list[int]]:
        """For each tuple position, the better-ranked positions sharing its DISTINCT key."""
        earlier: dict[tuple[object, ...], list[int]] = {}
        duplicates: dict[int, list[int]] = {}
        for annotated in self.tuples:
            if annotated.distinct_key is None:
                duplicates[annotated.position] = []
                continue
            previous = earlier.setdefault(annotated.distinct_key, [])
            duplicates[annotated.position] = list(previous)
            previous.append(annotated.position)
        return duplicates

    def _compute_lineage_classes(self) -> dict[frozenset[LineageAtom], list[int]]:
        """Group tuple positions by identical lineage (the classes ``[Lineage(t)]``)."""
        classes: dict[frozenset[LineageAtom], list[int]] = {}
        for annotated in self.tuples:
            classes.setdefault(annotated.lineage, []).append(annotated.position)
        return classes

    # -- accessors ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tuples)

    def duplicates_before(self, position: int) -> list[int]:
        """The paper's ``S(t)`` for the tuple at ``position``."""
        return self._duplicates_before[position]

    @property
    def lineage_classes(self) -> dict[frozenset[LineageAtom], list[int]]:
        """Mapping from lineage to the positions sharing it (each in rank order)."""
        return self._lineage_classes

    @property
    def num_lineage_classes(self) -> int:
        return len(self._lineage_classes)

    def tuples_in_group(self, member) -> list[AnnotatedTuple]:
        """Tuples whose values satisfy a group-membership callable."""
        return [t for t in self.tuples if member(t.values)]

    def numeric_domain(self, attribute: str) -> list[float]:
        """Sorted distinct values of a numerical predicate attribute."""
        return self.numerical_domains[attribute]

    def big_m(self, attribute: str) -> float:
        """A constant strictly larger than ``max |v|`` over the attribute domain."""
        domain = self.numerical_domains[attribute]
        return max(abs(value) for value in domain) + 1.0

    def smallest_gap(self, attribute: str) -> float:
        """The paper's ``delta``: smaller than the smallest pairwise domain gap."""
        domain = self.numerical_domains[attribute]
        if len(domain) < 2:
            return 1e-3
        gaps = [b - a for a, b in zip(domain, domain[1:]) if b > a]
        smallest = min(gaps) if gaps else 1.0
        return smallest / 2.0

    def relevant_prefix(self, k_star: int) -> list[AnnotatedTuple]:
        """Relevancy-based pruning (Section 4): top-``k*`` of each lineage class.

        A tuple past position ``k*`` within its lineage equivalence class can
        never reach the global top-``k*`` of any refinement, because every
        refinement that selects it also selects all better-ranked tuples of the
        same class.  The returned list preserves global rank order.
        """
        keep: set[int] = set()
        for positions in self._lineage_classes.values():
            keep.update(positions[:k_star])
        return [t for t in self.tuples if t.position in keep]


def annotate(
    query: SPJQuery, database: Database, executor: QueryExecutor | None = None
) -> AnnotatedDatabase:
    """Annotate the unfiltered output ``~Q(D)`` of ``query`` over ``database``.

    Passing the caller's ``executor`` reuses its cached join/sort of ``~Q(D)``
    and, on the sqlite backend, pushes the distinct lineage-atom scan into SQL
    (one ``GROUP BY`` over the predicate attribute columns).
    """
    if executor is None:
        executor = QueryExecutor(database)
    unfiltered: RankedResult = executor.evaluate_unfiltered(query)
    return annotate_result(query, unfiltered, scan=executor.annotation_scan(query))


def _lineage_table(
    query: SPJQuery, scan: Iterable[tuple]
) -> dict[tuple, frozenset[LineageAtom]]:
    """Interned lineage set per distinct predicate-value combination.

    ``scan`` rows carry the categorical predicate values first, then the
    numerical ones (the :meth:`annotation_scan` column order).  Combinations
    with ``None`` in a numerical column belong to dead tuples and get no
    entry.  Keys normalise numerical values to ``float`` so that rows gathered
    from the original relations (which may hold ``int``) hit the same entry
    as the ``REAL`` values sqlite returns.
    """
    categorical = list(query.categorical_predicates)
    numerical = list(query.numerical_predicates)
    table: dict[tuple, frozenset[LineageAtom]] = {}
    for combo in scan:
        atoms: list[LineageAtom] = []
        key: list = []
        dead = False
        for offset, predicate in enumerate(categorical):
            value = combo[offset]
            atoms.append(ATOM_INTERNER.categorical(predicate.attribute, value))
            key.append(value)
        for offset, predicate in enumerate(numerical, start=len(categorical)):
            raw = combo[offset]
            if raw is None:
                dead = True
                break
            value = float(raw)
            atoms.append(
                ATOM_INTERNER.numerical(predicate.attribute, predicate.operator, value)
            )
            key.append(value)
        if dead:
            continue
        table[tuple(key)] = frozenset(atoms)
    return table


def annotate_result(
    query: SPJQuery, unfiltered: RankedResult, scan: Iterable[tuple] | None = None
) -> AnnotatedDatabase:
    """Annotate an already evaluated ``~Q(D)`` result (used by the benchmarks).

    Annotation atoms are built column-wise: each predicate contributes one
    atom per *distinct* attribute value, interned process-wide
    (:data:`ATOM_INTERNER`) and shared across all tuples carrying that value,
    and lineage sets are likewise interned per distinct atom combination —
    tuples in the same lineage equivalence class share one ``frozenset``
    object, which also speeds up the class grouping downstream.

    ``scan`` (the sqlite backend's ``GROUP BY`` over the lineage-atom
    columns) pre-builds the lineage table so each row resolves its lineage
    with a single dict lookup; rows whose values don't hit the table (e.g.
    after a type drift through SQL) fall back to the column-cached scan.

    Tuples with ``None`` in a numerical predicate attribute are *dead*: no
    refinement can ever select them (``None`` fails every comparison), so they
    are omitted from the annotation instead of crashing ``float(None)``.
    Positions keep their rank in ``~Q(D)`` (they may have gaps).  A ``None``
    ranking value scores as 0, mirroring :meth:`RankedResult.scores`.
    """
    relation = unfiltered.relation
    schema = relation.schema

    for predicate in query.where:
        if predicate.attribute not in schema:
            raise QueryError(
                f"predicate attribute {predicate.attribute!r} is missing from the "
                f"joined relation; available: {schema.names}"
            )

    categorical_domains: dict[str, list[object]] = {}
    for predicate in query.categorical_predicates:
        categorical_domains[predicate.attribute] = relation.domain(predicate.attribute)

    store = relation.column_store()
    numerical_domains: dict[str, list[float]] = {}
    for position, predicate in enumerate(query.numerical_predicates):
        values = None
        if scan is not None:
            # One scan column per *predicate* (attributes may repeat across
            # predicates, e.g. GPA <= and GPA >=), categorical columns first.
            offset = len(query.categorical_predicates) + position
            values = sorted(
                {float(combo[offset]) for combo in scan if combo[offset] is not None}
            )
        if values is None and store is not None:
            view = store.numeric(predicate.attribute)
            if view is not None:
                values = _np.unique(view[~_np.isnan(view)]).tolist()
        if values is None:
            values = sorted(
                float(v)
                for v in set(relation.column(predicate.attribute))
                if v is not None
            )
        numerical_domains[predicate.attribute] = values

    select = list(query.select)
    distinct_indices = (
        [schema.index_of(name) for name in select] if query.distinct and select else None
    )
    order_index = schema.index_of(query.order_by.attribute)
    names = schema.names
    # One shared name -> position index; every tuple's values-view wraps its
    # row tuple instead of materialising a dict (see _RowValues).
    name_index = {name: position for position, name in enumerate(names)}

    categorical_columns = [
        (predicate.attribute, schema.index_of(predicate.attribute), {})
        for predicate in query.categorical_predicates
    ]
    numerical_columns = [
        (predicate.attribute, predicate.operator, schema.index_of(predicate.attribute), {})
        for predicate in query.numerical_predicates
    ]
    lineage_cache: dict[tuple[LineageAtom, ...], frozenset[LineageAtom]] = {}
    lineage_table = _lineage_table(query, scan) if scan is not None else None
    predicate_indices = [index for _, index, _ in categorical_columns] + [
        index for _, _, index, _ in numerical_columns
    ]
    numerical_start = len(categorical_columns)

    annotated: list[AnnotatedTuple] = []
    for position, row in enumerate(relation.rows):
        lineage = None
        if lineage_table is not None:
            combo = tuple(
                row[index]
                if offset < numerical_start
                else (None if row[index] is None else float(row[index]))
                for offset, index in enumerate(predicate_indices)
            )
            if None in combo[numerical_start:]:
                continue  # dead tuple
            lineage = lineage_table.get(combo)
        if lineage is None:
            atoms: list[LineageAtom] = []
            dead = False
            for attribute, index, atom_cache in categorical_columns:
                value = row[index]
                atom = atom_cache.get(value)
                if atom is None:
                    atom = atom_cache[value] = ATOM_INTERNER.categorical(
                        attribute, value
                    )
                atoms.append(atom)
            for attribute, operator, index, atom_cache in numerical_columns:
                raw = row[index]
                if raw is None:
                    dead = True
                    break
                value = float(raw)
                atom = atom_cache.get(value)
                if atom is None:
                    atom = atom_cache[value] = ATOM_INTERNER.numerical(
                        attribute, operator, value
                    )
                atoms.append(atom)
            if dead:
                continue
            atom_key = tuple(atoms)
            lineage = lineage_cache.get(atom_key)
            if lineage is None:
                lineage = lineage_cache[atom_key] = frozenset(atoms)
        distinct_key = (
            tuple(row[i] for i in distinct_indices) if distinct_indices is not None else None
        )
        annotated.append(
            AnnotatedTuple(
                position=position,
                values=_RowValues(name_index, row),
                lineage=lineage,
                distinct_key=distinct_key,
                score=0.0 if row[order_index] is None else float(row[order_index]),
            )
        )

    return AnnotatedDatabase(query, annotated, categorical_domains, numerical_domains)
