"""Provenance (data annotation) machinery.

Section 3.1 of the paper builds the MILP over the output of ``~Q`` (the input
query stripped of its selection predicates and DISTINCT), annotating every
tuple with *lineage*: the set of annotation variables ``A_v`` (categorical)
and ``A_{v,⋄}`` (numerical) describing which predicate refinements would
select it.  This subpackage computes those annotations, the duplicate sets
``S(t)`` used for DISTINCT queries, and the lineage equivalence classes used
by the Section 4 optimizations.
"""

from repro.provenance.lineage import (
    AnnotatedDatabase,
    AnnotatedTuple,
    CategoricalAtom,
    LineageAtom,
    NumericalAtom,
    annotate,
)

__all__ = [
    "AnnotatedDatabase",
    "AnnotatedTuple",
    "CategoricalAtom",
    "LineageAtom",
    "NumericalAtom",
    "annotate",
]
