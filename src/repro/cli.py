"""Command-line interface: refine benchmark queries without writing code.

Examples
--------
List the bundled datasets and their queries::

    python -m repro datasets

Show a dataset's query, its ranking and group statistics::

    python -m repro inspect --dataset students --top 6 --group Gender=F

Solve a refinement problem (the running example)::

    python -m repro refine --dataset students \
        --at-least 3@6:Gender=F --at-most 1@3:Income=High \
        --epsilon 0 --distance pred --method milp+opt

Run the provenance-accelerated exhaustive baseline across 4 worker
processes against a persisted on-disk sqlite database::

    python -m repro refine --dataset meps --rows 1200 \
        --at-least 5@10:Sex=F --method naive+prov --jobs 4 \
        --executor-db /tmp/meps.sqlite

Constraint syntax: ``BOUND@K:Attr=Value[,Attr2=Value2]`` — e.g. ``3@6:Gender=F``
means "at least/at most 3 tuples of the group Gender=F within the top-6".
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__
from repro.core import CardinalityConstraint, Group, at_least, at_most
from repro.datasets import load_dataset
from repro.datasets.registry import DATASET_BUILDERS
from repro.exceptions import ReproError, exit_code_for
from repro.relational import QueryExecutor, render_sql


def _parse_group(text: str) -> dict[str, str]:
    conditions: dict[str, str] = {}
    for part in text.split(","):
        if "=" not in part:
            raise argparse.ArgumentTypeError(
                f"invalid group condition {part!r}; expected Attr=Value"
            )
        attribute, _, value = part.partition("=")
        conditions[attribute.strip()] = value.strip()
    if not conditions:
        raise argparse.ArgumentTypeError(f"empty group specification {text!r}")
    return conditions


def parse_constraint(text: str, kind: str) -> CardinalityConstraint:
    """Parse ``BOUND@K:Attr=Value[,Attr=Value]`` into a cardinality constraint."""
    try:
        bound_and_k, _, group_text = text.partition(":")
        bound_text, _, k_text = bound_and_k.partition("@")
        bound = int(bound_text)
        k = int(k_text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"invalid constraint {text!r}; expected BOUND@K:Attr=Value"
        ) from exc
    if not group_text:
        raise argparse.ArgumentTypeError(
            f"constraint {text!r} is missing its group (Attr=Value)"
        )
    conditions = _parse_group(group_text)
    builder = at_least if kind == "lower" else at_most
    return builder(bound, k, **conditions)


def _dataset_parameters(args: argparse.Namespace) -> dict:
    parameters: dict = {}
    if args.rows is not None:
        parameters["num_rows"] = args.rows
    if args.scale_factor is not None:
        parameters["scale_factor"] = args.scale_factor
    if args.seed is not None:
        parameters["seed"] = args.seed
    return parameters


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", required=True, choices=sorted(DATASET_BUILDERS), help="dataset name"
    )
    parser.add_argument("--rows", type=int, default=None, help="override the number of rows")
    parser.add_argument(
        "--scale-factor", type=float, default=None, help="TPC-H scale factor override"
    )
    parser.add_argument("--seed", type=int, default=None, help="generator seed override")


def _command_datasets(_args: argparse.Namespace) -> int:
    print(f"{'name':<14} {'relations':<40} query")
    for name in sorted(DATASET_BUILDERS):
        parameters = {"num_rows": 200} if name in ("law_students", "meps") else {}
        if name == "tpch":
            parameters = {"scale_factor": 0.05}
        bundle = load_dataset(name, **parameters)
        relations = ", ".join(bundle.database.names)
        print(f"{name:<14} {relations:<40} {bundle.query.name}")
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    bundle = load_dataset(args.dataset, **_dataset_parameters(args))
    result = QueryExecutor(bundle.database).evaluate(bundle.query)
    print(render_sql(bundle.query))
    print(f"\nresult size: {len(result)} tuples")
    top = min(args.top, len(result))
    print(f"top-{top}:")
    for rank, row in enumerate(result.projected.rows[:top], start=1):
        print(f"  {rank:3d}. {row}")
    for group_text in args.group or []:
        group = Group(_parse_group(group_text))
        count = result.count_in_top_k(top, group.matches)
        print(f"group {group.label()}: {count} of the top-{top}")
    return 0


def _build_request(args: argparse.Namespace):
    """A wire-form :class:`RefineRequest` from the parsed ``refine`` arguments."""
    from repro.service.engine import RefineRequest, parse_constraint_specs

    return RefineRequest(
        dataset=args.dataset,
        constraints=parse_constraint_specs(args.at_least, args.at_most),
        dataset_parameters=tuple(_dataset_parameters(args).items()),
        epsilon=args.epsilon,
        distance=args.distance,
        method=args.method,
        backend=args.backend,
        time_limit=args.time_limit,
        jobs=args.jobs,
        max_candidates=args.max_candidates,
        num_solutions=args.num_solutions,
        output_size=args.output_size,
        deadline_s=args.deadline,
        engines=tuple(args.engines or ()),
    )


def _one_shot_engine(args: argparse.Namespace):
    """An engine over a single session honouring the executor flags."""
    from repro.service.engine import RefinementEngine
    from repro.service.session import DatasetSession, SessionPool

    pool = SessionPool(capacity=1)
    pool.adopt(
        DatasetSession(
            args.dataset,
            _dataset_parameters(args),
            executor_backend=args.executor_backend,
            executor_db=args.executor_db,
        )
    )
    return RefinementEngine(sessions=pool)


def _print_refine_response(response) -> int:
    """Render a :class:`RefineResponse` in the classic human-readable form."""
    infeasible_note = "No refinement within the requested maximum deviation exists."
    timings = response.timings
    if response.engine == "exhaustive":
        stats = response.statistics
        print(
            f"[{response.method}/{response.distance_code}] {response.status} "
            f"candidates={stats['candidates_examined']} of {stats['space_size']} "
            f"setup={timings['setup_seconds']:.3f}s "
            f"search={timings['search_seconds']:.3f}s "
            f"jobs={stats['jobs']}"
        )
        if not response.feasible:
            print(infeasible_note)
            return 1
        print(
            f"distance={response.distance_value:.4g} deviation={response.deviation:.4g}"
        )
        print("\nrefinement:", response.refinement)
        print("\nrefined query:")
        print(response.refined_sql)
        return 0
    if response.engine == "portfolio":
        race = response.race
        statuses = ", ".join(
            f"{label}={record['status']}"
            for label, record in sorted(race.get("engines", {}).items())
        )
        print(
            f"[portfolio/{response.distance_code}] {response.status} "
            f"winner={race.get('winner')} "
            f"deadline={race.get('deadline_s'):.3g}s "
            f"elapsed={timings['elapsed_seconds']:.3f}s "
            f"engines: {statuses}"
        )
        if not response.feasible:
            if response.status == "deadline":
                print("Deadline expired before any engine found a feasible incumbent.")
            else:
                print(infeasible_note)
            return 1
        proven = " (proven optimal)" if race.get("proven_optimal") else ""
        print(
            f"distance={response.distance_value:.4g} "
            f"deviation={response.deviation:.4g}{proven}"
        )
        print("\nrefinement:", response.refinement)
        print("\nrefined query:")
        print(response.refined_sql)
        return 0
    if response.engine == "erica":
        print(
            f"[erica/{response.distance_code}] {response.status} "
            f"solutions={len(response.refinements)} "
            f"setup={timings['setup_seconds']:.3f}s "
            f"solve={timings['solve_seconds']:.3f}s"
        )
        if not response.feasible:
            print(infeasible_note)
            return 1
        for index, entry in enumerate(response.refinements, start=1):
            print(
                f"\n#{index} distance={entry['distance_value']:.4g} "
                f"output_size={entry['output_size']}"
            )
            print("refinement:", entry["refinement"])
            print("refined query:")
            print(entry["refined_sql"])
        return 0
    if not response.feasible:
        print(
            f"[{response.method}/{response.distance_code}] no refinement within the "
            "maximum deviation exists"
        )
        print(infeasible_note)
        return 1
    print(
        f"[{response.method}/{response.distance_code}] "
        f"distance={response.distance_value:.4g} "
        f"deviation={response.deviation:.4g} "
        f"setup={timings['setup_seconds']:.3f}s solve={timings['solve_seconds']:.3f}s"
    )
    print("\nrefinement:", response.refinement)
    print("\nrefined query:")
    print(response.refined_sql)
    print("\nconstraint counts in the refined ranking:")
    for label, count in response.constraint_counts.items():
        print(f"  {label}: {count}")
    print("\nmodel statistics:", response.statistics)
    return 0


def _command_refine(args: argparse.Namespace) -> int:
    if not args.at_least and not args.at_most:
        print("error: provide at least one --at-least or --at-most constraint", file=sys.stderr)
        return 2
    request = _build_request(args)
    response = _one_shot_engine(args).refine(request)
    if args.json:
        print(response.to_json())
        return 0 if response.feasible else 1
    return _print_refine_response(response)


def _parse_warm_spec(text: str) -> tuple[str, dict]:
    """Parse a ``--warm`` spec: ``dataset[:param=value,...]``.

    Examples: ``students``, ``meps:num_rows=300``, ``tpch:scale_factor=0.05``.
    """
    dataset, _, parameter_text = text.partition(":")
    if dataset not in DATASET_BUILDERS:
        raise argparse.ArgumentTypeError(
            f"unknown dataset {dataset!r} in --warm spec {text!r}"
        )
    parameters: dict = {}
    if parameter_text:
        for part in parameter_text.split(","):
            name, equals, value = part.partition("=")
            if not equals:
                raise argparse.ArgumentTypeError(
                    f"invalid --warm parameter {part!r}; expected name=value"
                )
            name = name.strip()
            if name == "scale_factor":
                parameters[name] = float(value)
            elif name in ("num_rows", "seed"):
                parameters[name] = int(value)
            else:
                raise argparse.ArgumentTypeError(
                    f"unknown --warm parameter {name!r}; "
                    "use num_rows, scale_factor or seed"
                )
    return dataset, parameters


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service.admission import AdmissionController
    from repro.service.engine import RefinementEngine
    from repro.service.server import RefinementServer
    from repro.service.session import SessionPool
    from repro.service.shadow import ShadowEngine

    pool = SessionPool(
        capacity=args.sessions,
        executor_backend=args.executor_backend,
        executor_db_dir=args.executor_db_dir,
    )
    engine = RefinementEngine(sessions=pool)
    shadow = None
    if args.shadow_method is not None:
        shadow = ShadowEngine(
            engine,
            shadow_method=args.shadow_method,
            sample_rate=args.shadow_sample_rate,
            seed=args.shadow_seed,
        )
    admission = AdmissionController(
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        queue_timeout_s=args.queue_timeout,
    )
    server = RefinementServer(
        host=args.host,
        port=args.port,
        engine=engine,
        shadow=shadow,
        verbose=True,
        default_deadline_s=args.default_deadline,
        admission=admission,
        max_body_bytes=args.max_body_bytes,
        drain_timeout_s=args.drain_timeout,
    )
    for spec in args.warm or []:
        dataset, parameters = _parse_warm_spec(spec)
        pool.get(dataset, parameters, warm=True)
        print(f"warmed {dataset} {parameters or ''}".rstrip())
    print(f"serving on http://{server.host}:{server.port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def _command_lint(args) -> int:
    # Imported lazily: the analyzer is a developer tool, and the hot CLI
    # paths (refine/serve) should not pay for loading it.
    from repro.analysis import engine

    argv: list[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.list_rules:
        argv.append("--list-rules")
    if args.show_suppressed:
        argv.append("--show-suppressed")
    return engine.main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query Refinement for Diverse Top-k Selection (SIGMOD 2024 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the bundled benchmark datasets")

    inspect_parser = subparsers.add_parser("inspect", help="evaluate a dataset's query")
    _add_dataset_arguments(inspect_parser)
    inspect_parser.add_argument("--top", type=int, default=10, help="how many rows to display")
    inspect_parser.add_argument(
        "--group", action="append", help="report the top-k count of a group (Attr=Value)"
    )

    refine_parser = subparsers.add_parser("refine", help="solve a refinement problem")
    _add_dataset_arguments(refine_parser)
    refine_parser.add_argument(
        "--at-least", action="append", metavar="BOUND@K:Attr=Value",
        help="lower-bound cardinality constraint (repeatable)",
    )
    refine_parser.add_argument(
        "--at-most", action="append", metavar="BOUND@K:Attr=Value",
        help="upper-bound cardinality constraint (repeatable)",
    )
    refine_parser.add_argument("--epsilon", type=float, default=0.5, help="maximum deviation")
    refine_parser.add_argument(
        "--distance", default="pred", choices=["pred", "jaccard", "kendall"],
        help="distance measure to minimise",
    )
    refine_parser.add_argument(
        "--method", default="milp+opt",
        choices=["milp", "milp+opt", "naive", "naive+prov", "erica", "portfolio"],
        help="algorithm variant (MILP solvers, the exhaustive baselines, "
        "the Erica-style whole-output baseline, or the deadline-bounded "
        "portfolio race)",
    )
    refine_parser.add_argument(
        "--backend", default="auto", help="MILP backend (auto, scipy, branch_and_bound)"
    )
    refine_parser.add_argument(
        "--time-limit", type=float, default=None, help="solver time limit in seconds"
    )
    refine_parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="end-to-end wall-clock SLA for the request; clamps solver time "
        "limits, and for --method portfolio bounds the race (which returns "
        "its best verified incumbent when the budget expires)",
    )
    refine_parser.add_argument(
        "--engines", action="append", metavar="METHOD",
        choices=["milp", "milp+opt", "naive", "naive+prov"],
        help="engine raced by --method portfolio (repeatable; default: "
        "milp+opt and naive+prov)",
    )
    refine_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the naive/naive+prov candidate search "
        "(default: REPRO_SOLVER_JOBS or 1; jobs=1 is the serial path)",
    )
    refine_parser.add_argument(
        "--max-candidates", type=int, default=None,
        help="cap on examined candidates for the naive/naive+prov search",
    )
    refine_parser.add_argument(
        "--executor-backend", default=None, choices=["memory", "sqlite"],
        help="query execution backend (default: REPRO_EXECUTOR_BACKEND or memory)",
    )
    refine_parser.add_argument(
        "--executor-db", default=None, metavar="PATH",
        help="persist the sqlite execution backend to PATH (selects the "
        "sqlite backend unless --executor-backend/REPRO_EXECUTOR_BACKEND "
        "chooses one explicitly; default: REPRO_EXECUTOR_DB)",
    )
    refine_parser.add_argument(
        "--num-solutions", type=int, default=1,
        help="solutions to enumerate with --method erica",
    )
    refine_parser.add_argument(
        "--output-size", type=int, default=None,
        help="whole-output size bound for --method erica (default: original size)",
    )
    refine_parser.add_argument(
        "--json", action="store_true",
        help="emit the result as JSON (the same serialization the serve API returns)",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="start the refinement HTTP/JSON service"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8373, help="bind port (0 picks an ephemeral one)"
    )
    serve_parser.add_argument(
        "--sessions", type=int, default=4,
        help="warm dataset sessions kept alive (LRU beyond this)",
    )
    serve_parser.add_argument(
        "--warm", action="append", metavar="DATASET[:param=value,...]",
        help="warm a dataset session before serving, e.g. meps:num_rows=300 "
        "(repeatable)",
    )
    serve_parser.add_argument(
        "--executor-backend", default=None, choices=["memory", "sqlite"],
        help="query execution backend for every session",
    )
    serve_parser.add_argument(
        "--executor-db-dir", default=None, metavar="DIR",
        help="directory for per-session persisted sqlite stores",
    )
    serve_parser.add_argument(
        "--default-deadline", type=float, default=None, metavar="SECONDS",
        help="end-to-end SLA applied to requests that omit deadline_s "
        "(covers queueing, session acquisition and the solve)",
    )
    serve_parser.add_argument(
        "--max-concurrency", type=int, default=4,
        help="refine requests solved concurrently (default: 4)",
    )
    serve_parser.add_argument(
        "--max-queue", type=int, default=16,
        help="requests allowed to wait for a slot before 429s (default: 16)",
    )
    serve_parser.add_argument(
        "--queue-timeout", type=float, default=10.0, metavar="SECONDS",
        help="longest a deadline-less request may wait queued (default: 10)",
    )
    serve_parser.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="grace period for in-flight solves at shutdown (default: 10)",
    )
    serve_parser.add_argument(
        "--max-body-bytes", type=int, default=1 << 20,
        help="largest accepted request body; bigger gets a typed 413 "
        "(default: 1 MiB)",
    )
    serve_parser.add_argument(
        "--shadow-method", default=None,
        choices=["milp", "milp+opt", "naive", "naive+prov", "erica"],
        help="mirror a sample of requests to this method and report diffs",
    )
    serve_parser.add_argument(
        "--shadow-sample-rate", type=float, default=0.1,
        help="fraction of requests mirrored to the shadow method",
    )
    serve_parser.add_argument(
        "--shadow-seed", type=int, default=0, help="shadow sampling seed"
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="check the repo-specific invariants (lock discipline, pickle "
        "hygiene, SQL parameterization, hot-path shape, wire stability, "
        "env-var registry)",
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with its invariant and exit",
    )
    lint_parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print diagnostics silenced by suppression comments",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "executor_db", None) and getattr(args, "executor_backend", None) == "memory":
        parser.error("--executor-db requires the sqlite backend; drop --executor-backend memory")
    handlers = {
        "datasets": _command_datasets,
        "inspect": _command_inspect,
        "refine": _command_refine,
        "serve": _command_serve,
        "lint": _command_lint,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        # Typed taxonomy on the exit code too: 2 = fatal (bad request,
        # infeasible model, corrupted store), 3 = retryable (overload,
        # deadline, transient store/solver faults) — scripts can back off.
        print(f"error [{error.error_code}]: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
