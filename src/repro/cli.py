"""Command-line interface: refine benchmark queries without writing code.

Examples
--------
List the bundled datasets and their queries::

    python -m repro datasets

Show a dataset's query, its ranking and group statistics::

    python -m repro inspect --dataset students --top 6 --group Gender=F

Solve a refinement problem (the running example)::

    python -m repro refine --dataset students \
        --at-least 3@6:Gender=F --at-most 1@3:Income=High \
        --epsilon 0 --distance pred --method milp+opt

Run the provenance-accelerated exhaustive baseline across 4 worker
processes against a persisted on-disk sqlite database::

    python -m repro refine --dataset meps --rows 1200 \
        --at-least 5@10:Sex=F --method naive+prov --jobs 4 \
        --executor-db /tmp/meps.sqlite

Constraint syntax: ``BOUND@K:Attr=Value[,Attr2=Value2]`` — e.g. ``3@6:Gender=F``
means "at least/at most 3 tuples of the group Gender=F within the top-6".
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__
from repro.core import (
    CardinalityConstraint,
    ConstraintSet,
    Group,
    NaiveProvenanceSearch,
    NaiveSearch,
    RefinementSolver,
    at_least,
    at_most,
)
from repro.datasets import load_dataset
from repro.datasets.registry import DATASET_BUILDERS
from repro.exceptions import ReproError
from repro.relational import QueryExecutor, render_sql


def _parse_group(text: str) -> dict[str, str]:
    conditions: dict[str, str] = {}
    for part in text.split(","):
        if "=" not in part:
            raise argparse.ArgumentTypeError(
                f"invalid group condition {part!r}; expected Attr=Value"
            )
        attribute, _, value = part.partition("=")
        conditions[attribute.strip()] = value.strip()
    if not conditions:
        raise argparse.ArgumentTypeError(f"empty group specification {text!r}")
    return conditions


def parse_constraint(text: str, kind: str) -> CardinalityConstraint:
    """Parse ``BOUND@K:Attr=Value[,Attr=Value]`` into a cardinality constraint."""
    try:
        bound_and_k, _, group_text = text.partition(":")
        bound_text, _, k_text = bound_and_k.partition("@")
        bound = int(bound_text)
        k = int(k_text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"invalid constraint {text!r}; expected BOUND@K:Attr=Value"
        ) from exc
    if not group_text:
        raise argparse.ArgumentTypeError(
            f"constraint {text!r} is missing its group (Attr=Value)"
        )
    conditions = _parse_group(group_text)
    builder = at_least if kind == "lower" else at_most
    return builder(bound, k, **conditions)


def _dataset_parameters(args: argparse.Namespace) -> dict:
    parameters: dict = {}
    if args.rows is not None:
        parameters["num_rows"] = args.rows
    if args.scale_factor is not None:
        parameters["scale_factor"] = args.scale_factor
    if args.seed is not None:
        parameters["seed"] = args.seed
    return parameters


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", required=True, choices=sorted(DATASET_BUILDERS), help="dataset name"
    )
    parser.add_argument("--rows", type=int, default=None, help="override the number of rows")
    parser.add_argument(
        "--scale-factor", type=float, default=None, help="TPC-H scale factor override"
    )
    parser.add_argument("--seed", type=int, default=None, help="generator seed override")


def _command_datasets(_args: argparse.Namespace) -> int:
    print(f"{'name':<14} {'relations':<40} query")
    for name in sorted(DATASET_BUILDERS):
        parameters = {"num_rows": 200} if name in ("law_students", "meps") else {}
        if name == "tpch":
            parameters = {"scale_factor": 0.05}
        bundle = load_dataset(name, **parameters)
        relations = ", ".join(bundle.database.names)
        print(f"{name:<14} {relations:<40} {bundle.query.name}")
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    bundle = load_dataset(args.dataset, **_dataset_parameters(args))
    result = QueryExecutor(bundle.database).evaluate(bundle.query)
    print(render_sql(bundle.query))
    print(f"\nresult size: {len(result)} tuples")
    top = min(args.top, len(result))
    print(f"top-{top}:")
    for rank, row in enumerate(result.projected.rows[:top], start=1):
        print(f"  {rank:3d}. {row}")
    for group_text in args.group or []:
        group = Group(_parse_group(group_text))
        count = result.count_in_top_k(top, group.matches)
        print(f"group {group.label()}: {count} of the top-{top}")
    return 0


def _command_refine(args: argparse.Namespace) -> int:
    bundle = load_dataset(args.dataset, **_dataset_parameters(args))
    constraints: list[CardinalityConstraint] = []
    constraints.extend(parse_constraint(text, "lower") for text in args.at_least or [])
    constraints.extend(parse_constraint(text, "upper") for text in args.at_most or [])
    if not constraints:
        print("error: provide at least one --at-least or --at-most constraint", file=sys.stderr)
        return 2
    if args.method in ("naive", "naive+prov"):
        return _refine_naive(args, bundle, ConstraintSet(constraints))
    solver = RefinementSolver(
        bundle.database,
        bundle.query,
        ConstraintSet(constraints),
        epsilon=args.epsilon,
        distance=args.distance,
        method=args.method,
        backend=args.backend,
        time_limit=args.time_limit,
        executor_backend=args.executor_backend,
        executor_db=args.executor_db,
    )
    result = solver.solve()
    print(result.summary())
    if not result.feasible:
        print("No refinement within the requested maximum deviation exists.")
        return 1
    print("\nrefinement:", result.refinement.describe(bundle.query))
    print("\nrefined query:")
    print(result.sql)
    print("\nconstraint counts in the refined ranking:")
    for label, count in result.constraint_counts.items():
        print(f"  {label}: {count}")
    print("\nmodel statistics:", result.model_statistics)
    return 0


def _refine_naive(args: argparse.Namespace, bundle, constraints: ConstraintSet) -> int:
    """Run one of the exhaustive baselines (optionally sharded across workers)."""
    search_class = NaiveProvenanceSearch if args.method == "naive+prov" else NaiveSearch
    search = search_class(
        bundle.database,
        bundle.query,
        constraints,
        epsilon=args.epsilon,
        distance=args.distance,
        timeout=args.time_limit,
        max_candidates=args.max_candidates,
        jobs=args.jobs,
        executor_backend=args.executor_backend,
        executor_db=args.executor_db,
    )
    result = search.search()
    status = "timeout" if result.timed_out else ("ok" if result.feasible else "infeasible")
    print(
        f"[{result.method}/{result.distance_code}] {status} "
        f"candidates={result.candidates_examined} of {result.space_size} "
        f"setup={result.setup_seconds:.3f}s search={result.search_seconds:.3f}s "
        f"jobs={search.jobs}"
    )
    if not result.feasible:
        print("No refinement within the requested maximum deviation exists.")
        return 1
    print(
        f"distance={result.distance_value:.4g} deviation={result.deviation:.4g}"
    )
    print("\nrefinement:", result.refinement.describe(bundle.query))
    print("\nrefined query:")
    print(render_sql(result.refined_query))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query Refinement for Diverse Top-k Selection (SIGMOD 2024 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the bundled benchmark datasets")

    inspect_parser = subparsers.add_parser("inspect", help="evaluate a dataset's query")
    _add_dataset_arguments(inspect_parser)
    inspect_parser.add_argument("--top", type=int, default=10, help="how many rows to display")
    inspect_parser.add_argument(
        "--group", action="append", help="report the top-k count of a group (Attr=Value)"
    )

    refine_parser = subparsers.add_parser("refine", help="solve a refinement problem")
    _add_dataset_arguments(refine_parser)
    refine_parser.add_argument(
        "--at-least", action="append", metavar="BOUND@K:Attr=Value",
        help="lower-bound cardinality constraint (repeatable)",
    )
    refine_parser.add_argument(
        "--at-most", action="append", metavar="BOUND@K:Attr=Value",
        help="upper-bound cardinality constraint (repeatable)",
    )
    refine_parser.add_argument("--epsilon", type=float, default=0.5, help="maximum deviation")
    refine_parser.add_argument(
        "--distance", default="pred", choices=["pred", "jaccard", "kendall"],
        help="distance measure to minimise",
    )
    refine_parser.add_argument(
        "--method", default="milp+opt",
        choices=["milp", "milp+opt", "naive", "naive+prov"],
        help="algorithm variant (MILP solvers or the exhaustive baselines)",
    )
    refine_parser.add_argument(
        "--backend", default="auto", help="MILP backend (auto, scipy, branch_and_bound)"
    )
    refine_parser.add_argument(
        "--time-limit", type=float, default=None, help="solver time limit in seconds"
    )
    refine_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the naive/naive+prov candidate search "
        "(default: REPRO_SOLVER_JOBS or 1; jobs=1 is the serial path)",
    )
    refine_parser.add_argument(
        "--max-candidates", type=int, default=None,
        help="cap on examined candidates for the naive/naive+prov search",
    )
    refine_parser.add_argument(
        "--executor-backend", default=None, choices=["memory", "sqlite"],
        help="query execution backend (default: REPRO_EXECUTOR_BACKEND or memory)",
    )
    refine_parser.add_argument(
        "--executor-db", default=None, metavar="PATH",
        help="persist the sqlite execution backend to PATH (selects the "
        "sqlite backend unless --executor-backend/REPRO_EXECUTOR_BACKEND "
        "chooses one explicitly; default: REPRO_EXECUTOR_DB)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "executor_db", None) and getattr(args, "executor_backend", None) == "memory":
        parser.error("--executor-db requires the sqlite backend; drop --executor-backend memory")
    handlers = {
        "datasets": _command_datasets,
        "inspect": _command_inspect,
        "refine": _command_refine,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
