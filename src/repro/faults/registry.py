"""The fault-injection registry: every injection point, declared once.

Chaos testing needs failures on demand — a crashed pool worker, a locked or
corrupted sqlite store, a backend that blows up, a solve that crawls — but
production code must pay *nothing* for the capability when it is off.  This
module is the contract between the two:

* :data:`INJECTION_POINTS` declares every site the codebase can fail at,
  with the ``REPRO_FAULT_*`` environment variable that arms it (the
  ``env-var-registry`` lint rule cross-checks each declaration against
  ``analysis/env_registry.py``, so the README's generated table always
  documents every point);
* :func:`fire` is the call the instrumented sites make.  Disarmed (the
  default) it is a dict-emptiness check and a return — no parsing, no
  hashing, no branching on configuration;
* armed, firing is **deterministic**: whether a given ``(point, key,
  attempt)`` fires is a pure function of the configured rate and the
  ``REPRO_FAULT_SEED``, so a chaos run is reproducible and a retried
  operation (a new ``attempt`` for the same ``key``) can be configured to
  succeed after N injected failures.

Arming syntax (the env var's value)::

    REPRO_FAULT_SQLITE_LOCK="1.0"             # every call fails
    REPRO_FAULT_SQLITE_LOCK="0.25"            # a deterministic 25% of keys
    REPRO_FAULT_SQLITE_LOCK="1.0,attempts=2"  # first 2 attempts per key fail
    REPRO_FAULT_SLOW_SOLVE="1.0,seconds=0.4"  # injected latency
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import threading
import time
from dataclasses import dataclass

from repro.exceptions import ReproError, SolverError

#: Kinds of failure an injection point can produce.
KIND_CRASH = "crash"  # hard process death (os._exit) — pool workers only
KIND_RAISE = "raise"  # raise the registered exception
KIND_SLEEP = "sleep"  # inject latency


@dataclass(frozen=True)
class InjectionPoint:
    """One declared place the codebase can be made to fail.

    ``env`` must be a declared ``REPRO_*`` name (the lint rule enforces it);
    ``site`` documents where the instrumented call lives so the chaos suite
    (and a reader of the generated docs) can find it.
    """

    name: str
    env: str
    kind: str
    site: str
    description: str
    exception: type[BaseException] | None = None
    message: str = ""


INJECTION_POINTS: tuple[InjectionPoint, ...] = (
    InjectionPoint(
        name="worker-crash",
        env="REPRO_FAULT_WORKER_CRASH",
        kind=KIND_CRASH,
        site="core/parallel.py:_run_shard (pool workers only)",
        description="a sweep-pool worker dies mid-shard with os._exit",
    ),
    InjectionPoint(
        name="sqlite-lock",
        env="REPRO_FAULT_SQLITE_LOCK",
        kind=KIND_RAISE,
        site="relational/sqlite_backend.py:pushdown access",
        description="a store access raises sqlite3.OperationalError: locked",
        exception=sqlite3.OperationalError,
        message="database is locked [injected]",
    ),
    InjectionPoint(
        name="sqlite-corrupt",
        env="REPRO_FAULT_SQLITE_CORRUPT",
        kind=KIND_RAISE,
        site="relational/sqlite_backend.py:pushdown access",
        description="a store access raises sqlite3.DatabaseError: malformed",
        exception=sqlite3.DatabaseError,
        message="database disk image is malformed [injected]",
    ),
    InjectionPoint(
        name="backend-raise",
        env="REPRO_FAULT_BACKEND_RAISE",
        kind=KIND_RAISE,
        site="milp/model.py:Model.solve",
        description="the MILP backend raises SolverError before solving",
        exception=SolverError,
        message="MILP backend failure [injected]",
    ),
    InjectionPoint(
        name="slow-solve",
        env="REPRO_FAULT_SLOW_SOLVE",
        kind=KIND_SLEEP,
        site="milp/model.py:Model.solve",
        description="the MILP backend sleeps before solving",
    ),
)

_POINTS_BY_NAME: dict[str, InjectionPoint] = {
    point.name: point for point in INJECTION_POINTS
}

#: Seed that makes rate-based firing decisions reproducible.
_SEED_ENV = "REPRO_FAULT_SEED"

#: Default injected latency of a ``sleep``-kind point (seconds).
_DEFAULT_SLEEP_S = 0.2


@dataclass(frozen=True)
class FaultConfig:
    """The parsed arming of one injection point."""

    rate: float
    #: Attempts (per key) that may fire; later retries of the same key pass.
    #: ``None`` = every attempt fires (permanent fault).
    attempts: int | None = None
    #: Injected latency for ``sleep``-kind points.
    seconds: float = _DEFAULT_SLEEP_S


def _parse_config(env: str, raw: str) -> FaultConfig:
    parts = [part.strip() for part in raw.split(",") if part.strip()]
    if not parts:
        raise ReproError(f"empty fault spec in {env}")
    try:
        rate = float(parts[0])
    except ValueError:
        raise ReproError(
            f"invalid {env}={raw!r}: the first field must be a rate in [0, 1]"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ReproError(f"invalid {env}={raw!r}: rate must be within [0, 1]")
    attempts: int | None = None
    seconds = _DEFAULT_SLEEP_S
    for part in parts[1:]:
        name, equals, value = part.partition("=")
        if not equals:
            raise ReproError(
                f"invalid {env}={raw!r}: expected name=value, got {part!r}"
            )
        name = name.strip()
        try:
            if name == "attempts":
                attempts = int(value)
            elif name == "seconds":
                seconds = float(value)
            else:
                raise ReproError(
                    f"invalid {env}={raw!r}: unknown parameter {name!r} "
                    "(use attempts= or seconds=)"
                )
        except ValueError:
            raise ReproError(
                f"invalid {env}={raw!r}: bad value for {name!r}"
            ) from None
    return FaultConfig(rate=rate, attempts=attempts, seconds=seconds)


class FaultPlan:
    """The armed injection points of this process, read from the environment.

    One module-level instance (:data:`PLAN`) is consulted by every site;
    :meth:`refresh` re-reads the environment (tests arm and disarm faults at
    runtime; servers refresh once at startup).  Counters make chaos runs
    observable: ``fired`` maps point name to the number of injections.
    """

    def __init__(self) -> None:
        self._configs: dict[str, FaultConfig] = {}
        self._seed = 0
        self._lock = threading.Lock()
        self.fired: dict[str, int] = {}
        self.refresh()

    def refresh(self) -> "FaultPlan":
        configs: dict[str, FaultConfig] = {}
        for point in INJECTION_POINTS:
            raw = os.environ.get(point.env)
            if raw is None or raw == "":
                continue
            config = _parse_config(point.env, raw)
            if config.rate > 0.0:
                configs[point.name] = config
        seed_raw = os.environ.get(_SEED_ENV)
        with self._lock:
            self._configs = configs
            self._seed = int(seed_raw) if seed_raw else 0
            self.fired = {}
        return self

    @property
    def armed(self) -> bool:
        return bool(self._configs)

    def armed_points(self) -> dict[str, FaultConfig]:
        with self._lock:
            return dict(self._configs)

    # -- firing ---------------------------------------------------------------------

    def _decides_to_fire(
        self, name: str, config: FaultConfig, key: object, attempt: int
    ) -> bool:
        if config.attempts is not None and attempt >= config.attempts:
            return False
        if config.rate >= 1.0:
            return True
        digest = hashlib.sha256(
            repr((self._seed, name, key)).encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < config.rate

    def should_fire(self, name: str, key: object = 0, attempt: int = 0) -> bool:
        """Whether the point would fire for ``(key, attempt)`` — no side effects."""
        config = self._configs.get(name)
        if config is None:
            return False
        return self._decides_to_fire(name, config, key, attempt)

    def fire(self, name: str, key: object = 0, attempt: int = 0) -> None:
        """Perform the registered failure if the point decides to fire.

        ``raise``-kind points raise their registered exception; ``sleep``
        points inject latency; ``crash``-kind points call ``os._exit`` — the
        caller is responsible for only placing crash sites inside disposable
        worker processes.
        """
        config = self._configs.get(name)
        if config is None:
            return
        if not self._decides_to_fire(name, config, key, attempt):
            return
        point = _POINTS_BY_NAME[name]
        with self._lock:
            self.fired[name] = self.fired.get(name, 0) + 1
        if point.kind == KIND_SLEEP:
            time.sleep(config.seconds)
            return
        if point.kind == KIND_CRASH:
            # A hard death, not an exception: models SIGKILL/OOM on a pool
            # worker.  os._exit skips finally blocks and atexit handlers.
            os._exit(17)
        assert point.exception is not None
        raise point.exception(point.message)


#: The process-wide plan every instrumented site consults.
PLAN = FaultPlan()


def refresh() -> FaultPlan:
    """Re-read the ``REPRO_FAULT_*`` environment (tests, server startup)."""
    return PLAN.refresh()


def armed() -> bool:
    """Whether any injection point is armed (the zero-overhead fast path)."""
    return PLAN.armed


def fire(name: str, key: object = 0, attempt: int = 0) -> None:
    """Fire ``name`` if armed; a no-op (one bool check) otherwise."""
    if not PLAN.armed:
        return
    PLAN.fire(name, key=key, attempt=attempt)


def should_fire(name: str, key: object = 0, attempt: int = 0) -> bool:
    if not PLAN.armed:
        return False
    return PLAN.should_fire(name, key=key, attempt=attempt)


__all__ = [
    "INJECTION_POINTS",
    "KIND_CRASH",
    "KIND_RAISE",
    "KIND_SLEEP",
    "FaultConfig",
    "FaultPlan",
    "InjectionPoint",
    "PLAN",
    "armed",
    "fire",
    "refresh",
    "should_fire",
]
