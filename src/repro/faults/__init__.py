"""Deterministic fault injection for chaos testing (``REPRO_FAULT_*``)."""

from repro.faults.registry import (
    INJECTION_POINTS,
    PLAN,
    FaultConfig,
    FaultPlan,
    InjectionPoint,
    armed,
    fire,
    refresh,
    should_fire,
)

__all__ = [
    "INJECTION_POINTS",
    "PLAN",
    "FaultConfig",
    "FaultPlan",
    "InjectionPoint",
    "armed",
    "fire",
    "refresh",
    "should_fire",
]
