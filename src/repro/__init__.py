"""repro — a reproduction of "Query Refinement for Diverse Top-k Selection".

The package is organised as:

* :mod:`repro.milp` — mixed-integer linear programming substrate (modeling
  layer + exact solvers).
* :mod:`repro.relational` — in-memory relational engine for SPJ queries with
  ``ORDER BY`` / ``DISTINCT``, plus a sqlite backend.
* :mod:`repro.provenance` — data annotations (lineage) over query results.
* :mod:`repro.datasets` — the running example and synthetic stand-ins for the
  paper's benchmark datasets (Astronauts, Law Students, MEPS, TPC-H).
* :mod:`repro.core` — the paper's contribution: cardinality constraints over
  top-k prefixes, refinement distance measures, the MILP formulation, the
  Section 4 optimizations, and baseline algorithms.

The high-level entry point is :class:`repro.core.RefinementSolver`; see
``examples/quickstart.py``.
"""

from repro._version import __version__

__all__ = ["__version__"]
