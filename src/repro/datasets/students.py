"""The paper's running example: the scholarship scenario (Tables 1 and 2).

The data reproduces the paper exactly: fourteen students with gender, family
income level, GPA and SAT score (Table 1) and their extracurricular
activities (Table 2).  The *scholarship query* selects students who
participated in the robotics club with GPA >= 3.7 and ranks them by SAT score.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.relational.predicates import CategoricalPredicate, Conjunction, NumericalPredicate
from repro.relational.query import OrderBy, SPJQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.schema import categorical, numerical

# Table 1 of the paper: ID, Gender, Income, GPA, SAT.
_STUDENTS = [
    ("t1", "M", "Medium", 3.7, 1590),
    ("t2", "F", "Low", 3.8, 1580),
    ("t3", "F", "Low", 3.6, 1570),
    ("t4", "M", "High", 3.8, 1560),
    ("t5", "F", "Medium", 3.6, 1550),
    ("t6", "F", "Low", 3.7, 1550),
    ("t7", "M", "Low", 3.7, 1540),
    ("t8", "F", "High", 3.9, 1530),
    ("t9", "F", "Medium", 3.8, 1530),
    ("t10", "M", "High", 3.7, 1520),
    ("t11", "F", "Low", 3.8, 1490),
    ("t12", "M", "Medium", 4.0, 1480),
    ("t13", "M", "High", 3.5, 1430),
    ("t14", "F", "Low", 3.7, 1410),
]

# Table 2 of the paper: ID, Activity.  Activities: robotics (RB), Science
# Olympiad (SO), Math Olympiad (MO), game development (GD), STEM tutoring (TU).
_ACTIVITIES = [
    ("t1", "SO"),
    ("t2", "SO"),
    ("t3", "GD"),
    ("t4", "RB"),
    ("t4", "TU"),
    ("t5", "MO"),
    ("t6", "SO"),
    ("t7", "RB"),
    ("t8", "RB"),
    ("t8", "TU"),
    ("t10", "RB"),
    ("t11", "RB"),
    ("t12", "RB"),
    ("t14", "RB"),
]


def students_table() -> Relation:
    """Table 1 (Students) as a :class:`Relation`."""
    schema = Schema(
        [
            categorical("ID"),
            categorical("Gender"),
            categorical("Income"),
            numerical("GPA"),
            numerical("SAT"),
        ]
    )
    return Relation("Students", schema, _STUDENTS)


def activities_table() -> Relation:
    """Table 2 (Activities) as a :class:`Relation`."""
    schema = Schema([categorical("ID"), categorical("Activity")])
    return Relation("Activities", schema, _ACTIVITIES)


def students_database() -> Database:
    """Both running-example tables bundled into a :class:`Database`."""
    return Database([students_table(), activities_table()])


def scholarship_query() -> SPJQuery:
    """The scholarship query of Example 1.1.

    ``SELECT DISTINCT ID, Gender, Income FROM Students NATURAL JOIN Activities
    WHERE GPA >= 3.7 AND Activity = 'RB' ORDER BY SAT DESC``
    """
    where = Conjunction(
        [
            NumericalPredicate("GPA", ">=", 3.7),
            CategoricalPredicate("Activity", {"RB"}),
        ]
    )
    return SPJQuery(
        tables=["Students", "Activities"],
        where=where,
        order_by=OrderBy("SAT", descending=True),
        select=["ID", "Gender", "Income"],
        distinct=True,
        name="scholarship",
    )
