"""Synthetic stand-in for the LSAC Law Students dataset.

The real dataset (Wightman's LSAC National Longitudinal Bar Passage Study,
also used in the counterfactual-fairness literature) has 21,790 students and
8 attributes.  The paper's query ``Q_L`` selects students from region ``'GL'``
with ``3.5 <= GPA <= 4.0`` and ranks them by LSAT score; constraints are on
``Sex`` (roughly balanced) and ``Race`` (White is the large majority, Black
and Asian are minorities — the imbalance is what makes the constraints bind).

Structural statistics reproduced by the generator:

* 21,790 rows by default (configurable for the scaling experiment);
* categorical predicate attribute ``Region`` with a moderate domain
  (the real data distinguishes 9 regions), so the refinement space is much
  smaller than Astronauts but larger than MEPS / TPC-H;
* numerical predicate attribute ``GPA`` in [1.5, 4.2];
* ranking attribute ``LSAT`` in [11, 48] (the LSAC scale of the study);
* group shares: ≈ 44% female; ≈ 84% White, 6% Black, 4% Asian, 6% other.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.relational.database import Database
from repro.relational.predicates import CategoricalPredicate, Conjunction, NumericalPredicate
from repro.relational.query import OrderBy, SPJQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema, categorical, numerical

_REGIONS = ["GL", "NE", "SC", "SE", "MW", "FW", "Mt", "MA", "NW"]
_REGION_WEIGHTS = [0.18, 0.14, 0.12, 0.14, 0.11, 0.12, 0.05, 0.09, 0.05]

_RACES = ["White", "Black", "Asian", "Hispanic", "Other"]
_RACE_WEIGHTS = [0.84, 0.06, 0.04, 0.04, 0.02]


def law_students_database(num_rows: int = 21_790, seed: int = 11) -> Database:
    """Generate the synthetic Law Students database."""
    if num_rows <= 0:
        raise DatasetError("num_rows must be positive")
    rng = np.random.default_rng(seed)

    region = rng.choice(_REGIONS, size=num_rows, p=_REGION_WEIGHTS)
    race = rng.choice(_RACES, size=num_rows, p=_RACE_WEIGHTS)
    sex = np.where(rng.random(num_rows) < 0.44, "F", "M")
    # Undergraduate GPA: clipped normal around 3.2, reported at one decimal as
    # in the LSAC study (this keeps the number of lineage classes in the same
    # range the paper reports for Law Students, roughly 240-290).
    gpa = np.clip(np.round(rng.normal(3.22, 0.35, num_rows), 1), 1.5, 4.2)
    # LSAT on the study's 11-48 scale, mildly correlated with GPA.
    lsat = np.clip(
        np.round(rng.normal(36.0, 5.5, num_rows) + (gpa - 3.2) * 2.0, 1), 11.0, 48.0
    )
    # First-year average, correlated with LSAT.
    zfya = np.round(rng.normal(0.0, 0.9, num_rows) + (lsat - 36.0) * 0.04, 2)
    part_time = np.where(rng.random(num_rows) < 0.1, "Yes", "No")
    bar_passed = np.where(rng.random(num_rows) < 0.89, "Yes", "No")

    rows = [
        (
            f"student_{i}",
            str(region[i]),
            str(sex[i]),
            str(race[i]),
            float(gpa[i]),
            float(lsat[i]),
            float(zfya[i]),
            str(part_time[i]),
            str(bar_passed[i]),
        )
        for i in range(num_rows)
    ]
    schema = Schema(
        [
            categorical("ID"),
            categorical("Region"),
            categorical("Sex"),
            categorical("Race"),
            numerical("GPA"),
            numerical("LSAT"),
            numerical("ZFYA"),
            categorical("PartTime"),
            categorical("BarPassed"),
        ]
    )
    return Database([Relation("LawStudents", schema, rows)])


def law_students_query() -> SPJQuery:
    """The paper's ``Q_L``.

    ``SELECT * FROM LawStudents WHERE Region = 'GL' AND GPA <= 4.0 AND
    GPA >= 3.5 ORDER BY LSAT DESC``
    """
    where = Conjunction(
        [
            CategoricalPredicate("Region", {"GL"}),
            NumericalPredicate("GPA", "<=", 4.0),
            NumericalPredicate("GPA", ">=", 3.5),
        ]
    )
    return SPJQuery(
        tables=["LawStudents"],
        where=where,
        order_by=OrderBy("LSAT", descending=True),
        name="Q_L",
    )


def law_students_erica_query() -> SPJQuery:
    """The ``Q_L`` variant used in the Section 5.3 comparison with Erica.

    Same query, but with the GPA lower bound relaxed to 3.0 and no upper
    bound removed (the paper keeps ``Region = 'GL' AND GPA >= 3.0``).
    """
    where = Conjunction(
        [
            CategoricalPredicate("Region", {"GL"}),
            NumericalPredicate("GPA", ">=", 3.0),
        ]
    )
    return SPJQuery(
        tables=["LawStudents"],
        where=where,
        order_by=OrderBy("LSAT", descending=True),
        name="Q_L_erica",
    )
