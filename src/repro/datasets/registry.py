"""Name-based access to the benchmark datasets and their queries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets.astronauts import astronauts_database, astronauts_query
from repro.datasets.law_students import law_students_database, law_students_query
from repro.datasets.meps import meps_database, meps_query
from repro.datasets.students import scholarship_query, students_database
from repro.datasets.tpch import tpch_database, tpch_q5
from repro.exceptions import DatasetError
from repro.relational.database import Database
from repro.relational.query import SPJQuery


@dataclass(frozen=True)
class DatasetBundle:
    """A database together with the paper's query over it."""

    name: str
    database: Database
    query: SPJQuery


def _build_students(**_kwargs) -> DatasetBundle:
    return DatasetBundle("students", students_database(), scholarship_query())


def _build_astronauts(num_rows: int = 357, seed: int = 7, **_kwargs) -> DatasetBundle:
    return DatasetBundle(
        "astronauts", astronauts_database(num_rows=num_rows, seed=seed), astronauts_query()
    )


def _build_law_students(num_rows: int = 21_790, seed: int = 11, **_kwargs) -> DatasetBundle:
    return DatasetBundle(
        "law_students",
        law_students_database(num_rows=num_rows, seed=seed),
        law_students_query(),
    )


def _build_meps(num_rows: int = 34_655, seed: int = 13, **_kwargs) -> DatasetBundle:
    return DatasetBundle("meps", meps_database(num_rows=num_rows, seed=seed), meps_query())


def _build_tpch(scale_factor: float = 1.0, seed: int = 17, **_kwargs) -> DatasetBundle:
    return DatasetBundle(
        "tpch", tpch_database(scale_factor=scale_factor, seed=seed), tpch_q5()
    )


DATASET_BUILDERS: dict[str, Callable[..., DatasetBundle]] = {
    "students": _build_students,
    "astronauts": _build_astronauts,
    "law_students": _build_law_students,
    "meps": _build_meps,
    "tpch": _build_tpch,
}


def load_dataset(name: str, **parameters) -> DatasetBundle:
    """Build the named dataset (and its paper query) with optional size overrides."""
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_BUILDERS)}"
        ) from None
    return builder(**parameters)
