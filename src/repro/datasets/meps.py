"""Synthetic stand-in for the MEPS (Medical Expenditure Panel Survey) dataset.

The real HC-192 file has 34,655 individuals and 1,941 attributes.  The paper's
query ``Q_M`` filters on ``Age > 22 AND "Family Size" >= 4`` and ranks by a
*utilization* score (office-based visits + ER visits + in-patient nights +
home-health visits), following Yang et al.'s fairness-in-ranking work.

Only a small slice of the schema is relevant to the query and constraints, so
the generator produces that slice:

* 34,655 rows by default (configurable for the scaling experiment);
* numerical predicate attributes ``Age`` and ``Family Size`` — the query has
  *no categorical predicate*, so the refinement space is small (this is why
  the Naive+prov baseline is competitive on MEPS in Figure 3);
* constraint attributes ``Sex`` (≈ 53% female) and ``Race`` (White majority,
  Black and Asian minorities);
* the ``Utilization`` ranking attribute is the sum of four utilization
  components, each heavy-tailed with many zeros, as in the real survey.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.relational.database import Database
from repro.relational.predicates import Conjunction, NumericalPredicate
from repro.relational.query import OrderBy, SPJQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema, categorical, numerical

_RACES = ["White", "Black", "Asian", "Other"]
_RACE_WEIGHTS = [0.66, 0.19, 0.06, 0.09]

_REGIONS = ["Northeast", "Midwest", "South", "West"]
_INSURANCE = ["Private", "Public", "Uninsured"]
_INSURANCE_WEIGHTS = [0.55, 0.33, 0.12]


def meps_database(num_rows: int = 34_655, seed: int = 13) -> Database:
    """Generate the synthetic MEPS database."""
    if num_rows <= 0:
        raise DatasetError("num_rows must be positive")
    rng = np.random.default_rng(seed)

    sex = np.where(rng.random(num_rows) < 0.53, "F", "M")
    race = rng.choice(_RACES, size=num_rows, p=_RACE_WEIGHTS)
    region = rng.choice(_REGIONS, size=num_rows)
    insurance = rng.choice(_INSURANCE, size=num_rows, p=_INSURANCE_WEIGHTS)
    age = rng.integers(0, 86, size=num_rows)
    family_size = 1 + rng.binomial(7, 0.3, size=num_rows)
    # Utilization components: mostly zero, heavy tailed, increasing with age.
    office_visits = rng.negative_binomial(1, 0.12, size=num_rows) * (
        0.5 + age / 120.0
    )
    er_visits = rng.negative_binomial(1, 0.55, size=num_rows)
    inpatient_nights = rng.negative_binomial(1, 0.7, size=num_rows) * 2
    home_health = rng.negative_binomial(1, 0.9, size=num_rows) * 5
    office_visits = np.floor(office_visits)
    utilization = office_visits + er_visits + inpatient_nights + home_health

    rows = [
        (
            f"person_{i}",
            str(sex[i]),
            str(race[i]),
            str(region[i]),
            str(insurance[i]),
            int(age[i]),
            int(family_size[i]),
            float(office_visits[i]),
            float(er_visits[i]),
            float(inpatient_nights[i]),
            float(home_health[i]),
            float(utilization[i]),
        )
        for i in range(num_rows)
    ]
    schema = Schema(
        [
            categorical("ID"),
            categorical("Sex"),
            categorical("Race"),
            categorical("Region"),
            categorical("Insurance"),
            numerical("Age"),
            numerical("Family Size"),
            numerical("OfficeVisits"),
            numerical("ERVisits"),
            numerical("InpatientNights"),
            numerical("HomeHealthVisits"),
            numerical("Utilization"),
        ]
    )
    return Database([Relation("MEPS", schema, rows)])


def meps_query() -> SPJQuery:
    """The paper's ``Q_M``.

    ``SELECT * FROM MEPS WHERE Age > 22 AND "Family Size" >= 4
    ORDER BY Utilization DESC``
    """
    where = Conjunction(
        [
            NumericalPredicate("Age", ">", 22),
            NumericalPredicate("Family Size", ">=", 4),
        ]
    )
    return SPJQuery(
        tables=["MEPS"],
        where=where,
        order_by=OrderBy("Utilization", descending=True),
        name="Q_M",
    )
