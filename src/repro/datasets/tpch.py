"""A miniature TPC-H generator and the de-dated Q5 used in the paper.

The paper runs TPC-H at scale factor 1 (~1 GB) and uses Query 5 with the date
predicates removed, ranking by revenue, with cardinality constraints on the
order priority and market segment of the orders in the top-k.  Reproducing
dbgen byte-for-byte is unnecessary for the algorithmic behaviour; what matters
is the *shape* the paper highlights:

* Q5 joins several relations (REGION ⋈ NATION ⋈ CUSTOMER ⋈ ORDERS), so the
  setup phase (computing ``~Q(D)`` and its lineage) involves non-trivial join
  processing and dominates the total time;
* the only selection predicate is ``Region = 'ASIA'`` — a categorical
  attribute with just five values — so there are exactly **5 lineage
  equivalence classes** and the solver's share of the runtime is tiny;
* constraint attributes are ``OrderPriority`` (five values) and ``MktSegment``
  (five values).

Revenue is attached to each order (the real Q5 aggregates
``l_extendedprice * (1 - l_discount)`` per order; the generator samples that
aggregate directly so the query stays inside the paper's SPJ class).
A ``LINEITEM`` relation is still generated — with per-order revenue shares —
so that examples can show the full star schema and so the data size scales
with the scale factor the way TPC-H does.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.relational.database import Database
from repro.relational.predicates import CategoricalPredicate, Conjunction
from repro.relational.query import OrderBy, SPJQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema, categorical, numerical

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

_NATIONS = {
    "AFRICA": ["ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"],
    "AMERICA": ["ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"],
    "ASIA": ["CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"],
    "EUROPE": ["FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"],
    "MIDDLE EAST": ["EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"],
}

_MKT_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]

# Default row counts at "scale factor 1" of this miniature benchmark.  They are
# deliberately far below real TPC-H so the full benchmark suite runs on a
# laptop, but they scale linearly with ``scale_factor`` exactly like dbgen.
_BASE_CUSTOMERS = 1_500
_BASE_ORDERS = 6_000
_LINEITEMS_PER_ORDER = 4


def tpch_database(scale_factor: float = 1.0, seed: int = 17) -> Database:
    """Generate the miniature TPC-H database at the given scale factor."""
    if scale_factor <= 0:
        raise DatasetError("scale_factor must be positive")
    rng = np.random.default_rng(seed)

    region_rows = [(region,) for region in _REGIONS]
    region_schema = Schema([categorical("Region")])

    nation_rows = [
        (nation, region) for region in _REGIONS for nation in _NATIONS[region]
    ]
    nation_schema = Schema([categorical("Nation"), categorical("Region")])

    num_customers = max(10, int(_BASE_CUSTOMERS * scale_factor))
    num_orders = max(20, int(_BASE_ORDERS * scale_factor))

    nations_flat = [nation for region in _REGIONS for nation in _NATIONS[region]]
    customer_nation = rng.choice(nations_flat, size=num_customers)
    customer_segment = rng.choice(_MKT_SEGMENTS, size=num_customers)
    customer_rows = [
        (f"cust_{i}", str(customer_nation[i]), str(customer_segment[i]),
         float(np.round(rng.uniform(-999.99, 9999.99), 2)))
        for i in range(num_customers)
    ]
    customer_schema = Schema(
        [
            categorical("CustKey"),
            categorical("Nation"),
            categorical("MktSegment"),
            numerical("AcctBal"),
        ]
    )

    order_customer = rng.integers(0, num_customers, size=num_orders)
    order_priority = rng.choice(_ORDER_PRIORITIES, size=num_orders)
    # Per-order revenue: the aggregate Q5 would compute from its lineitems.
    order_revenue = np.round(rng.gamma(shape=3.0, scale=40_000.0, size=num_orders), 2)
    order_rows = [
        (
            f"order_{i}",
            f"cust_{order_customer[i]}",
            str(order_priority[i]),
            float(order_revenue[i]),
        )
        for i in range(num_orders)
    ]
    order_schema = Schema(
        [
            categorical("OrderKey"),
            categorical("CustKey"),
            categorical("OrderPriority"),
            numerical("Revenue"),
        ]
    )

    lineitem_rows = []
    for i in range(num_orders):
        shares = rng.dirichlet(np.ones(_LINEITEMS_PER_ORDER))
        for j in range(_LINEITEMS_PER_ORDER):
            extended_price = float(np.round(order_revenue[i] * shares[j], 2))
            discount = float(np.round(rng.uniform(0.0, 0.1), 2))
            lineitem_rows.append(
                (
                    f"order_{i}",
                    f"line_{i}_{j}",
                    extended_price,
                    discount,
                    float(np.round(extended_price * (1.0 - discount), 2)),
                )
            )
    lineitem_schema = Schema(
        [
            categorical("OrderKey"),
            categorical("LineKey"),
            numerical("ExtendedPrice"),
            numerical("Discount"),
            numerical("NetPrice"),
        ]
    )

    supplier_rows = [
        (f"supp_{i}", str(rng.choice(nations_flat)))
        for i in range(max(5, int(100 * scale_factor)))
    ]
    supplier_schema = Schema([categorical("SuppKey"), categorical("Nation")])

    return Database(
        [
            Relation("Region", region_schema, region_rows),
            Relation("Nation", nation_schema, nation_rows),
            Relation("Customer", customer_schema, customer_rows),
            Relation("Orders", order_schema, order_rows),
            Relation("Lineitem", lineitem_schema, lineitem_rows),
            Relation("Supplier", supplier_schema, supplier_rows),
        ]
    )


def tpch_q5() -> SPJQuery:
    """TPC-H Q5 with its date predicates removed, as used in the paper.

    ``SELECT * FROM Orders NATURAL JOIN Customer NATURAL JOIN Nation NATURAL
    JOIN Region WHERE Region = 'ASIA' ORDER BY Revenue DESC``
    """
    where = Conjunction([CategoricalPredicate("Region", {"ASIA"})])
    return SPJQuery(
        tables=["Orders", "Customer", "Nation", "Region"],
        where=where,
        order_by=OrderBy("Revenue", descending=True),
        name="Q5",
    )
