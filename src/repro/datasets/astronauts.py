"""Synthetic stand-in for the NASA Astronauts dataset.

The real dataset (Kaggle ``nasa/astronaut-yearbook``) has 357 astronauts and
19 attributes; the paper's query ``Q_A`` filters on ``"Graduate Major" =
'Physics'`` and ``1 <= "Space Walks" <= 3`` and ranks by ``"Space Flight
(hrs)"``.  The properties that matter to the algorithm are:

* 357 rows;
* a categorical predicate attribute (``Graduate Major``) with a *large*
  domain (114 distinct values) — this is what blows up the refinement space
  and makes the exhaustive baselines time out;
* a numerical predicate attribute (``Space Walks``) with a small integer
  domain;
* constraint attributes ``Gender`` (≈ 15% female, mirroring the real data)
  and ``Status`` (Active / Management / Retired / Deceased);
* many lineage classes, each holding only a handful of tuples (the paper
  notes fewer than 10 per class), which limits the relevancy optimization.

The generator reproduces those properties deterministically from a seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.relational.database import Database
from repro.relational.predicates import CategoricalPredicate, Conjunction, NumericalPredicate
from repro.relational.query import OrderBy, SPJQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema, categorical, numerical

_MAJOR_STEMS = [
    "Physics", "Aerospace Engineering", "Mechanical Engineering", "Electrical Engineering",
    "Chemistry", "Mathematics", "Astronomy", "Aeronautics", "Medicine", "Biology",
    "Geology", "Oceanography", "Computer Science", "Physiology", "Astrophysics",
    "Materials Science", "Chemical Engineering", "Civil Engineering", "Nuclear Engineering",
]

_STATUSES = ["Active", "Management", "Retired", "Deceased"]
_STATUS_WEIGHTS = [0.22, 0.12, 0.52, 0.14]

_MILITARY_RANKS = ["Colonel", "Captain", "Commander", "Lieutenant Colonel", "Civilian"]
_UNDERGRADUATE_MAJORS = [
    "Physics", "Aerospace Engineering", "Mechanical Engineering", "Mathematics",
    "Chemistry", "Electrical Engineering", "Naval Sciences",
]


def _graduate_major_domain(count: int) -> list[str]:
    """Build a domain of ``count`` distinct graduate majors.

    The real dataset has 114 distinct values; we synthesise them from a small
    set of stems plus specialisations so the names stay readable.
    """
    majors: list[str] = []
    specialisations = ["", " (MS)", " (PhD)", " & Applied Science", " Technology", " Systems"]
    for stem in _MAJOR_STEMS:
        for suffix in specialisations:
            majors.append(stem + suffix)
            if len(majors) == count:
                return majors
    return majors[:count]


def astronauts_database(
    num_rows: int = 357,
    num_majors: int = 114,
    female_share: float = 0.15,
    seed: int = 7,
) -> Database:
    """Generate the synthetic Astronauts database.

    Parameters mirror the structural statistics of the real dataset; changing
    ``num_rows`` is how the Figure 8 scaling experiment produces larger copies.
    """
    if num_rows <= 0:
        raise DatasetError("num_rows must be positive")
    if not 0.0 <= female_share <= 1.0:
        raise DatasetError("female_share must be within [0, 1]")
    rng = np.random.default_rng(seed)
    majors = _graduate_major_domain(num_majors)
    # Physics is over-represented among the majors (it is the query's target
    # value) so the original query returns a reasonable number of tuples.
    major_weights = np.ones(len(majors))
    major_weights[0] = 12.0
    major_weights /= major_weights.sum()

    rows = []
    for index in range(num_rows):
        gender = "F" if rng.random() < female_share else "M"
        status = _STATUSES[rng.choice(len(_STATUSES), p=_STATUS_WEIGHTS)]
        graduate_major = majors[rng.choice(len(majors), p=major_weights)]
        undergraduate_major = _UNDERGRADUATE_MAJORS[
            rng.integers(0, len(_UNDERGRADUATE_MAJORS))
        ]
        military_rank = _MILITARY_RANKS[rng.integers(0, len(_MILITARY_RANKS))]
        space_walks = int(rng.binomial(7, 0.25))
        space_flights = int(rng.integers(0, 7))
        # Flight hours: heavy-tailed, correlated with the number of flights.
        space_flight_hours = float(
            np.round(space_flights * rng.gamma(shape=2.0, scale=400.0), 1)
        )
        space_walk_hours = float(np.round(space_walks * rng.gamma(1.5, 4.0), 1))
        year = int(rng.integers(1959, 2010))
        group = int((year - 1959) // 4 + 1)
        alma_mater = f"University {int(rng.integers(1, 60))}"
        rows.append(
            (
                f"astro_{index}",
                gender,
                year,
                group,
                status,
                alma_mater,
                undergraduate_major,
                graduate_major,
                military_rank,
                space_flights,
                space_flight_hours,
                space_walks,
                space_walk_hours,
            )
        )

    schema = Schema(
        [
            categorical("Name"),
            categorical("Gender"),
            numerical("Year"),
            numerical("Group"),
            categorical("Status"),
            categorical("Alma Mater"),
            categorical("Undergraduate Major"),
            categorical("Graduate Major"),
            categorical("Military Rank"),
            numerical("Space Flights"),
            numerical("Space Flight (hr)"),
            numerical("Space Walks"),
            numerical("Space Walks (hr)"),
        ]
    )
    return Database([Relation("Astronauts", schema, rows)])


def astronauts_query() -> SPJQuery:
    """The paper's ``Q_A``.

    ``SELECT * FROM Astronauts WHERE "Space Walks" <= 3 AND "Space Walks" >= 1
    AND "Graduate Major" = 'Physics' ORDER BY "Space Flight (hr)" DESC``
    """
    where = Conjunction(
        [
            CategoricalPredicate("Graduate Major", {"Physics"}),
            NumericalPredicate("Space Walks", "<=", 3),
            NumericalPredicate("Space Walks", ">=", 1),
        ]
    )
    return SPJQuery(
        tables=["Astronauts"],
        where=where,
        order_by=OrderBy("Space Flight (hr)", descending=True),
        name="Q_A",
    )
