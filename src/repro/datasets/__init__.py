"""Benchmark datasets.

The paper evaluates on three real datasets (NASA Astronauts, LSAC Law
Students, MEPS) plus TPC-H, and scales them up with SDV.  Because this
reproduction runs offline, each dataset is replaced by a deterministic
synthetic generator calibrated to the structural properties that drive the
algorithm's behaviour: schema, number of rows, domain sizes of the predicate
attributes (and hence number of lineage classes and size of the refinement
space), group proportions, and the distribution of the ranking attribute.

The running example of the paper (Tables 1 and 2) is reproduced exactly in
:mod:`repro.datasets.students`.
"""

from repro.datasets.astronauts import astronauts_database, astronauts_query
from repro.datasets.law_students import law_students_database, law_students_query
from repro.datasets.meps import meps_database, meps_query
from repro.datasets.registry import DATASET_BUILDERS, load_dataset
from repro.datasets.students import (
    activities_table,
    scholarship_query,
    students_database,
    students_table,
)
from repro.datasets.synthesizer import TableSynthesizer, scale_database
from repro.datasets.tpch import tpch_database, tpch_q5

__all__ = [
    "DATASET_BUILDERS",
    "TableSynthesizer",
    "activities_table",
    "astronauts_database",
    "astronauts_query",
    "law_students_database",
    "law_students_query",
    "load_dataset",
    "meps_database",
    "meps_query",
    "scale_database",
    "scholarship_query",
    "students_database",
    "students_table",
    "tpch_database",
    "tpch_q5",
]
