"""A miniature "Synthetic Data Vault": fit a relation, sample scaled copies.

The paper uses SDV to learn the distribution of each real dataset and then
synthesise larger versions for the Figure 8 scaling experiment.  This module
provides the same capability with a deliberately simple model:

* categorical columns are sampled from their empirical distribution;
* numerical columns are sampled from the empirical quantile function with a
  small uniform perturbation between adjacent observed values (so new values
  appear, creating new lineage classes, just as SDV does);
* one designated "identifier" column can be regenerated to stay unique.

That level of fidelity preserves the properties the experiment measures:
domain sizes, group proportions and the growth in the number of lineage
classes with the data size.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import AttributeKind


class TableSynthesizer:
    """Fits one relation and samples arbitrarily many synthetic rows from it."""

    def __init__(self, relation: Relation, identifier: str | None = None, seed: int = 0) -> None:
        if len(relation) == 0:
            raise DatasetError("cannot fit a synthesizer on an empty relation")
        self.relation = relation
        self.identifier = identifier
        self._rng = np.random.default_rng(seed)
        self._categorical_models: dict[str, tuple[list[object], np.ndarray]] = {}
        self._numerical_models: dict[str, np.ndarray] = {}
        self._integral: dict[str, bool] = {}
        self._fit()

    def _fit(self) -> None:
        for attribute in self.relation.schema:
            column = self.relation.column(attribute.name)
            if attribute.kind is AttributeKind.CATEGORICAL:
                values, counts = np.unique(np.array(column, dtype=object), return_counts=True)
                probabilities = counts / counts.sum()
                self._categorical_models[attribute.name] = (list(values), probabilities)
            else:
                observed = np.sort(np.array([float(v) for v in column if v is not None]))
                self._numerical_models[attribute.name] = observed
                self._integral[attribute.name] = bool(
                    np.allclose(observed, np.round(observed))
                )

    def sample(self, num_rows: int, name: str | None = None) -> Relation:
        """Sample ``num_rows`` synthetic rows with the fitted per-column models."""
        if num_rows <= 0:
            raise DatasetError("num_rows must be positive")
        columns: dict[str, list[object]] = {}
        for attribute in self.relation.schema:
            if self.identifier is not None and attribute.name == self.identifier:
                columns[attribute.name] = [f"synth_{i}" for i in range(num_rows)]
                continue
            if attribute.kind is AttributeKind.CATEGORICAL:
                values, probabilities = self._categorical_models[attribute.name]
                drawn = self._rng.choice(len(values), size=num_rows, p=probabilities)
                columns[attribute.name] = [values[i] for i in drawn]
            else:
                observed = self._numerical_models[attribute.name]
                # Inverse-CDF sampling with interpolation between observations.
                quantiles = self._rng.random(num_rows)
                sampled = np.interp(
                    quantiles, np.linspace(0.0, 1.0, len(observed)), observed
                )
                if self._integral[attribute.name]:
                    sampled = np.round(sampled)
                else:
                    sampled = np.round(sampled, 2)
                columns[attribute.name] = [float(v) for v in sampled]

        names = self.relation.schema.names
        rows = [
            tuple(columns[column][i] for column in names) for i in range(num_rows)
        ]
        return Relation(name or self.relation.name, self.relation.schema, rows)


def scale_database(
    database: Database,
    factor: float,
    identifiers: dict[str, str] | None = None,
    only: Sequence[str] | None = None,
    seed: int = 0,
) -> Database:
    """Scale every relation of ``database`` by ``factor`` using :class:`TableSynthesizer`.

    Parameters
    ----------
    database:
        The database whose relations are fitted.
    factor:
        Multiplicative growth factor for the number of rows (>= that is, 2.0
        doubles the data size).
    identifiers:
        Optional mapping ``relation name -> identifier attribute`` whose values
        are regenerated to stay unique.
    only:
        When given, only these relations are scaled; the others are copied
        verbatim (used for TPC-H, where the dimension tables keep their size).
    seed:
        Seed for the synthesizer's random generator.
    """
    if factor <= 0:
        raise DatasetError("factor must be positive")
    identifiers = identifiers or {}
    scaled = Database()
    for relation in database:
        if only is not None and relation.name not in only:
            scaled.add(relation)
            continue
        synthesizer = TableSynthesizer(
            relation, identifier=identifiers.get(relation.name), seed=seed
        )
        scaled.add(synthesizer.sample(int(round(len(relation) * factor)), relation.name))
    return scaled
