"""Rendering :class:`SPJQuery` objects as SQL text.

Two families live here:

* the *display* renderers (``render_predicate``/``render_where``/
  ``render_sql``): human-facing SQL with literals inlined, used by the CLI,
  the examples and solver reports — never executed;
* the *parameterized* renderers (``render_predicate_params``/
  ``render_where_params``): the same clauses with every value bound as a
  ``?`` parameter, used by :mod:`repro.relational.sqlite_backend` for
  execution.  The ``sql-parameterization`` lint rule enforces that executed
  SQL only ever comes from this family.
"""

from __future__ import annotations

from repro.relational.predicates import (
    CategoricalPredicate,
    Conjunction,
    NumericalPredicate,
)
from repro.relational.query import SPJQuery


def _quote_identifier(name: str) -> str:
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def _quote_literal(value: object) -> str:
    if isinstance(value, (int, float)):
        return f"{value:g}"
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def render_predicate(predicate: NumericalPredicate | CategoricalPredicate) -> str:
    """Render a single predicate as a SQL boolean expression (display only)."""
    column = _quote_identifier(predicate.attribute)
    if isinstance(predicate, NumericalPredicate):
        # repro-lint: disable=sql-parameterization -- display-only rendering; execution goes through render_where_params
        return f"{column} {predicate.operator.value} {predicate.constant:g}"
    values = sorted(predicate.values, key=str)
    # repro-lint: disable=sql-parameterization -- display-only rendering; execution goes through render_where_params
    clauses = [f"{column} = {_quote_literal(value)}" for value in values]
    if len(clauses) == 1:
        return clauses[0]
    # repro-lint: disable=sql-parameterization -- display-only rendering; execution goes through render_where_params
    return "(" + " OR ".join(clauses) + ")"


def render_predicate_params(
    predicate: NumericalPredicate | CategoricalPredicate,
) -> tuple[str, tuple]:
    """Render one predicate with every value bound as a ``?`` parameter.

    A ``None`` in a categorical value set compares via ``IS NULL``: SQL
    ``IN`` lists never match NULL, while row semantics treat ``None`` as an
    ordinary listed value.
    """
    column = _quote_identifier(predicate.attribute)
    if isinstance(predicate, NumericalPredicate):
        return f"{column} {predicate.operator.value} ?", (predicate.constant,)
    values = sorted(predicate.values, key=str)
    non_null = [value for value in values if value is not None]
    clauses = []
    if len(non_null) == 1:
        clauses.append(f"{column} = ?")
    elif non_null:
        placeholders = ", ".join(["?"] * len(non_null))
        clauses.append(f"{column} IN ({placeholders})")
    if len(non_null) != len(values):
        clauses.append(f"{column} IS NULL")
    if not clauses:
        return "1 = 0", ()
    sql = clauses[0] if len(clauses) == 1 else "(" + " OR ".join(clauses) + ")"
    return sql, tuple(non_null)


def render_where_params(where: Conjunction) -> tuple[str, tuple]:
    """Render a conjunction with bound parameters (empty renders ``1 = 1``)."""
    if not len(where):
        return "1 = 1", ()
    parts: list[str] = []
    parameters: list[object] = []
    for predicate in where:
        sql, values = render_predicate_params(predicate)
        parts.append(sql)
        parameters.extend(values)
    return " AND ".join(parts), tuple(parameters)


def render_where(where: Conjunction) -> str:
    """Render a conjunction; an empty conjunction renders as ``1 = 1``."""
    if not len(where):
        return "1 = 1"
    return " AND ".join(render_predicate(predicate) for predicate in where)


def render_sql(query: SPJQuery) -> str:
    """Render an SPJ query as a SQL string (NATURAL JOIN form)."""
    if query.select:
        columns = ", ".join(_quote_identifier(name) for name in query.select)
    else:
        columns = "*"
    distinct = "DISTINCT " if query.distinct else ""
    from_clause = " NATURAL JOIN ".join(
        _quote_identifier(table) for table in query.tables
    )
    direction = "DESC" if query.order_by.descending else "ASC"
    return (
        f"SELECT {distinct}{columns}\n"
        f"FROM {from_clause}\n"
        f"WHERE {render_where(query.where)}\n"
        f"ORDER BY {_quote_identifier(query.order_by.attribute)} {direction}"
    )
