"""Rendering :class:`SPJQuery` objects as SQL text.

The generated SQL is used by :mod:`repro.relational.sqlite_backend` to
cross-check the in-memory executor against sqlite, and by the examples to show
users the refined query in familiar SQL form (as the paper does in its
examples).
"""

from __future__ import annotations

from repro.relational.predicates import (
    CategoricalPredicate,
    Conjunction,
    NumericalPredicate,
)
from repro.relational.query import SPJQuery


def _quote_identifier(name: str) -> str:
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def _quote_literal(value: object) -> str:
    if isinstance(value, (int, float)):
        return f"{value:g}"
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def render_predicate(predicate: NumericalPredicate | CategoricalPredicate) -> str:
    """Render a single predicate as a SQL boolean expression."""
    if isinstance(predicate, NumericalPredicate):
        return (
            f"{_quote_identifier(predicate.attribute)} {predicate.operator.value} "
            f"{predicate.constant:g}"
        )
    values = sorted(predicate.values, key=str)
    clauses = [
        f"{_quote_identifier(predicate.attribute)} = {_quote_literal(value)}"
        for value in values
    ]
    if len(clauses) == 1:
        return clauses[0]
    return "(" + " OR ".join(clauses) + ")"


def render_where(where: Conjunction) -> str:
    """Render a conjunction; an empty conjunction renders as ``1 = 1``."""
    if not len(where):
        return "1 = 1"
    return " AND ".join(render_predicate(predicate) for predicate in where)


def render_sql(query: SPJQuery) -> str:
    """Render an SPJ query as a SQL string (NATURAL JOIN form)."""
    if query.select:
        columns = ", ".join(_quote_identifier(name) for name in query.select)
    else:
        columns = "*"
    distinct = "DISTINCT " if query.distinct else ""
    from_clause = " NATURAL JOIN ".join(
        _quote_identifier(table) for table in query.tables
    )
    direction = "DESC" if query.order_by.descending else "ASC"
    return (
        f"SELECT {distinct}{columns}\n"
        f"FROM {from_clause}\n"
        f"WHERE {render_where(query.where)}\n"
        f"ORDER BY {_quote_identifier(query.order_by.attribute)} {direction}"
    )
