"""SPJ queries with ``ORDER BY`` and optional ``DISTINCT``.

An :class:`SPJQuery` captures exactly the query class from Section 2 of the
paper: a conjunctive selection over the natural join of one or more relations,
a projection (optionally ``DISTINCT``) and an ``ORDER BY s DESC`` clause whose
score attribute ranks the selected tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import QueryError
from repro.relational.predicates import (
    CategoricalPredicate,
    Conjunction,
    NumericalPredicate,
)


@dataclass(frozen=True)
class OrderBy:
    """``ORDER BY attribute [DESC|ASC]``."""

    attribute: str
    descending: bool = True

    def render(self) -> str:
        direction = "DESC" if self.descending else "ASC"
        return f'"{self.attribute}" {direction}'


@dataclass(frozen=True)
class SPJQuery:
    """A conjunctive Select-Project-Join query with ranking.

    Parameters
    ----------
    tables:
        Relation names joined with NATURAL JOIN, in order.
    where:
        Conjunction of numerical and categorical predicates.
    select:
        Projected attribute names; an empty sequence means ``SELECT *``.
    distinct:
        Whether the projection de-duplicates (keeping the better-ranked tuple).
    order_by:
        The ranking clause.
    name:
        Optional label used in logs, benchmark output and figures.
    """

    tables: tuple[str, ...]
    where: Conjunction
    order_by: OrderBy
    select: tuple[str, ...] = ()
    distinct: bool = False
    name: str = "Q"

    def __init__(
        self,
        tables: Sequence[str],
        where: Conjunction | Sequence = (),
        order_by: OrderBy | str | None = None,
        select: Sequence[str] = (),
        distinct: bool = False,
        name: str = "Q",
    ) -> None:
        if not tables:
            raise QueryError("a query must reference at least one relation")
        if order_by is None:
            raise QueryError("a ranking query requires an ORDER BY clause")
        if isinstance(order_by, str):
            order_by = OrderBy(order_by)
        if not isinstance(where, Conjunction):
            where = Conjunction(tuple(where))
        object.__setattr__(self, "tables", tuple(tables))
        object.__setattr__(self, "where", where)
        object.__setattr__(self, "order_by", order_by)
        object.__setattr__(self, "select", tuple(select))
        object.__setattr__(self, "distinct", bool(distinct))
        object.__setattr__(self, "name", name)

    # -- predicate accessors (paper notation) -----------------------------------

    @property
    def numerical_predicates(self) -> list[NumericalPredicate]:
        """``Num(Q)``."""
        return self.where.numerical

    @property
    def categorical_predicates(self) -> list[CategoricalPredicate]:
        """``Cat(Q)``."""
        return self.where.categorical

    @property
    def predicate_attributes(self) -> list[str]:
        """``Preds(Q)`` — attributes constrained by the selection."""
        return self.where.attributes

    @property
    def num_predicates(self) -> int:
        return len(self.where)

    # -- derivations ---------------------------------------------------------------

    def with_where(self, where: Conjunction) -> "SPJQuery":
        """A copy of the query with a different selection condition."""
        return SPJQuery(
            tables=self.tables,
            where=where,
            order_by=self.order_by,
            select=self.select,
            distinct=self.distinct,
            name=self.name,
        )

    def with_name(self, name: str) -> "SPJQuery":
        return SPJQuery(
            tables=self.tables,
            where=self.where,
            order_by=self.order_by,
            select=self.select,
            distinct=self.distinct,
            name=name,
        )

    def without_selection(self) -> "SPJQuery":
        """The paper's ``~Q``: drop all selection predicates and DISTINCT.

        The output of ``~Q`` over a database contains the output of every
        possible refinement, which is the set of tuples the MILP annotates.
        """
        return SPJQuery(
            tables=self.tables,
            where=Conjunction(),
            order_by=self.order_by,
            select=self.select,
            distinct=False,
            name=f"~{self.name}",
        )

    def __repr__(self) -> str:
        return (
            f"SPJQuery({self.name!r}, tables={list(self.tables)}, "
            f"where={self.where!r}, order_by={self.order_by.render()}, "
            f"distinct={self.distinct})"
        )
