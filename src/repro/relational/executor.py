"""Evaluation of :class:`~repro.relational.query.SPJQuery` over a database."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation


@dataclass(frozen=True)
class RankedResult:
    """The ranked output of an SPJ query.

    Attributes
    ----------
    query:
        The query that produced this result.
    relation:
        The full-width result: joined rows that satisfy the selection, ordered
        by the ``ORDER BY`` clause, de-duplicated when the query is DISTINCT.
        Keeping the full width (not just the projected columns) lets
        cardinality constraints test group membership on attributes that are
        not part of the projection.
    projected:
        The user-visible projection of ``relation``.
    """

    query: SPJQuery
    relation: Relation
    projected: Relation

    def __len__(self) -> int:
        return len(self.relation)

    def top_k(self, k: int) -> Relation:
        """The top-``k`` rows of the full-width result."""
        return self.relation.head(k)

    def item_key(self, position: int) -> tuple[object, ...]:
        """Identity of the item at ``position`` for set/rank comparisons.

        DISTINCT queries identify items by their projected (distinct) values;
        otherwise the identity is the full row.
        """
        if self.query.distinct and self.query.select:
            return tuple(self.projected[position])
        return tuple(self.relation[position])

    def top_k_keys(self, k: int) -> list[tuple[object, ...]]:
        """Identities of the top-``k`` items, in rank order.

        Materialises only the top-``k`` rows (not the full result), keeping
        outcome-based distance evaluation cheap on columnar results.
        """
        source = (
            self.projected
            if self.query.distinct and self.query.select
            else self.relation
        )
        return source.head(k).rows

    def count_in_top_k(self, k: int, member: Callable[[dict], bool]) -> int:
        """Number of top-``k`` rows satisfying a group-membership test."""
        return sum(
            1 for values in self.relation.head(k).iter_dicts() if member(values)
        )

    def count_group_in_top_k(self, k: int, conditions: Mapping[str, object]) -> int:
        """Number of top-``k`` rows matching equality ``conditions`` (vectorized)."""
        return self.relation.head(k).group_count(conditions)

    def scores(self) -> list[float]:
        """Values of the ranking attribute, in rank order (``None`` scores as 0)."""
        return [
            0.0 if value is None else float(value)
            for value in self.relation.column(self.query.order_by.attribute)
        ]


class QueryExecutor:
    """Evaluates SPJ queries over an in-memory :class:`Database`.

    The executor caches the joined relation per table list and the *ordered*
    join per ``(tables, ORDER BY)`` pair: ordering before selecting is
    equivalent to the textbook select-then-order pipeline because both sorts
    are stable (filtering commutes with a stable sort), and it lets repeated
    evaluations over the same tables — the exhaustive baselines re-evaluate
    thousands of candidate refinements — skip the join and sort entirely.
    Each cache holds one entry per query shape; swapping a relation in the
    database replaces the stale entry on the next evaluation.
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self._join_cache: dict = {}
        self._ordered_cache: dict = {}

    # -- public API --------------------------------------------------------------

    def evaluate(self, query: SPJQuery) -> RankedResult:
        """Evaluate ``query`` and return its ranked result."""
        ordered_join = self._ordered_join(query)
        if query.distinct and query.select:
            # Warm the DISTINCT-key code views on the shared parent store
            # before deriving the selection, so it inherits sliced views
            # instead of re-running the per-row factorization per candidate.
            parent_store = ordered_join.column_store()
            if parent_store is not None:
                for name in query.select:
                    parent_store.codes(name)
        selected = ordered_join.select(query.where)
        if query.distinct and query.select:
            selected = self._deduplicate(selected, query.select)
        projected = (
            selected.project(query.select) if query.select else selected
        )
        return RankedResult(query=query, relation=selected, projected=projected)

    def evaluate_unfiltered(self, query: SPJQuery) -> RankedResult:
        """Evaluate the paper's ``~Q``: no selection, no DISTINCT, same ranking."""
        return self.evaluate(query.without_selection())

    # -- helpers -------------------------------------------------------------------

    def _join(self, tables: Sequence[str]) -> Relation:
        if not tables:
            raise QueryError("cannot evaluate a query over an empty table list")
        relations = [self.database.relation(name) for name in tables]
        # The entry keeps the input relations alive so that an id() recorded
        # here can never be reused by a replacement relation (which would make
        # a stale entry look fresh); a swap replaces the whole entry instead.
        ids = tuple(id(relation) for relation in relations)
        cached = self._join_cache.get(tuple(tables))
        if cached is None or cached[0] != ids:
            joined = relations[0]
            for relation in relations[1:]:
                joined = joined.natural_join(relation)
            self._join_cache[tuple(tables)] = cached = (ids, relations, joined)
        return cached[2]

    def _ordered_join(self, query: SPJQuery) -> Relation:
        joined = self._join(query.tables)
        self._validate(query, joined)
        key = (query.tables, query.order_by.attribute, query.order_by.descending)
        cached = self._ordered_cache.get(key)
        if cached is None or cached[0] is not joined:
            ordered = joined.order_by(
                query.order_by.attribute, descending=query.order_by.descending
            )
            self._ordered_cache[key] = cached = (joined, ordered)
        return cached[1]

    @staticmethod
    def _deduplicate(ordered: Relation, select: Sequence[str]) -> Relation:
        """Keep only the best-ranked row for each combination of DISTINCT values."""
        store = ordered.column_store()
        if store is not None:
            first = store.first_occurrence(list(select))
            if first is not None:
                return ordered.take(first)
        indices = [ordered.schema.index_of(name) for name in select]
        seen: set[tuple[object, ...]] = set()
        kept = []
        for row in ordered.rows:
            key = tuple(row[i] for i in indices)
            if key in seen:
                continue
            seen.add(key)
            kept.append(row)
        return Relation(ordered.name, ordered.schema, kept)

    @staticmethod
    def _validate(query: SPJQuery, joined: Relation) -> None:
        schema = joined.schema
        unknown = [
            attribute
            for attribute in query.predicate_attributes
            if attribute not in schema
        ]
        if unknown:
            raise QueryError(
                f"query {query.name!r} filters on unknown attributes {unknown}"
            )
        if query.order_by.attribute not in schema:
            raise QueryError(
                f"query {query.name!r} orders by unknown attribute "
                f"{query.order_by.attribute!r}"
            )
        for attribute in query.select:
            if attribute not in schema:
                raise QueryError(
                    f"query {query.name!r} projects unknown attribute {attribute!r}"
                )
