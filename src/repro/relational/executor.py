"""Evaluation of :class:`~repro.relational.query.SPJQuery` over a database."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation


@dataclass(frozen=True)
class RankedResult:
    """The ranked output of an SPJ query.

    Attributes
    ----------
    query:
        The query that produced this result.
    relation:
        The full-width result: joined rows that satisfy the selection, ordered
        by the ``ORDER BY`` clause, de-duplicated when the query is DISTINCT.
        Keeping the full width (not just the projected columns) lets
        cardinality constraints test group membership on attributes that are
        not part of the projection.
    projected:
        The user-visible projection of ``relation``.
    """

    query: SPJQuery
    relation: Relation
    projected: Relation

    def __len__(self) -> int:
        return len(self.relation)

    def top_k(self, k: int) -> Relation:
        """The top-``k`` rows of the full-width result."""
        return self.relation.head(k)

    def item_key(self, position: int) -> tuple[object, ...]:
        """Identity of the item at ``position`` for set/rank comparisons.

        DISTINCT queries identify items by their projected (distinct) values;
        otherwise the identity is the full row.
        """
        if self.query.distinct and self.query.select:
            return tuple(self.projected[position])
        return tuple(self.relation[position])

    def top_k_keys(self, k: int) -> list[tuple[object, ...]]:
        """Identities of the top-``k`` items, in rank order."""
        return [self.item_key(i) for i in range(min(k, len(self.relation)))]

    def count_in_top_k(self, k: int, member: Callable[[dict], bool]) -> int:
        """Number of top-``k`` rows satisfying a group-membership test."""
        names = self.relation.schema.names
        count = 0
        for row in self.relation.rows[:k]:
            if member(dict(zip(names, row))):
                count += 1
        return count

    def scores(self) -> list[float]:
        """Values of the ranking attribute, in rank order."""
        return [float(v) for v in self.relation.column(self.query.order_by.attribute)]


class QueryExecutor:
    """Evaluates SPJ queries over an in-memory :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # -- public API --------------------------------------------------------------

    def evaluate(self, query: SPJQuery) -> RankedResult:
        """Evaluate ``query`` and return its ranked result."""
        joined = self._join(query.tables)
        self._validate(query, joined)
        selected = joined.select(query.where)
        ordered = selected.order_by(
            query.order_by.attribute, descending=query.order_by.descending
        )
        if query.distinct and query.select:
            ordered = self._deduplicate(ordered, query.select)
        projected = (
            ordered.project(query.select) if query.select else ordered
        )
        return RankedResult(query=query, relation=ordered, projected=projected)

    def evaluate_unfiltered(self, query: SPJQuery) -> RankedResult:
        """Evaluate the paper's ``~Q``: no selection, no DISTINCT, same ranking."""
        return self.evaluate(query.without_selection())

    # -- helpers -------------------------------------------------------------------

    def _join(self, tables: Sequence[str]) -> Relation:
        relations = [self.database.relation(name) for name in tables]
        joined = relations[0]
        for relation in relations[1:]:
            joined = relation if joined is None else joined.natural_join(relation)
        return joined

    @staticmethod
    def _deduplicate(ordered: Relation, select: Sequence[str]) -> Relation:
        """Keep only the best-ranked row for each combination of DISTINCT values."""
        indices = [ordered.schema.index_of(name) for name in select]
        seen: set[tuple[object, ...]] = set()
        kept = []
        for row in ordered.rows:
            key = tuple(row[i] for i in indices)
            if key in seen:
                continue
            seen.add(key)
            kept.append(row)
        return Relation(ordered.name, ordered.schema, kept)

    @staticmethod
    def _validate(query: SPJQuery, joined: Relation) -> None:
        schema = joined.schema
        unknown = [
            attribute
            for attribute in query.predicate_attributes
            if attribute not in schema
        ]
        if unknown:
            raise QueryError(
                f"query {query.name!r} filters on unknown attributes {unknown}"
            )
        if query.order_by.attribute not in schema:
            raise QueryError(
                f"query {query.name!r} orders by unknown attribute "
                f"{query.order_by.attribute!r}"
            )
        for attribute in query.select:
            if attribute not in schema:
                raise QueryError(
                    f"query {query.name!r} projects unknown attribute {attribute!r}"
                )
