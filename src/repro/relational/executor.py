"""Evaluation of :class:`~repro.relational.query.SPJQuery` over a database.

Two execution backends sit behind :class:`QueryExecutor`:

``memory`` (default)
    The in-memory engine — columnar/vectorized when NumPy is available,
    row-at-a-time otherwise — with per-query-shape join and ordered-join
    caches.

``sqlite``
    Selection, ordering and DISTINCT pushed down into sqlite
    (:mod:`repro.relational.sqlite_backend`); only result row coordinates
    come back, and the executor gathers them column-wise from the original
    relations, so the join is never materialised in Python.

The backend is chosen per executor (``backend=`` constructor argument) or
process-wide via the ``REPRO_EXECUTOR_BACKEND`` environment variable.  Both
backends produce byte-identical :class:`RankedResult`\\ s.

The sqlite backend can be *persistent*: ``db_path=`` (or the
``REPRO_EXECUTOR_DB`` environment variable, which also implies the sqlite
backend when none is selected explicitly) points it at an on-disk database
file.  The indexed tables are written once and fingerprint-validated on every
subsequent open, so repeated benchmark processes — and the forked workers of
the parallel sweep engine — skip the data load entirely.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.analysis.debug_locks import guard_mapping, plain_copy
from repro.exceptions import QueryError
from repro.relational.columnar import ColumnStore
from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation
from repro.relational.schema import Schema

try:  # pragma: no cover - optional, gated via Relation.column_store()
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Supported execution backends, in documentation order.
EXECUTOR_BACKENDS = ("memory", "sqlite")


class _SQLiteConnectionPool:
    """Per-thread :class:`SQLiteExecutor` handles behind one executor.

    ``sqlite3`` connections must not be shared across threads, so a threaded
    caller (the serving layer admits concurrent refine requests) gets one
    connection per thread, created lazily on first use.  The pool is bounded:
    threaded HTTP servers spawn short-lived request threads, and without a cap
    every dead thread would leak its connection.  Eviction closes the oldest
    connection — safe because :mod:`repro.relational.sqlite_backend` opens
    with ``check_same_thread=False`` (usage stays per-thread by construction;
    only ``close`` crosses threads).
    """

    MAX_CONNECTIONS = 16

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._executors: dict[int, object] = guard_mapping(
            {}, self._lock, "_SQLiteConnectionPool._executors"
        )

    def get(self):
        """The calling thread's executor, or ``None`` if it has none yet.

        Even this read takes the lock: ``put`` evicts other threads' entries,
        so the table mutates under concurrent readers.
        """
        with self._lock:
            return self._executors.get(threading.get_ident())

    def put(self, executor) -> None:
        ident = threading.get_ident()
        evict = []
        with self._lock:
            self._executors[ident] = executor
            while len(self._executors) > self.MAX_CONNECTIONS:
                oldest = next(iter(self._executors))
                if oldest == ident:
                    break
                evict.append(self._executors.pop(oldest))
        for stale in evict:
            stale.close()

    def executors(self) -> list:
        with self._lock:
            return list(self._executors.values())

    def clear(self, close: bool = False) -> None:
        with self._lock:
            executors = list(self._executors.values())
            self._executors.clear()
        if close:
            for executor in executors:
                executor.close()


@dataclass(frozen=True)
class RankedResult:
    """The ranked output of an SPJ query.

    Attributes
    ----------
    query:
        The query that produced this result.
    relation:
        The full-width result: joined rows that satisfy the selection, ordered
        by the ``ORDER BY`` clause, de-duplicated when the query is DISTINCT.
        Keeping the full width (not just the projected columns) lets
        cardinality constraints test group membership on attributes that are
        not part of the projection.
    projected:
        The user-visible projection of ``relation``.
    """

    query: SPJQuery
    relation: Relation
    projected: Relation

    def __len__(self) -> int:
        return len(self.relation)

    def top_k(self, k: int) -> Relation:
        """The top-``k`` rows of the full-width result."""
        return self.relation.head(k)

    def item_key(self, position: int) -> tuple[object, ...]:
        """Identity of the item at ``position`` for set/rank comparisons.

        DISTINCT queries identify items by their projected (distinct) values;
        otherwise the identity is the full row.
        """
        if self.query.distinct and self.query.select:
            return tuple(self.projected[position])
        return tuple(self.relation[position])

    def top_k_keys(self, k: int) -> list[tuple[object, ...]]:
        """Identities of the top-``k`` items, in rank order.

        Materialises only the top-``k`` rows (not the full result), keeping
        outcome-based distance evaluation cheap on columnar results.
        """
        source = (
            self.projected
            if self.query.distinct and self.query.select
            else self.relation
        )
        return source.head(k).rows

    def count_in_top_k(self, k: int, member: Callable[[dict], bool]) -> int:
        """Number of top-``k`` rows satisfying a group-membership test."""
        return sum(
            1 for values in self.relation.head(k).iter_dicts() if member(values)
        )

    def count_group_in_top_k(self, k: int, conditions: Mapping[str, object]) -> int:
        """Number of top-``k`` rows matching equality ``conditions`` (vectorized)."""
        return self.relation.head(k).group_count(conditions)

    def scores(self) -> list[float]:
        """Values of the ranking attribute, in rank order (``None`` scores as 0)."""
        return [
            0.0 if value is None else float(value)
            for value in self.relation.column(self.query.order_by.attribute)
        ]


class QueryExecutor:
    """Evaluates SPJ queries over a :class:`Database` via a pluggable backend.

    On the (default) ``memory`` backend the executor caches the joined
    relation per table list and the *ordered* join per ``(tables, ORDER BY)``
    pair: ordering before selecting is equivalent to the textbook
    select-then-order pipeline because both sorts are stable (filtering
    commutes with a stable sort), and it lets repeated evaluations over the
    same tables — the exhaustive baselines re-evaluate thousands of candidate
    refinements — skip the join and sort entirely.  Each cache holds one
    entry per query shape; swapping a relation in the database replaces the
    stale entry on the next evaluation.

    On the ``sqlite`` backend the join, selection, ordering and DISTINCT all
    run inside sqlite over indexed base tables; the executor only gathers the
    returned row coordinates into a (columnar, when NumPy is available)
    result relation.
    """

    def __init__(
        self,
        database: Database,
        backend: str | None = None,
        db_path: str | None = None,
    ) -> None:
        self.database = database
        if db_path is None:
            db_path = os.environ.get("REPRO_EXECUTOR_DB") or None
        if backend is None:
            backend = os.environ.get("REPRO_EXECUTOR_BACKEND")
            if backend is None:
                # A persisted database only makes sense on sqlite; pointing
                # REPRO_EXECUTOR_DB at a file selects it implicitly.
                backend = "sqlite" if db_path is not None else "memory"
        backend = backend.lower()
        if backend not in EXECUTOR_BACKENDS:
            raise QueryError(
                f"unknown executor backend {backend!r}; "
                f"available: {list(EXECUTOR_BACKENDS)}"
            )
        self.backend = backend
        self.db_path = db_path
        # The shape caches are check-then-build; concurrent refine requests
        # through one warm session share this executor, so cache construction
        # is serialized behind a lock (reads of a built entry are then safe
        # because entries are immutable once stored).
        self._cache_lock = threading.RLock()
        self._join_cache: dict = guard_mapping(
            {}, self._cache_lock, "QueryExecutor._join_cache"
        )
        self._ordered_cache: dict = guard_mapping(
            {}, self._cache_lock, "QueryExecutor._ordered_cache"
        )
        self._sqlite_pool = _SQLiteConnectionPool()

    # -- process-boundary hygiene --------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle without sqlite connections and locks (neither is picklable)."""
        state = {name: value for name, value in self.__dict__.items()}
        state["_sqlite_pool"] = None
        state["_cache_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._rearm_caches()
        self._sqlite_pool = _SQLiteConnectionPool()

    def _rearm_caches(self) -> None:
        """Fresh cache lock, caches re-wrapped (post-fork/unpickle only)."""
        self._cache_lock = threading.RLock()
        with self._cache_lock:
            self._join_cache = guard_mapping(
                plain_copy(self._join_cache),
                self._cache_lock,
                "QueryExecutor._join_cache",
            )
            self._ordered_cache = guard_mapping(
                plain_copy(self._ordered_cache),
                self._cache_lock,
                "QueryExecutor._ordered_cache",
            )

    def reset_connections(self) -> None:
        """Drop sqlite connections (and re-arm the locks) after a fork.

        SQLite connections must not be used across ``fork``; the child lazily
        reopens its own on first use — against ``db_path`` that reopen
        fingerprint-validates the persisted tables and skips the data load.
        The cache lock is re-created too: the fork may have happened while
        another thread of the parent held it, and the copy would then be
        locked forever in the child.
        """
        self._rearm_caches()
        self._sqlite_pool = _SQLiteConnectionPool()

    def close_connections(self) -> None:
        """Close every pooled sqlite connection (session teardown)."""
        self._sqlite_pool.clear(close=True)

    @property
    def sqlite_load_count(self) -> int:
        """Relations actually (re)loaded into sqlite by this executor's process."""
        return sum(
            executor.load_count for executor in self._sqlite_pool.executors()
        )

    # -- public API --------------------------------------------------------------

    def evaluate(self, query: SPJQuery) -> RankedResult:
        """Evaluate ``query`` and return its ranked result."""
        if self.backend == "sqlite":
            return self._evaluate_sqlite(query)
        ordered_join = self._ordered_join(query)
        if query.distinct and query.select:
            # Warm the DISTINCT-key code views on the shared parent store
            # before deriving the selection, so it inherits sliced views
            # instead of re-running the per-row factorization per candidate.
            parent_store = ordered_join.column_store()
            if parent_store is not None:
                for name in query.select:
                    parent_store.codes(name)
        selected = ordered_join.select(query.where)
        if query.distinct and query.select:
            selected = self._deduplicate(selected, query.select)
        projected = (
            selected.project(query.select) if query.select else selected
        )
        return RankedResult(query=query, relation=selected, projected=projected)

    def evaluate_unfiltered(self, query: SPJQuery) -> RankedResult:
        """Evaluate the paper's ``~Q``: no selection, no DISTINCT, same ranking."""
        return self.evaluate(query.without_selection())

    def annotation_scan(self, query: SPJQuery):
        """Distinct lineage-atom combinations of ``~Q(D)``, pushed into SQL.

        On the sqlite backend this is one ``GROUP BY`` over the predicate
        attribute columns of the unfiltered join; the annotation pass then
        interns atoms and lineage sets per distinct combination and assigns
        them to rows with a single dict lookup each.  ``None`` on the memory
        backend (the annotation pass falls back to its column-cached scan).
        """
        if self.backend != "sqlite" or not query.where:
            return None
        return self._ensure_sqlite().annotation_scan(query)

    # -- sqlite pushdown -----------------------------------------------------------

    def _ensure_sqlite(self):
        from repro.relational.sqlite_backend import SQLiteExecutor

        sqlite = self._sqlite_pool.get()
        # Construction and refresh both (re)load tables, and on a persistent
        # db_path every thread's connection shares one file — serialize the
        # loads or concurrent cold starts race on DROP/CREATE TABLE.
        with self._cache_lock:
            if sqlite is None:
                sqlite = SQLiteExecutor(self.database, path=self.db_path or ":memory:")
                self._sqlite_pool.put(sqlite)
            else:
                sqlite.refresh()
        return sqlite

    def _evaluate_sqlite(self, query: SPJQuery) -> RankedResult:
        """Push the whole query into sqlite and gather only the result rows."""
        schemas = [self.database.relation(name).schema for name in query.tables]
        joined_schema = schemas[0]
        for schema in schemas[1:]:
            joined_schema = joined_schema.join(schema)
        self._validate(query, joined_schema)

        sqlite = self._ensure_sqlite()
        coordinates = sqlite.pushdown_positions(query)
        relation = self._gather(query, joined_schema, coordinates)
        if (
            query.distinct
            and query.select
            and not sqlite.supports_distinct_pushdown
        ):
            relation = self._deduplicate(relation, query.select)
        projected = relation.project(query.select) if query.select else relation
        return RankedResult(query=query, relation=relation, projected=projected)

    def _gather(
        self,
        query: SPJQuery,
        joined_schema: Schema,
        coordinates: Sequence[tuple[int, ...]],
    ) -> Relation:
        """Assemble the full-width result from per-table row coordinates.

        Values are taken from the original relations (the same Python
        objects the in-memory engines return), one fancy-indexed gather per
        output column on the columnar path.
        """
        tables = query.tables
        name = "*".join(tables)
        relations = [self.database.relation(table) for table in tables]
        source: dict[str, int] = {}
        for position, relation in enumerate(relations):
            for attribute in relation.schema.names:
                source.setdefault(attribute, position)
        count = len(coordinates)

        stores = [relation.column_store() for relation in relations]
        if all(store is not None for store in stores):
            rid_arrays = [
                _np.fromiter(
                    (row[i] for row in coordinates), dtype=_np.int64, count=count
                )
                for i in range(len(tables))
            ]
            arrays = [
                stores[source[attribute]].array(attribute)[rid_arrays[source[attribute]]]
                for attribute in joined_schema.names
            ]
            return Relation.from_store(
                name, ColumnStore(joined_schema, arrays, count)
            )

        table_rows = [relation.rows for relation in relations]
        specs = [
            (source[attribute], relations[source[attribute]].schema.index_of(attribute))
            for attribute in joined_schema.names
        ]
        rows = [
            tuple(table_rows[table][row[table]][column] for table, column in specs)
            for row in coordinates
        ]
        return Relation(name, joined_schema, rows)

    # -- helpers -------------------------------------------------------------------

    def _join(self, tables: Sequence[str]) -> Relation:
        if not tables:
            raise QueryError("cannot evaluate a query over an empty table list")
        with self._cache_lock:
            relations = [self.database.relation(name) for name in tables]
            # The entry keeps the input relations alive so that an id() recorded
            # here can never be reused by a replacement relation (which would make
            # a stale entry look fresh); a swap replaces the whole entry instead.
            ids = tuple(id(relation) for relation in relations)
            cached = self._join_cache.get(tuple(tables))
            if cached is None or cached[0] != ids:
                joined = relations[0]
                for relation in relations[1:]:
                    joined = joined.natural_join(relation)
                self._join_cache[tuple(tables)] = cached = (ids, relations, joined)
            return cached[2]

    def _ordered_join(self, query: SPJQuery) -> Relation:
        with self._cache_lock:
            joined = self._join(query.tables)
            self._validate(query, joined.schema)
            key = (query.tables, query.order_by.attribute, query.order_by.descending)
            cached = self._ordered_cache.get(key)
            if cached is None or cached[0] is not joined:
                ordered = joined.order_by(
                    query.order_by.attribute, descending=query.order_by.descending
                )
                self._ordered_cache[key] = cached = (joined, ordered)
            return cached[1]

    @staticmethod
    def _deduplicate(ordered: Relation, select: Sequence[str]) -> Relation:
        """Keep only the best-ranked row for each combination of DISTINCT values."""
        store = ordered.column_store()
        if store is not None:
            first = store.first_occurrence(list(select))
            if first is not None:
                return ordered.take(first)
        indices = [ordered.schema.index_of(name) for name in select]
        seen: set[tuple[object, ...]] = set()
        kept = []
        for row in ordered.rows:
            key = tuple(row[i] for i in indices)
            if key in seen:
                continue
            seen.add(key)
            kept.append(row)
        return Relation(ordered.name, ordered.schema, kept)

    @staticmethod
    def _validate(query: SPJQuery, schema: Schema) -> None:
        unknown = [
            attribute
            for attribute in query.predicate_attributes
            if attribute not in schema
        ]
        if unknown:
            raise QueryError(
                f"query {query.name!r} filters on unknown attributes {unknown}"
            )
        if query.order_by.attribute not in schema:
            raise QueryError(
                f"query {query.name!r} orders by unknown attribute "
                f"{query.order_by.attribute!r}"
            )
        for attribute in query.select:
            if attribute not in schema:
                raise QueryError(
                    f"query {query.name!r} projects unknown attribute {attribute!r}"
                )
