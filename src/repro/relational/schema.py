"""Schemas: attribute names, kinds and ordering."""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

from repro.exceptions import SchemaError


class AttributeKind(enum.Enum):
    """The two attribute kinds the paper's refinement model distinguishes.

    Numerical attributes participate in predicates of the form ``A ⋄ C``;
    categorical attributes participate in predicates of the form
    ``A IN {c1, ..., cm}``.
    """

    CATEGORICAL = "categorical"
    NUMERICAL = "numerical"


class Attribute:
    """A named, typed column."""

    __slots__ = ("name", "kind")

    def __init__(self, name: str, kind: AttributeKind) -> None:
        if not name:
            raise SchemaError("attribute name must be non-empty")
        self.name = name
        self.kind = kind

    @property
    def is_numerical(self) -> bool:
        return self.kind is AttributeKind.NUMERICAL

    @property
    def is_categorical(self) -> bool:
        return self.kind is AttributeKind.CATEGORICAL

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and self.name == other.name
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.name, self.kind))

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.kind.value})"


def categorical(name: str) -> Attribute:
    """Shorthand constructor for a categorical attribute."""
    return Attribute(name, AttributeKind.CATEGORICAL)


def numerical(name: str) -> Attribute:
    """Shorthand constructor for a numerical attribute."""
    return Attribute(name, AttributeKind.NUMERICAL)


class Schema:
    """An ordered collection of uniquely named attributes."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        attributes = list(attributes)
        names = [attribute.name for attribute in attributes]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {duplicates}")
        self._attributes = tuple(attributes)
        self._index = {attribute.name: i for i, attribute in enumerate(attributes)}

    # -- lookups -------------------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> list[str]:
        return [attribute.name for attribute in self._attributes]

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name`` or raise :class:`SchemaError`."""
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {self.names}"
            ) from None

    def index_of(self, name: str) -> int:
        """Positional index of ``name`` within rows of this schema."""
        if name not in self._index:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {self.names}"
            )
        return self._index[name]

    def kind_of(self, name: str) -> AttributeKind:
        return self.attribute(name).kind

    # -- derivations -----------------------------------------------------------

    def project(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to ``names`` (in the given order)."""
        return Schema([self.attribute(name) for name in names])

    def common_attributes(self, other: "Schema") -> list[str]:
        """Attribute names shared with ``other`` (natural-join keys)."""
        return [name for name in self.names if name in other]

    def join(self, other: "Schema") -> "Schema":
        """Schema of the natural join: self's attributes then other's new ones."""
        for name in self.common_attributes(other):
            if self.attribute(name).kind != other.attribute(name).kind:
                raise SchemaError(
                    f"attribute {name!r} has conflicting kinds in the two schemas"
                )
        extra = [
            attribute for attribute in other.attributes if attribute.name not in self
        ]
        return Schema(list(self._attributes) + extra)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{attribute.name}:{attribute.kind.value[:3]}"
            for attribute in self._attributes
        )
        return f"Schema({inner})"
