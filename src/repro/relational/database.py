"""A named collection of relations."""

from __future__ import annotations

import csv
import pathlib
from typing import Iterable, Iterator

from repro.exceptions import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeKind, Schema


class Database:
    """A trivially simple "database": a dict of relations by name."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation) -> None:
        """Register (or replace) a relation under its own name."""
        self._relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        """Fetch a relation, raising :class:`SchemaError` when unknown."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"unknown relation {name!r}; database has {sorted(self._relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> list[str]:
        return sorted(self._relations)

    def total_rows(self) -> int:
        """Total number of tuples across all relations (a data-size proxy)."""
        return sum(len(relation) for relation in self._relations.values())

    # -- CSV persistence (used by the dataset generators and examples) ----------

    def save_csv(self, directory: str | pathlib.Path) -> None:
        """Write one CSV file per relation into ``directory``."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for relation in self:
            path = directory / f"{relation.name}.csv"
            with path.open("w", newline="") as handle:
                writer = csv.writer(handle)
                header = [
                    f"{attribute.name}:{attribute.kind.value}"
                    for attribute in relation.schema
                ]
                writer.writerow(header)
                writer.writerows(relation.rows)

    @classmethod
    def load_csv(cls, directory: str | pathlib.Path) -> "Database":
        """Load every ``*.csv`` file written by :meth:`save_csv`."""
        directory = pathlib.Path(directory)
        database = cls()
        for path in sorted(directory.glob("*.csv")):
            with path.open(newline="") as handle:
                reader = csv.reader(handle)
                header = next(reader)
                attributes = []
                for column in header:
                    name, _, kind = column.rpartition(":")
                    attributes.append(Attribute(name, AttributeKind(kind)))
                schema = Schema(attributes)
                rows = []
                for raw in reader:
                    row = []
                    for attribute, value in zip(attributes, raw):
                        if attribute.kind is AttributeKind.NUMERICAL:
                            row.append(float(value) if value != "" else None)
                        else:
                            row.append(value if value != "" else None)
                    rows.append(tuple(row))
            database.add(Relation(path.stem, schema, rows))
        return database

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}({len(relation)})" for name, relation in sorted(self._relations.items())
        )
        return f"Database({parts})"
