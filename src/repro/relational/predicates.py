"""Selection predicates over numerical and categorical attributes.

The paper's query class (Section 2) combines two predicate forms with AND:

* numerical predicates ``A ⋄ C`` with ``⋄ ∈ {<, <=, =, >, >=}``, and
* categorical predicates ``A = c1 OR A = c2 OR ...`` i.e. ``A IN C``.

A *refinement* changes the constant of a numerical predicate or the value set
of a categorical predicate; the predicate classes therefore expose
``with_constant`` / ``with_values`` so refined queries can be built without
mutating the original.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import QueryError


class Operator(enum.Enum):
    """Comparison operators allowed in numerical predicates."""

    LESS = "<"
    LESS_EQUAL = "<="
    EQUAL = "="
    GREATER = ">"
    GREATER_EQUAL = ">="

    @property
    def is_strict(self) -> bool:
        """True for strict inequalities (the paper's ``St(⋄) = 1``)."""
        return self in (Operator.LESS, Operator.GREATER)

    @property
    def is_lower_bound(self) -> bool:
        """True when the predicate keeps values *at least* the constant."""
        return self in (Operator.GREATER, Operator.GREATER_EQUAL)

    @property
    def is_upper_bound(self) -> bool:
        """True when the predicate keeps values *at most* the constant."""
        return self in (Operator.LESS, Operator.LESS_EQUAL)

    def compare(self, value: float, constant: float) -> bool:
        """Evaluate ``value ⋄ constant``."""
        if self is Operator.LESS:
            return value < constant
        if self is Operator.LESS_EQUAL:
            return value <= constant
        if self is Operator.EQUAL:
            return value == constant
        if self is Operator.GREATER:
            return value > constant
        return value >= constant

    @classmethod
    def from_symbol(cls, symbol: str) -> "Operator":
        for member in cls:
            if member.value == symbol:
                return member
        raise QueryError(f"unknown comparison operator {symbol!r}")


class NumericalPredicate:
    """A predicate of the form ``attribute ⋄ constant``."""

    __slots__ = ("attribute", "operator", "constant")

    def __init__(self, attribute: str, operator: Operator | str, constant: float) -> None:
        if isinstance(operator, str):
            operator = Operator.from_symbol(operator)
        self.attribute = attribute
        self.operator = operator
        self.constant = float(constant)

    def matches(self, row: Mapping[str, object]) -> bool:
        """Whether ``row`` satisfies the predicate (missing/None fails)."""
        value = row.get(self.attribute)
        if value is None:
            return False
        return self.operator.compare(float(value), self.constant)

    def matches_value(self, value: float) -> bool:
        """Whether a bare attribute value satisfies the predicate."""
        return self.operator.compare(float(value), self.constant)

    def with_constant(self, constant: float) -> "NumericalPredicate":
        """A copy of this predicate with a refined constant."""
        return NumericalPredicate(self.attribute, self.operator, constant)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NumericalPredicate)
            and self.attribute == other.attribute
            and self.operator == other.operator
            and self.constant == other.constant
        )

    def __hash__(self) -> int:
        return hash((self.attribute, self.operator, self.constant))

    def __repr__(self) -> str:
        return f"NumericalPredicate({self.attribute} {self.operator.value} {self.constant:g})"


class CategoricalPredicate:
    """A predicate of the form ``attribute IN {v1, ..., vm}``."""

    __slots__ = ("attribute", "values")

    def __init__(self, attribute: str, values: Iterable[object]) -> None:
        values = frozenset(values)
        if not values:
            raise QueryError(
                f"categorical predicate on {attribute!r} needs at least one value"
            )
        self.attribute = attribute
        self.values = values

    def matches(self, row: Mapping[str, object]) -> bool:
        return row.get(self.attribute) in self.values

    def matches_value(self, value: object) -> bool:
        return value in self.values

    def with_values(self, values: Iterable[object]) -> "CategoricalPredicate":
        """A copy of this predicate with a refined value set."""
        return CategoricalPredicate(self.attribute, values)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CategoricalPredicate)
            and self.attribute == other.attribute
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((self.attribute, self.values))

    def __repr__(self) -> str:
        rendered = ", ".join(repr(v) for v in sorted(self.values, key=str))
        return f"CategoricalPredicate({self.attribute} IN {{{rendered}}})"


Predicate = NumericalPredicate | CategoricalPredicate


class Conjunction:
    """A conjunction (AND) of numerical and categorical predicates."""

    __slots__ = ("_predicates", "_numerical", "_categorical")

    def __init__(self, predicates: Sequence[Predicate] = ()) -> None:
        self._predicates = tuple(predicates)
        self._numerical: list[NumericalPredicate] | None = None
        self._categorical: list[CategoricalPredicate] | None = None

    @property
    def predicates(self) -> tuple[Predicate, ...]:
        return self._predicates

    @property
    def numerical(self) -> list[NumericalPredicate]:
        """The paper's ``Num(Q)`` (cached; treat the list as read-only)."""
        if self._numerical is None:
            self._numerical = [
                p for p in self._predicates if isinstance(p, NumericalPredicate)
            ]
        return self._numerical

    @property
    def categorical(self) -> list[CategoricalPredicate]:
        """The paper's ``Cat(Q)`` (cached; treat the list as read-only)."""
        if self._categorical is None:
            self._categorical = [
                p for p in self._predicates if isinstance(p, CategoricalPredicate)
            ]
        return self._categorical

    @property
    def attributes(self) -> list[str]:
        """The paper's ``Preds(Q)``: attributes appearing in predicates."""
        return [p.attribute for p in self._predicates]

    def __len__(self) -> int:
        return len(self._predicates)

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self._predicates)

    def matches(self, row: Mapping[str, object]) -> bool:
        """Whether ``row`` satisfies every predicate in the conjunction."""
        return all(predicate.matches(row) for predicate in self._predicates)

    def replace(self, old: Predicate, new: Predicate) -> "Conjunction":
        """A copy with ``old`` replaced by ``new`` (used to apply refinements)."""
        if old not in self._predicates:
            raise QueryError(f"predicate {old!r} is not part of this conjunction")
        replaced = [new if p == old else p for p in self._predicates]
        return Conjunction(replaced)

    def without(self, predicate: Predicate) -> "Conjunction":
        """A copy with ``predicate`` removed."""
        return Conjunction([p for p in self._predicates if p != predicate])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Conjunction) and self._predicates == other._predicates

    def __hash__(self) -> int:
        return hash(self._predicates)

    def __repr__(self) -> str:
        if not self._predicates:
            return "Conjunction(TRUE)"
        return "Conjunction(" + " AND ".join(repr(p) for p in self._predicates) + ")"
