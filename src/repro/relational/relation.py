"""The :class:`Relation` container: a schema plus an ordered bag of rows."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SchemaError
from repro.relational.predicates import Conjunction
from repro.relational.schema import Attribute, AttributeKind, Schema


class Relation:
    """An ordered bag of tuples conforming to a :class:`Schema`.

    Rows are stored as plain tuples aligned with the schema.  All operations
    return new relations; relations are never mutated in place.
    """

    __slots__ = ("name", "schema", "_rows")

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[object]] = (),
    ) -> None:
        self.name = name
        self.schema = schema
        width = len(schema)
        stored: list[tuple[object, ...]] = []
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise SchemaError(
                    f"row {row!r} has {len(row)} values, schema {schema!r} expects {width}"
                )
            stored.append(row)
        self._rows = stored

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_dicts(
        cls,
        name: str,
        schema: Schema,
        records: Iterable[Mapping[str, object]],
    ) -> "Relation":
        """Build a relation from dict records (missing keys become ``None``)."""
        names = schema.names
        rows = [tuple(record.get(column) for column in names) for record in records]
        return cls(name, schema, rows)

    # -- basic accessors --------------------------------------------------------

    @property
    def rows(self) -> list[tuple[object, ...]]:
        """The stored rows (copy of the list, rows themselves are immutable)."""
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[object, ...]]:
        return iter(self._rows)

    def __getitem__(self, position: int) -> tuple[object, ...]:
        return self._rows[position]

    def is_empty(self) -> bool:
        return not self._rows

    def column(self, attribute: str) -> list[object]:
        """All values of ``attribute`` in row order."""
        index = self.schema.index_of(attribute)
        return [row[index] for row in self._rows]

    def domain(self, attribute: str) -> list[object]:
        """Distinct values of ``attribute`` (sorted for determinism)."""
        values = set(self.column(attribute))
        values.discard(None)
        return sorted(values, key=lambda v: (str(type(v)), v))

    def row_as_dict(self, position: int) -> dict[str, object]:
        return dict(zip(self.schema.names, self._rows[position]))

    def iter_dicts(self) -> Iterator[dict[str, object]]:
        names = self.schema.names
        for row in self._rows:
            yield dict(zip(names, row))

    def value(self, position: int, attribute: str) -> object:
        """Value of ``attribute`` in the row at ``position``."""
        return self._rows[position][self.schema.index_of(attribute)]

    # -- relational operators ----------------------------------------------------

    def select(self, condition: Conjunction | Callable[[dict], bool]) -> "Relation":
        """Rows satisfying ``condition`` (a Conjunction or a row-dict callable)."""
        names = self.schema.names
        if isinstance(condition, Conjunction):
            predicate = condition.matches
        else:
            predicate = condition
        kept = [
            row
            for row in self._rows
            if predicate(dict(zip(names, row)))
        ]
        return Relation(self.name, self.schema, kept)

    def project(self, attributes: Sequence[str], distinct: bool = False) -> "Relation":
        """Project onto ``attributes``; optionally de-duplicate keeping first."""
        indices = [self.schema.index_of(attribute) for attribute in attributes]
        projected_schema = self.schema.project(attributes)
        rows = [tuple(row[i] for i in indices) for row in self._rows]
        if distinct:
            seen: set[tuple[object, ...]] = set()
            unique: list[tuple[object, ...]] = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        return Relation(self.name, projected_schema, rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join on all shared attribute names (hash join)."""
        shared = self.schema.common_attributes(other.schema)
        joined_schema = self.schema.join(other.schema)
        if not shared:
            # Cartesian product (needed for TPC-H style star joins where the
            # join keys may arrive in later relations).
            rows = [
                left + right for left in self._rows for right in other._rows
            ]
            return Relation(f"{self.name}*{other.name}", joined_schema, rows)

        left_key = [self.schema.index_of(name) for name in shared]
        right_key = [other.schema.index_of(name) for name in shared]
        right_extra = [
            other.schema.index_of(attribute.name)
            for attribute in other.schema
            if attribute.name not in self.schema
        ]

        buckets: dict[tuple[object, ...], list[tuple[object, ...]]] = {}
        for row in other._rows:
            key = tuple(row[i] for i in right_key)
            buckets.setdefault(key, []).append(row)

        rows = []
        for row in self._rows:
            key = tuple(row[i] for i in left_key)
            for match in buckets.get(key, ()):
                rows.append(row + tuple(match[i] for i in right_extra))
        return Relation(f"{self.name}*{other.name}", joined_schema, rows)

    def order_by(self, attribute: str, descending: bool = True) -> "Relation":
        """Stable sort by ``attribute`` (ties keep their current order)."""
        index = self.schema.index_of(attribute)
        ordered = sorted(
            self._rows, key=lambda row: row[index], reverse=descending
        )
        return Relation(self.name, self.schema, ordered)

    def head(self, k: int) -> "Relation":
        """The first ``k`` rows (the top-k of a ranked relation)."""
        return Relation(self.name, self.schema, self._rows[:k])

    def concat(self, other: "Relation") -> "Relation":
        """Append the rows of ``other`` (schemas must match)."""
        if self.schema != other.schema:
            raise SchemaError("cannot concatenate relations with different schemas")
        return Relation(self.name, self.schema, self._rows + other._rows)

    def rename(self, name: str) -> "Relation":
        return Relation(name, self.schema, self._rows)

    def with_column(
        self,
        attribute: Attribute,
        compute: Callable[[dict], object],
    ) -> "Relation":
        """Add a derived column computed from each row (e.g. MEPS utilization)."""
        if attribute.name in self.schema:
            raise SchemaError(f"attribute {attribute.name!r} already exists")
        names = self.schema.names
        new_schema = Schema(list(self.schema.attributes) + [attribute])
        rows = [
            row + (compute(dict(zip(names, row))),) for row in self._rows
        ]
        return Relation(self.name, new_schema, rows)

    # -- statistics ----------------------------------------------------------------

    def count_where(self, condition: Callable[[dict], bool]) -> int:
        """Number of rows satisfying a row-dict predicate."""
        names = self.schema.names
        return sum(1 for row in self._rows if condition(dict(zip(names, row))))

    def min_max(self, attribute: str) -> tuple[float, float]:
        """Minimum and maximum of a numerical attribute (ignores ``None``)."""
        if self.schema.kind_of(attribute) is not AttributeKind.NUMERICAL:
            raise SchemaError(f"attribute {attribute!r} is not numerical")
        values = [float(v) for v in self.column(attribute) if v is not None]
        if not values:
            raise SchemaError(f"attribute {attribute!r} has no non-null values")
        return min(values), max(values)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, rows={len(self._rows)}, schema={self.schema!r})"
