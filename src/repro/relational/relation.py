"""The :class:`Relation` container: a schema plus an ordered bag of rows.

Relations have a dual representation.  They can be constructed from row
tuples (the original API, used by the dataset generators and tests) or from a
:class:`~repro.relational.columnar.ColumnStore`; either side is materialised
lazily from the other.  When NumPy is available every relational operator
runs on the columnar representation — selection as boolean masks, ordering as
a stable ``argsort``, joins as hash joins over key-column views with
fancy-indexed gathers, derived-column/concat/callable operators over column
iterators — and falls back to the original row-at-a-time implementation
otherwise (or under :func:`repro.relational.columnar.rowwise_fallback`).

Dual-representation invariants:

* At least one of ``_rows`` / ``_store`` is always populated; whichever side
  is missing is derived on first use and cached (``_materialized()`` /
  ``_columns()``).  Conversion never loses information — object-dtype columns
  round-trip the same Python objects.
* Both representations are immutable once attached: operators return new
  relations, and the row order is the single source of ranking truth in both.
* Every operator must produce identical rows, row order, and value *types* on
  either representation; ``tests/relational/test_columnar_parity.py`` holds
  the engines to byte-identical output on every registered dataset.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SchemaError
from repro.relational import columnar
from repro.relational.columnar import ColumnStore
from repro.relational.predicates import Conjunction
from repro.relational.schema import Attribute, AttributeKind, Schema

try:  # pragma: no cover - optional, gated via columnar.vectorization_enabled()
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def _domain_sort_key(value: object) -> tuple:
    """Total order over domain values: numbers first (by magnitude), then others.

    Normalising numeric values to ``float`` keeps mixed ``int``/``float``
    domains in one ordered run (``1`` before ``1.5`` before ``2``) instead of
    splitting them by type name.
    """
    if isinstance(value, (int, float)) and not isinstance(value, complex):
        return (0, float(value), "")
    return (1, str(type(value)), str(value))


class Relation:
    """An ordered bag of tuples conforming to a :class:`Schema`.

    All operations return new relations; relations are never mutated in place.
    """

    __slots__ = ("name", "schema", "_rows", "_store")

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[object]] = (),
    ) -> None:
        self.name = name
        self.schema = schema
        width = len(schema)
        stored: list[tuple[object, ...]] = []
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise SchemaError(
                    f"row {row!r} has {len(row)} values, schema {schema!r} expects {width}"
                )
            stored.append(row)
        self._rows = stored
        self._store: ColumnStore | None = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_dicts(
        cls,
        name: str,
        schema: Schema,
        records: Iterable[Mapping[str, object]],
    ) -> "Relation":
        """Build a relation from dict records (missing keys become ``None``)."""
        names = schema.names
        rows = [tuple(record.get(column) for column in names) for record in records]
        return cls(name, schema, rows)

    @classmethod
    def from_store(cls, name: str, store: ColumnStore) -> "Relation":
        """Wrap a column store without materialising rows."""
        relation = cls.__new__(cls)
        relation.name = name
        relation.schema = store.schema
        relation._rows = None
        relation._store = store
        return relation

    # -- representation management -----------------------------------------------

    def _materialized(self) -> list[tuple[object, ...]]:
        """The row tuples, converting from columns on first use."""
        if self._rows is None:
            self._rows = self._store.to_rows()
        return self._rows

    def _columns(self) -> ColumnStore | None:
        """The column store when the vectorized engine should be used."""
        if not columnar.vectorization_enabled():
            return None
        if self._store is None:
            self._store = ColumnStore.from_rows(self.schema, self._rows)
        return self._store

    def column_store(self) -> ColumnStore | None:
        """Public accessor for the columnar representation (or ``None``)."""
        return self._columns()

    # -- basic accessors --------------------------------------------------------

    @property
    def rows(self) -> list[tuple[object, ...]]:
        """The stored rows (copy of the list, rows themselves are immutable)."""
        return list(self._materialized())

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return self._store.length

    def __iter__(self) -> Iterator[tuple[object, ...]]:
        return iter(self._materialized())

    def __getitem__(self, position: int) -> tuple[object, ...]:
        return self._materialized()[position]

    def is_empty(self) -> bool:
        return len(self) == 0

    def column(self, attribute: str) -> list[object]:
        """All values of ``attribute`` in row order."""
        index = self.schema.index_of(attribute)
        if self._rows is None:
            return self._store.array(attribute).tolist()
        return [row[index] for row in self._rows]

    def domain(self, attribute: str) -> list[object]:
        """Distinct values of ``attribute`` (sorted for determinism).

        Numeric values are normalised to a common sort key, so mixed
        ``int``/``float`` domains come out in true numeric order.
        """
        values = set(self.column(attribute))
        values.discard(None)
        return sorted(values, key=_domain_sort_key)

    def row_as_dict(self, position: int) -> dict[str, object]:
        return dict(zip(self.schema.names, self._materialized()[position]))

    def iter_dicts(self) -> Iterator[dict[str, object]]:
        """Rows as attribute → value dicts, in row order.

        Store-backed relations iterate straight over their columns instead of
        materialising (and caching) the row tuples first.
        """
        names = self.schema.names
        if self._rows is None:
            store = self._store
            if not names:
                for _ in range(store.length):
                    yield {}
                return
            columns = [store.array(name).tolist() for name in names]
            for row in zip(*columns):
                yield dict(zip(names, row))
            return
        for row in self._rows:
            yield dict(zip(names, row))

    def value(self, position: int, attribute: str) -> object:
        """Value of ``attribute`` in the row at ``position``."""
        return self._materialized()[position][self.schema.index_of(attribute)]

    # -- relational operators ----------------------------------------------------

    def select(self, condition: Conjunction | Callable[[dict], bool]) -> "Relation":
        """Rows satisfying ``condition`` (a Conjunction or a row-dict callable)."""
        if isinstance(condition, Conjunction):
            if not len(condition):
                # TRUE selects everything; relations are immutable, so the
                # unfiltered ~Q evaluations can share this one instead of
                # gathering a full copy.
                return self
            store = self._columns()
            if store is not None:
                mask = store.mask(condition)
                if mask is not None:
                    return Relation.from_store(
                        self.name, store.take(_np.flatnonzero(mask))
                    )
            predicate = condition.matches
        else:
            predicate = condition
        store = self._columns()
        if store is not None:
            # Callable (or mask-incompatible) conditions still evaluate row by
            # row, but the result stays columnar: a coordinate take over the
            # shared store instead of a fresh row relation.
            kept = [
                position
                for position, values in enumerate(self.iter_dicts())
                if predicate(values)
            ]
            return Relation.from_store(
                self.name, store.take(_np.asarray(kept, dtype=_np.int64))
            )
        names = self.schema.names
        kept = [
            row
            for row in self._materialized()
            if predicate(dict(zip(names, row)))
        ]
        return Relation(self.name, self.schema, kept)

    def take(self, positions) -> "Relation":
        """Rows at the given positions, in the given order."""
        store = self._columns()
        if store is not None:
            return Relation.from_store(self.name, store.take(positions))
        rows = self._materialized()
        return Relation(self.name, self.schema, [rows[p] for p in positions])

    def project(self, attributes: Sequence[str], distinct: bool = False) -> "Relation":
        """Project onto ``attributes``; optionally de-duplicate keeping first."""
        store = self._columns()
        if store is not None:
            projected = store.project(attributes)
            if distinct:
                first = projected.first_occurrence(attributes)
                if first is None:
                    return self._project_rows(attributes, distinct)
                projected = projected.take(first)
            return Relation.from_store(self.name, projected)
        return self._project_rows(attributes, distinct)

    def _project_rows(self, attributes: Sequence[str], distinct: bool) -> "Relation":
        indices = [self.schema.index_of(attribute) for attribute in attributes]
        projected_schema = self.schema.project(attributes)
        rows = [tuple(row[i] for i in indices) for row in self._materialized()]
        if distinct:
            seen: set[tuple[object, ...]] = set()
            unique: list[tuple[object, ...]] = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        return Relation(self.name, projected_schema, rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join on all shared attribute names (hash join).

        On the columnar path the hash table is keyed on views of the shared
        key columns and the output is gathered with fancy indexing, so full
        result rows are never materialised as tuples.
        """
        joined_schema = self.schema.join(other.schema)
        left_store = self._columns()
        right_store = other._columns() if left_store is not None else None
        if left_store is not None and right_store is not None:
            return self._natural_join_columnar(
                other, joined_schema, left_store, right_store
            )
        return self._natural_join_rows(other, joined_schema)

    def _natural_join_columnar(
        self,
        other: "Relation",
        joined_schema: Schema,
        left_store: ColumnStore,
        right_store: ColumnStore,
    ) -> "Relation":
        shared = self.schema.common_attributes(other.schema)
        right_extra = [
            attribute.name
            for attribute in other.schema
            if attribute.name not in self.schema
        ]
        if not shared:
            # Cartesian product (TPC-H style star joins).
            left_idx = _np.repeat(_np.arange(len(self)), len(other))
            right_idx = _np.tile(_np.arange(len(other)), len(self))
        else:
            right_keys = list(
                zip(*(right_store.array(name).tolist() for name in shared))
            )
            buckets: dict[tuple[object, ...], list[int]] = {}
            for position, key in enumerate(right_keys):
                buckets.setdefault(key, []).append(position)
            left_keys = list(
                zip(*(left_store.array(name).tolist() for name in shared))
            )
            left_positions: list[int] = []
            right_positions: list[int] = []
            for position, key in enumerate(left_keys):
                for match in buckets.get(key, ()):
                    left_positions.append(position)
                    right_positions.append(match)
            left_idx = _np.array(left_positions, dtype=_np.int64)
            right_idx = _np.array(right_positions, dtype=_np.int64)
        arrays = [left_store.array(name)[left_idx] for name in self.schema.names]
        arrays.extend(right_store.array(name)[right_idx] for name in right_extra)
        store = ColumnStore(joined_schema, arrays, int(left_idx.shape[0]))
        return Relation.from_store(f"{self.name}*{other.name}", store)

    def _natural_join_rows(self, other: "Relation", joined_schema: Schema) -> "Relation":
        shared = self.schema.common_attributes(other.schema)
        left_rows = self._materialized()
        right_rows = other._materialized()
        if not shared:
            rows = [left + right for left in left_rows for right in right_rows]
            return Relation(f"{self.name}*{other.name}", joined_schema, rows)

        left_key = [self.schema.index_of(name) for name in shared]
        right_key = [other.schema.index_of(name) for name in shared]
        right_extra = [
            other.schema.index_of(attribute.name)
            for attribute in other.schema
            if attribute.name not in self.schema
        ]

        buckets: dict[tuple[object, ...], list[tuple[object, ...]]] = {}
        for row in right_rows:
            key = tuple(row[i] for i in right_key)
            buckets.setdefault(key, []).append(row)

        rows = []
        for row in left_rows:
            key = tuple(row[i] for i in left_key)
            for match in buckets.get(key, ()):
                rows.append(row + tuple(match[i] for i in right_extra))
        return Relation(f"{self.name}*{other.name}", joined_schema, rows)

    def order_by(self, attribute: str, descending: bool = True) -> "Relation":
        """Stable sort by ``attribute`` (ties keep their current order).

        ``None`` values sort last in both directions, preserving their
        relative order, instead of raising ``TypeError``.
        """
        store = self._columns()
        # The float view would sort float-parseable *strings* numerically,
        # diverging from the row path's lexicographic order — so the columnar
        # sort is only used for attributes declared numerical.
        if (
            store is not None
            and attribute in self.schema
            and self.schema.attribute(attribute).is_numerical
        ):
            order = store.argsort_by(attribute, descending)
            if order is not None:
                return Relation.from_store(self.name, store.take(order))
        index = self.schema.index_of(attribute)
        rows = self._materialized()
        non_null = [row for row in rows if row[index] is not None]
        nulls = [row for row in rows if row[index] is None]
        ordered = sorted(non_null, key=lambda row: row[index], reverse=descending)
        return Relation(self.name, self.schema, ordered + nulls)

    def head(self, k: int) -> "Relation":
        """The first ``k`` rows (the top-k of a ranked relation)."""
        store = self._columns()
        if store is not None:
            return Relation.from_store(self.name, store.head(k))
        return Relation(self.name, self.schema, self._materialized()[:k])

    def concat(self, other: "Relation") -> "Relation":
        """Append the rows of ``other`` (schemas must match)."""
        if self.schema != other.schema:
            raise SchemaError("cannot concatenate relations with different schemas")
        left = self._columns()
        right = other._columns() if left is not None else None
        if left is not None and right is not None:
            return Relation.from_store(self.name, left.concatenated(right))
        return Relation(
            self.name, self.schema, self._materialized() + other._materialized()
        )

    def rename(self, name: str) -> "Relation":
        if self._rows is None:
            return Relation.from_store(name, self._store)
        return Relation(name, self.schema, self._rows)

    def with_column(
        self,
        attribute: Attribute,
        compute: Callable[[dict], object],
    ) -> "Relation":
        """Add a derived column computed from each row (e.g. MEPS utilization)."""
        if attribute.name in self.schema:
            raise SchemaError(f"attribute {attribute.name!r} already exists")
        names = self.schema.names
        new_schema = Schema(list(self.schema.attributes) + [attribute])
        store = self._columns()
        if store is not None:
            computed = [compute(values) for values in self.iter_dicts()]
            return Relation.from_store(
                self.name, store.with_column(new_schema, computed)
            )
        rows = [
            row + (compute(dict(zip(names, row))),) for row in self._materialized()
        ]
        return Relation(self.name, new_schema, rows)

    # -- statistics ----------------------------------------------------------------

    def count_where(self, condition: Callable[[dict], bool]) -> int:
        """Number of rows satisfying a row-dict predicate."""
        return sum(1 for values in self.iter_dicts() if condition(values))

    def group_count(self, conditions: Mapping[str, object]) -> int:
        """Rows matching every ``attribute == value`` equality condition.

        This is the vectorized membership count behind cardinality-constraint
        evaluation; missing attributes read as ``None`` (row semantics).
        """
        store = self._columns()
        if store is not None and all(
            attribute in self.schema for attribute in conditions
        ):
            fast = store.count_conditions(conditions)
            if fast is not None:
                return fast
        return self.count_where(
            lambda row: all(
                row.get(attribute) == value for attribute, value in conditions.items()
            )
        )

    def min_max(self, attribute: str) -> tuple[float, float]:
        """Minimum and maximum of a numerical attribute (ignores ``None``)."""
        if self.schema.kind_of(attribute) is not AttributeKind.NUMERICAL:
            raise SchemaError(f"attribute {attribute!r} is not numerical")
        values = [float(v) for v in self.column(attribute) if v is not None]
        if not values:
            raise SchemaError(f"attribute {attribute!r} has no non-null values")
        return min(values), max(values)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, rows={len(self)}, schema={self.schema!r})"
