"""SQLite execution backend for SPJ queries (standard library ``sqlite3``).

The paper evaluates queries on DuckDB; sqlite plays that role here.  The
backend is a first-class execution engine behind
:class:`~repro.relational.executor.QueryExecutor` (selected with
``QueryExecutor(db, backend="sqlite")`` or ``REPRO_EXECUTOR_BACKEND=sqlite``):
selection, ordering and DISTINCT de-duplication are pushed down into sqlite,
and only the *row coordinates* of the result cross back into Python, where the
executor gathers them column-wise from the original relations — so paper-scale
joins are never materialised as Python tuples.

Pushdown queries are rendered once per query *shape* — the parameter-free
skeleton of tables, predicate attributes/operators and IN-list sizes — with
``?`` placeholders for every threshold and value.  Candidate refinements of
the same query therefore reuse one compiled sqlite statement (the connection's
statement cache is keyed on SQL text) with freshly bound parameters.  Join-key
columns and the ranking attribute are indexed on first use.

The original cross-check API (:meth:`SQLiteExecutor.execute` returning
projected values, and :meth:`SQLiteExecutor.execute_sql` for raw SQL) is kept
for the examples and the property-based tests.

Persistence: pointing the executor at a file (``path=`` /
``REPRO_EXECUTOR_DB``) makes the indexed database survive the process.  Each
table is stored together with a content fingerprint; a later process that
opens the same file with the same data *adopts* the stored table instead of
reloading it, so repeated benchmark runs — and the forked workers of the
parallel sweep engine — skip the load phase entirely.  The fingerprint hashes
the schema, the row count and a deterministic sample of rows; a persisted
file is therefore assumed to be dedicated to one dataset configuration
(within one process, swapped relations are still tracked by object identity
and always reloaded).
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import time
from typing import Callable, Sequence, TypeVar

from repro import faults
from repro.core.deadline import current_deadline
from repro.exceptions import StoreCorruptionError, StoreLockedError
from repro.relational.database import Database
from repro.relational.predicates import Conjunction, NumericalPredicate
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation
from repro.relational.schema import AttributeKind
from repro.relational.sqlgen import _quote_identifier, render_where_params

#: Rows sampled (evenly, plus first and last) into a relation fingerprint.
_FINGERPRINT_SAMPLE = 1024

#: Locked-store retry backoff: base doubles per retry up to the cap.
_LOCK_RETRY_BASE_S = 0.02
_LOCK_RETRY_CAP_S = 0.25
#: Total lock-retry budget when no request deadline is in scope.
_LOCK_RETRY_DEFAULT_BUDGET_S = 2.0
#: Automatic store rebuilds tolerated within one guarded operation.
_MAX_REBUILDS_PER_CALL = 2
#: Busy timeout (ms) for persistent stores; clamped to the request deadline.
_BUSY_TIMEOUT_MS = 30000

_T = TypeVar("_T")


def _is_lock_error(error: sqlite3.OperationalError) -> bool:
    message = str(error)
    return "locked" in message or "busy" in message


def _is_corruption_error(error: sqlite3.DatabaseError) -> bool:
    message = str(error)
    return "malformed" in message or "not a database" in message


def _predicate_parameters(where: Conjunction) -> list:
    """Bound parameter values for a pushdown statement, in placeholder order."""
    parameters: list = []
    for predicate in where:
        if isinstance(predicate, NumericalPredicate):
            parameters.append(predicate.constant)
        else:
            parameters.extend(v for v in predicate.values if v is not None)
    return parameters


def relation_fingerprint(relation: Relation) -> str:
    """Content fingerprint used to validate persisted tables across processes."""
    digest = hashlib.sha256()
    digest.update(
        repr(
            (
                relation.name,
                [(a.name, a.kind.value) for a in relation.schema],
                len(relation),
            )
        ).encode()
    )
    rows = relation.rows
    step = max(1, len(rows) // _FINGERPRINT_SAMPLE)
    digest.update(repr(rows[::step]).encode())
    if rows:
        digest.update(repr(rows[-1]).encode())
    return digest.hexdigest()


class SQLiteExecutor:
    """Materialises a :class:`Database` into sqlite and runs queries as SQL."""

    def __init__(self, database: Database, path: str = ":memory:") -> None:
        self.path = path
        # Each SQLiteExecutor is used by exactly one thread (QueryExecutor
        # hands out one per thread from its connection pool), but pool
        # eviction and session teardown close connections from *another*
        # thread — which sqlite3 only permits with check_same_thread=False.
        self.connection = sqlite3.connect(
            path, cached_statements=256, check_same_thread=False
        )
        self._database = database
        self._persistent = path != ":memory:"
        #: Relations actually (re)loaded by this process (0 on a warm open).
        self.load_count = 0
        #: Automatic rebuilds performed after corruption detection.
        self.rebuilds = 0
        #: Guarded store accesses (also the fault-injection key stream).
        self._access_count = 0
        #: Loaded relation per table name.  Holding the object itself (not a
        #: bare id) keeps it alive, so a replacement relation can never reuse
        #: the freed object's id and masquerade as the loaded one.
        self._loaded: dict[str, Relation] = {}
        self._indexed: set[tuple[str, str]] = set()
        self._sql_cache: dict[tuple, str] = {}
        self._window_functions = sqlite3.sqlite_version_info >= (3, 25, 0)
        try:
            if self._persistent:
                # Concurrent pool workers may open the file while the parent
                # is still writing; wait for the writer instead of failing.
                self.connection.execute(f"PRAGMA busy_timeout = {_BUSY_TIMEOUT_MS}")
                self.connection.execute(
                    "CREATE TABLE IF NOT EXISTS __repro_fingerprints "
                    "(name TEXT PRIMARY KEY, fingerprint TEXT)"
                )
            for relation in database:
                self._ensure_relation(relation)
            self.connection.commit()
        except sqlite3.DatabaseError as error:
            # An already-corrupted file on disk: rebuild instead of crashing.
            if not _is_corruption_error(error):
                raise
            self._rebuild()

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLiteExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- loading -------------------------------------------------------------------

    def _stored_fingerprint(self, name: str) -> str | None:
        if not self._persistent:
            return None
        row = self.connection.execute(
            "SELECT fingerprint FROM __repro_fingerprints WHERE name = ?", (name,)
        ).fetchone()
        return row[0] if row else None

    def _table_exists(self, name: str) -> bool:
        row = self.connection.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = ?", (name,)
        ).fetchone()
        return row is not None

    def _ensure_relation(self, relation: Relation) -> bool:
        """Make sure ``relation`` is queryable; load only when needed.

        Returns ``True`` when the table was actually (re)loaded.  A relation
        already loaded by this process is tracked by object identity (same
        immutable object = unchanged contents); on first encounter, a
        persisted table with a matching content fingerprint is adopted
        without reloading.
        """
        name = relation.name
        if self._loaded.get(name) is relation:
            return False
        fingerprint = relation_fingerprint(relation) if self._persistent else None
        if name not in self._loaded and fingerprint is not None:
            if self._stored_fingerprint(name) == fingerprint and self._table_exists(name):
                self._loaded[name] = relation
                return False
        self.connection.execute(
            f"DROP TABLE IF EXISTS {_quote_identifier(relation.name)}"
        )
        self._indexed = {entry for entry in self._indexed if entry[0] != name}
        self._load_relation(relation)
        if fingerprint is not None:
            self.connection.execute(
                "INSERT OR REPLACE INTO __repro_fingerprints (name, fingerprint) "
                "VALUES (?, ?)",
                (name, fingerprint),
            )
        self.load_count += 1
        return True

    def _load_relation(self, relation: Relation) -> None:
        cursor = self.connection.cursor()
        columns = []
        for attribute in relation.schema:
            sql_type = (
                "REAL" if attribute.kind is AttributeKind.NUMERICAL else "TEXT"
            )
            columns.append(f"{_quote_identifier(attribute.name)} {sql_type}")
        cursor.execute(
            f"CREATE TABLE {_quote_identifier(relation.name)} "
            f"({', '.join(columns)})"
        )
        placeholders = ", ".join("?" for _ in relation.schema)
        cursor.executemany(
            f"INSERT INTO {_quote_identifier(relation.name)} "
            f"VALUES ({placeholders})",
            relation.rows,
        )
        self._loaded[relation.name] = relation

    def refresh(self) -> None:
        """Re-load any relation that was swapped in (or added to) the database.

        Relations are tracked by object identity: :class:`Relation` objects
        are immutable, so the same object means unchanged contents.
        """
        stale = False
        for relation in self._database:
            if self._ensure_relation(relation):
                stale = True
        if stale:
            # Alias/source resolution can change with a new schema.
            self._sql_cache.clear()
            self.connection.commit()

    # -- degradation: lock retries and corruption rebuild ------------------------------

    def _guarded(self, what: str, operation: Callable[[], _T]) -> _T:
        """Run a store operation with lock retries and automatic rebuild.

        A locked store is retried with capped exponential backoff until the
        ambient request deadline (or a fixed budget without one) runs out,
        then surfaces as the typed, retryable :class:`StoreLockedError`.  A
        corrupted store (``database disk image is malformed`` / ``file is not
        a database``) is rebuilt in place from the source relations — the
        store is a cache, so rebuilding is always safe — and only becomes
        :class:`StoreCorruptionError` when rebuilding does not help.
        """
        key = self._access_count
        self._access_count += 1
        deadline = current_deadline()
        if deadline is not None and self._persistent:
            # A waiter must give up in time to answer within the deadline.
            timeout_ms = max(1, int(min(30.0, deadline.remaining()) * 1000))
            self.connection.execute(f"PRAGMA busy_timeout = {timeout_ms}")
        attempt = 0
        rebuilds_this_call = 0
        delay = _LOCK_RETRY_BASE_S
        started = time.monotonic()
        while True:
            try:
                if faults.armed():
                    faults.fire("sqlite-lock", key=key, attempt=attempt)
                    faults.fire("sqlite-corrupt", key=key, attempt=attempt)
                return operation()
            except sqlite3.OperationalError as error:
                if not _is_lock_error(error):
                    raise
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= 0:
                        raise StoreLockedError(
                            f"store stayed locked during {what} until the "
                            "request deadline expired"
                        ) from error
                    sleep_s = min(delay, remaining)
                elif time.monotonic() - started >= _LOCK_RETRY_DEFAULT_BUDGET_S:
                    raise StoreLockedError(
                        f"store stayed locked during {what} for "
                        f"{_LOCK_RETRY_DEFAULT_BUDGET_S:g}s"
                    ) from error
                else:
                    sleep_s = delay
                time.sleep(sleep_s)
                delay = min(delay * 2, _LOCK_RETRY_CAP_S)
                attempt += 1
            except sqlite3.DatabaseError as error:
                if not _is_corruption_error(error):
                    raise
                if rebuilds_this_call >= _MAX_REBUILDS_PER_CALL:
                    raise StoreCorruptionError(
                        f"store stayed corrupted during {what} after "
                        f"{rebuilds_this_call} rebuild(s)"
                    ) from error
                self._rebuild()
                rebuilds_this_call += 1
                attempt += 1

    def _rebuild(self) -> None:
        """Drop the corrupted store and reload it from the source relations."""
        self.rebuilds += 1
        try:
            self.connection.close()
        except sqlite3.Error:
            pass
        if self._persistent:
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.remove(self.path + suffix)
                except FileNotFoundError:
                    pass
        try:
            self.connection = sqlite3.connect(
                self.path, cached_statements=256, check_same_thread=False
            )
            self._loaded.clear()
            self._indexed.clear()
            self._sql_cache.clear()
            if self._persistent:
                self.connection.execute(f"PRAGMA busy_timeout = {_BUSY_TIMEOUT_MS}")
                self.connection.execute(
                    "CREATE TABLE IF NOT EXISTS __repro_fingerprints "
                    "(name TEXT PRIMARY KEY, fingerprint TEXT)"
                )
            for relation in self._database:
                self._ensure_relation(relation)
            self.connection.commit()
        except sqlite3.Error as error:
            raise StoreCorruptionError(
                f"rebuilding the corrupted store at {self.path!r} failed"
            ) from error

    # -- pushdown execution -----------------------------------------------------------

    @property
    def supports_distinct_pushdown(self) -> bool:
        """Whether DISTINCT de-duplication runs inside sqlite (window functions)."""
        return self._window_functions

    def pushdown_positions(self, query: SPJQuery) -> list[tuple[int, ...]]:
        """Rank-ordered result coordinates: one 0-based row position per table.

        Selection, ordering and (window functions permitting) DISTINCT all run
        inside sqlite; the caller gathers the actual values from the original
        relations, so results are byte-identical to the in-memory engines.
        Predicate constants are bound as statement parameters, so refinement
        candidates of one query shape reuse a single compiled plan.

        Store failures degrade instead of crashing the request: locked
        stores are retried under the ambient deadline and corruption
        triggers an automatic rebuild (see :meth:`_guarded`).
        """
        return self._guarded("pushdown", lambda: self._pushdown_positions(query))

    def _pushdown_positions(self, query: SPJQuery) -> list[tuple[int, ...]]:
        self._ensure_indexes(query)
        sql = self._pushdown_sql(query)
        cursor = self.connection.execute(sql, _predicate_parameters(query.where))
        return cursor.fetchall()

    def _ensure_indexes(self, query: SPJQuery) -> None:
        """Index the query's join-key columns and its ranking attribute."""
        schemas = [self._database.relation(name).schema for name in query.tables]
        first_table: dict[str, int] = {}
        wanted: set[tuple[str, str]] = set()
        for position, schema in enumerate(schemas):
            for attribute in schema.names:
                if attribute in first_table:
                    wanted.add((query.tables[first_table[attribute]], attribute))
                    wanted.add((query.tables[position], attribute))
                else:
                    first_table[attribute] = position
        order_attribute = query.order_by.attribute
        if order_attribute in first_table:
            wanted.add((query.tables[first_table[order_attribute]], order_attribute))
        for table, column in sorted(wanted - self._indexed):
            index_name = _quote_identifier(f"idx_{table}_{column}")
            self.connection.execute(
                f"CREATE INDEX IF NOT EXISTS {index_name} ON "
                f"{_quote_identifier(table)} ({_quote_identifier(column)})"
            )
            self._indexed.add((table, column))

    def _pushdown_sql(self, query: SPJQuery) -> str:
        """The (cached) parameterized pushdown statement for a query shape."""
        shape = (
            query.tables,
            tuple(
                (predicate.attribute, predicate.operator.value)
                if isinstance(predicate, NumericalPredicate)
                else (
                    predicate.attribute,
                    sum(1 for v in predicate.values if v is not None),
                    None in predicate.values,
                )
                for predicate in query.where
            ),
            query.order_by.attribute,
            query.order_by.descending,
            query.distinct,
            query.select,
        )
        sql = self._sql_cache.get(shape)
        if sql is None:
            sql = self._sql_cache[shape] = self._build_pushdown_sql(query)
        return sql

    def _aliased_join(self, tables) -> tuple[list[str], dict[str, str], list[str]]:
        """Aliases, attribute -> alias map and FROM parts of the natural join.

        Natural-join semantics with explicit conditions: each shared
        attribute equates with the first table that carries it, and IS (not
        =) matches the in-memory hash join where NULL keys join with NULL.
        Shared by the pushdown statement and the annotation scan so both
        always join identically.
        """
        aliases = [f"t{i}" for i in range(len(tables))]
        schemas = [self._database.relation(name).schema for name in tables]
        source: dict[str, str] = {}
        for name in schemas[0].names:
            source[name] = aliases[0]
        from_parts = [f"{_quote_identifier(tables[0])} AS {aliases[0]}"]
        for position in range(1, len(tables)):
            alias = aliases[position]
            quoted = f"{_quote_identifier(tables[position])} AS {alias}"
            shared = [name for name in schemas[position].names if name in source]
            if shared:
                conditions = " AND ".join(
                    f"{source[name]}.{_quote_identifier(name)} IS "
                    f"{alias}.{_quote_identifier(name)}"
                    for name in shared
                )
                from_parts.append(f"JOIN {quoted} ON {conditions}")
            else:
                from_parts.append(f"CROSS JOIN {quoted}")
            for name in schemas[position].names:
                source.setdefault(name, alias)
        return aliases, source, from_parts

    def _build_pushdown_sql(self, query: SPJQuery) -> str:
        aliases, source, from_parts = self._aliased_join(query.tables)

        where_parts = []
        for predicate in query.where:
            column = f"{source[predicate.attribute]}.{_quote_identifier(predicate.attribute)}"
            if isinstance(predicate, NumericalPredicate):
                where_parts.append(f"{column} {predicate.operator.value} ?")
                continue
            clauses = []
            non_null_count = sum(1 for v in predicate.values if v is not None)
            if non_null_count:
                placeholders = ", ".join("?" for _ in range(non_null_count))
                clauses.append(f"{column} IN ({placeholders})")
            if None in predicate.values:
                # Row semantics: None matches a categorical predicate that
                # lists None, while SQL IN-lists never match NULL.
                clauses.append(f"{column} IS NULL")
            where_parts.append(
                clauses[0] if len(clauses) == 1 else "(" + " OR ".join(clauses) + ")"
            )
        where_clause = " AND ".join(where_parts) if where_parts else "1 = 1"

        # Total, deterministic order: the ranking attribute with NULLs last,
        # then the base-table row positions — exactly the in-memory engine's
        # stable sort over the left-deep join order.
        rank = f"{source[query.order_by.attribute]}.{_quote_identifier(query.order_by.attribute)}"
        direction = "DESC" if query.order_by.descending else "ASC"
        rowids = ", ".join(f"{alias}.rowid" for alias in aliases)
        from_clause = " ".join(from_parts)

        if query.distinct and query.select and self._window_functions:
            partition = ", ".join(
                f"{source[name]}.{_quote_identifier(name)}" for name in query.select
            )
            inner_rids = ", ".join(
                f"{aliases[i]}.rowid AS __r{i}" for i in range(len(aliases))
            )
            window_order = f"({rank} IS NULL), {rank} {direction}, {rowids}"
            inner = (
                f"SELECT {inner_rids}, ({rank} IS NULL) AS __rank_null, "
                f"{rank} AS __rank, ROW_NUMBER() OVER "
                f"(PARTITION BY {partition} ORDER BY {window_order}) AS __pick "
                f"FROM {from_clause} WHERE {where_clause}"
            )
            outer_rids = ", ".join(f"__r{i} - 1" for i in range(len(aliases)))
            outer_order = ", ".join(
                ["__rank_null", f"__rank {direction}"]
                + [f"__r{i}" for i in range(len(aliases))]
            )
            return (
                f"SELECT {outer_rids} FROM ({inner}) "
                f"WHERE __pick = 1 ORDER BY {outer_order}"
            )

        rid_select = ", ".join(f"{alias}.rowid - 1" for alias in aliases)
        return (
            f"SELECT {rid_select} FROM {from_clause} WHERE {where_clause} "
            f"ORDER BY ({rank} IS NULL), {rank} {direction}, {rowids}"
        )

    # -- annotation pushdown -----------------------------------------------------------

    def annotation_scan(self, query: SPJQuery) -> list[tuple]:
        """Distinct lineage-atom value combinations of ``~Q(D)`` via ``GROUP BY``.

        One row per distinct combination of the query's predicate-attribute
        values across the unfiltered join, in predicate order (categorical
        attributes first, then numerical — matching the annotation pass).
        The annotation scan then interns one lineage set per combination
        instead of consulting per-predicate atom caches row by row.
        """
        return self._guarded("annotation scan", lambda: self._annotation_scan(query))

    def _annotation_scan(self, query: SPJQuery) -> list[tuple]:
        _, source, from_parts = self._aliased_join(query.tables)
        attributes = [
            predicate.attribute for predicate in query.categorical_predicates
        ] + [predicate.attribute for predicate in query.numerical_predicates]
        columns = ", ".join(
            f"{source[name]}.{_quote_identifier(name)}" for name in attributes
        )
        cursor = self.connection.execute(
            f"SELECT {columns} FROM {' '.join(from_parts)} GROUP BY {columns}"
        )
        return cursor.fetchall()

    # -- value-level execution (cross-checking and examples) --------------------------

    def execute(self, query: SPJQuery) -> list[tuple]:
        """Run ``query`` and return the projected rows in rank order.

        DISTINCT ranking queries are rewritten with GROUP BY so that sqlite can
        order groups by the best score among their duplicates, matching the
        "keep the better-ranked duplicate" semantics of the in-memory engine.
        """
        return self._guarded("execute", lambda: self._execute(query))

    def _execute(self, query: SPJQuery) -> list[tuple]:
        cursor = self.connection.cursor()
        sql, parameters = self._render(query)
        cursor.execute(sql, parameters)
        return [tuple(row) for row in cursor.fetchall()]

    def execute_sql(self, sql: str, parameters: Sequence = ()) -> list[tuple]:
        """Run raw SQL (escape hatch for tests and examples)."""
        cursor = self.connection.cursor()
        cursor.execute(sql, parameters)
        return [tuple(row) for row in cursor.fetchall()]

    def _render(self, query: SPJQuery) -> tuple[str, tuple]:
        """The query as SQL text plus its bound ``?`` parameters.

        Identifiers are quoted in; predicate values only ever travel in the
        parameter tuple (enforced by the ``sql-parameterization`` lint rule).
        """
        from_clause = " NATURAL JOIN ".join(
            _quote_identifier(table) for table in query.tables
        )
        where_clause, parameters = render_where_params(query.where)
        order_attribute = _quote_identifier(query.order_by.attribute)
        direction = "DESC" if query.order_by.descending else "ASC"

        if query.distinct and query.select:
            columns = ", ".join(_quote_identifier(name) for name in query.select)
            best = "MAX" if query.order_by.descending else "MIN"
            return (
                f"SELECT {columns} FROM {from_clause} WHERE {where_clause} "
                f"GROUP BY {columns} ORDER BY {best}({order_attribute}) {direction}",
                parameters,
            )

        columns = (
            ", ".join(_quote_identifier(name) for name in query.select)
            if query.select
            else "*"
        )
        return (
            f"SELECT {columns} FROM {from_clause} WHERE {where_clause} "
            f"ORDER BY {order_attribute} {direction}",
            parameters,
        )
