"""Executing SPJ queries on sqlite3 (standard library).

The paper evaluates queries on DuckDB; sqlite plays that role here.  The
backend is used for cross-checking the in-memory executor and in the examples
to demonstrate that refined queries are ordinary SQL that any engine can run.
"""

from __future__ import annotations

import sqlite3
from typing import Sequence

from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.schema import AttributeKind
from repro.relational.sqlgen import _quote_identifier, render_where


class SQLiteExecutor:
    """Materialises a :class:`Database` into sqlite and runs queries as SQL."""

    def __init__(self, database: Database, path: str = ":memory:") -> None:
        self.connection = sqlite3.connect(path)
        self._load(database)

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLiteExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- loading -------------------------------------------------------------------

    def _load(self, database: Database) -> None:
        cursor = self.connection.cursor()
        for relation in database:
            columns = []
            for attribute in relation.schema:
                sql_type = (
                    "REAL" if attribute.kind is AttributeKind.NUMERICAL else "TEXT"
                )
                columns.append(f"{_quote_identifier(attribute.name)} {sql_type}")
            cursor.execute(
                f"CREATE TABLE {_quote_identifier(relation.name)} "
                f"({', '.join(columns)})"
            )
            placeholders = ", ".join("?" for _ in relation.schema)
            cursor.executemany(
                f"INSERT INTO {_quote_identifier(relation.name)} "
                f"VALUES ({placeholders})",
                relation.rows,
            )
        self.connection.commit()

    # -- execution ------------------------------------------------------------------

    def execute(self, query: SPJQuery) -> list[tuple]:
        """Run ``query`` and return the projected rows in rank order.

        DISTINCT ranking queries are rewritten with GROUP BY so that sqlite can
        order groups by the best score among their duplicates, matching the
        "keep the better-ranked duplicate" semantics of the in-memory engine.
        """
        cursor = self.connection.cursor()
        cursor.execute(self._render(query))
        return [tuple(row) for row in cursor.fetchall()]

    def execute_sql(self, sql: str, parameters: Sequence = ()) -> list[tuple]:
        """Run raw SQL (escape hatch for tests and examples)."""
        cursor = self.connection.cursor()
        cursor.execute(sql, parameters)
        return [tuple(row) for row in cursor.fetchall()]

    def _render(self, query: SPJQuery) -> str:
        from_clause = " NATURAL JOIN ".join(
            _quote_identifier(table) for table in query.tables
        )
        where_clause = render_where(query.where)
        order_attribute = _quote_identifier(query.order_by.attribute)
        direction = "DESC" if query.order_by.descending else "ASC"

        if query.distinct and query.select:
            columns = ", ".join(_quote_identifier(name) for name in query.select)
            best = "MAX" if query.order_by.descending else "MIN"
            return (
                f"SELECT {columns} FROM {from_clause} WHERE {where_clause} "
                f"GROUP BY {columns} ORDER BY {best}({order_attribute}) {direction}"
            )

        columns = (
            ", ".join(_quote_identifier(name) for name in query.select)
            if query.select
            else "*"
        )
        return (
            f"SELECT {columns} FROM {from_clause} WHERE {where_clause} "
            f"ORDER BY {order_attribute} {direction}"
        )
