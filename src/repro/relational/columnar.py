"""NumPy-backed columnar storage for relations (the vectorized engine).

A :class:`ColumnStore` keeps a relation's data column-wise as ``object``-dtype
arrays so that rows round-trip exactly (the same Python objects come back out),
with two cached derived views per column:

* a ``float64`` view (``None`` mapped to NaN) for numerical comparisons and
  stable sorting, and
* a factorized integer-code view (value -> small int) for categorical
  membership tests and DISTINCT de-duplication.

Selection evaluates a :class:`~repro.relational.predicates.Conjunction` as one
boolean mask per predicate AND-ed together, instead of materialising a dict
per row.

Derived stores produced by :meth:`ColumnStore.take` / :meth:`ColumnStore.head`
/ :meth:`ColumnStore.project` are *deferred*: they record only the source
store and the row coordinates, and gather a column (or a cached float/code
view) the first time it is read, caching the result.  Chained derivations
compose their coordinates so every store points straight at its eager root.
This is what makes the exhaustive baselines cheap — a candidate refinement's
result is a coordinate set over the shared ``~Q(D)`` store, and only the
handful of columns its constraint counts actually touch are ever gathered.
:meth:`ColumnStore.materialize` forces the old eager semantics (used by the
benchmark suite to reconstruct the pre-batching cost model).

The module degrades gracefully: when NumPy is unavailable — or vectorization
is explicitly disabled via :func:`rowwise_fallback` — callers receive ``None``
from :func:`store_for` and fall back to the original row-at-a-time code paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

from repro.relational.predicates import (
    CategoricalPredicate,
    Conjunction,
    NumericalPredicate,
    Operator,
)
from repro.relational.schema import Schema

try:  # pragma: no cover - exercised implicitly by the whole suite
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


_VECTORIZATION_ENABLED = True


def numpy_available() -> bool:
    """Whether NumPy could be imported at all."""
    return _np is not None


def vectorization_enabled() -> bool:
    """Whether the columnar fast paths should be used."""
    return _VECTORIZATION_ENABLED and _np is not None


@contextmanager
def rowwise_fallback() -> Iterator[None]:
    """Temporarily force every relational operator onto the row-based path.

    Used by the parity test suite to compare the vectorized engine against the
    reference implementation on identical inputs.
    """
    global _VECTORIZATION_ENABLED
    previous = _VECTORIZATION_ENABLED
    _VECTORIZATION_ENABLED = False
    try:
        yield
    finally:
        _VECTORIZATION_ENABLED = previous


def _compose_coordinates(base, indices, parent_length: int):
    """Row coordinates equivalent to applying ``base`` then ``indices``.

    ``base`` and ``indices`` are each either a slice or an int array; the
    composition keeps deferred stores pointing at their eager root instead of
    building chains of parents.
    """
    if isinstance(base, slice):
        base_range = range(*base.indices(parent_length))
        if isinstance(indices, slice):
            sub = base_range[indices]
            stop = sub.stop if sub.stop >= 0 else None
            return slice(sub.start, stop, sub.step)
        # Python-style negative positions count from the end of the *base*
        # window, exactly as fancy indexing into the gathered array would.
        indices = _np.where(indices < 0, indices + len(base_range), indices)
        return (base_range.start + base_range.step * indices).astype(_np.int64)
    return base[indices]


class ColumnStore:
    """Column-wise storage of one relation's data.

    Arrays are ``object`` dtype and aligned with the schema; mutating them is
    forbidden by convention (relations are immutable).  A store is either
    *eager* (every column array present) or *deferred* (``_source`` holds the
    eager parent store plus the row coordinates into it; columns and cached
    views are gathered lazily on first access).
    """

    __slots__ = ("schema", "length", "_arrays", "_numeric", "_codes", "_source")

    def __init__(self, schema: Schema, arrays: Sequence, length: int) -> None:
        self.schema = schema
        self._arrays = list(arrays)
        self.length = int(length)
        self._numeric: dict = {}
        self._codes: dict = {}
        self._source: tuple | None = None

    @classmethod
    def _deferred(cls, schema: Schema, parent: "ColumnStore", indices, length: int) -> "ColumnStore":
        store = cls(schema, [None] * len(schema), length)
        store._source = (parent, indices)
        return store

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[tuple]) -> "ColumnStore":
        width = len(schema)
        count = len(rows)
        if count == 0:
            return cls(schema, [_np.empty(0, dtype=object) for _ in range(width)], 0)
        matrix = _np.empty((count, width), dtype=object)
        for j in range(width):
            matrix[:, j] = [row[j] for row in rows]
        return cls(schema, [matrix[:, j] for j in range(width)], count)

    # -- raw access ------------------------------------------------------------

    def array(self, name: str):
        """The object-dtype array of one column (gathered on first access)."""
        index = self.schema.index_of(name)
        array = self._arrays[index]
        if array is None:
            parent, indices = self._source
            array = self._arrays[index] = parent.array(name)[indices]
        return array

    def to_rows(self) -> list[tuple]:
        """Materialise the stored columns back into row tuples."""
        if not self._arrays:
            return [() for _ in range(self.length)]
        return list(zip(*(self.array(name).tolist() for name in self.schema.names)))

    def materialize(self) -> "ColumnStore":
        """Force every column gather and parent-view propagation.

        Restores the eager semantics derived stores had before gathering
        became lazy; the sweep-batching benchmark uses it to reconstruct the
        per-candidate cost of the old engine.
        """
        for name in self.schema.names:
            self.array(name)
        if self._source is not None:
            parent, _ = self._source
            for name in self.schema.names:
                if name in parent._numeric:
                    self.numeric(name)
                if name in parent._codes:
                    self.codes(name)
        return self

    # -- derived views ---------------------------------------------------------

    def numeric(self, name: str):
        """``float64`` view of a column (``None`` -> NaN); ``None`` if impossible."""
        if name in self._numeric:
            return self._numeric[name]
        if self._source is not None:
            parent, indices = self._source
            if name in parent._numeric:
                view = parent._numeric[name]
                view = None if view is None else view[indices]
                self._numeric[name] = view
                return view
        values = self.array(name).tolist()
        try:
            view = _np.array(
                [_np.nan if value is None else float(value) for value in values],
                dtype=float,
            )
        except (TypeError, ValueError):
            view = None
        self._numeric[name] = view
        return view

    def codes(self, name: str):
        """``(codes, mapping)`` factorization of a column; ``None`` if unhashable."""
        if name in self._codes:
            return self._codes[name]
        if self._source is not None:
            parent, indices = self._source
            if name in parent._codes:
                factorized = parent._codes[name]
                if factorized is None:
                    self._codes[name] = None
                    return None
                codes, mapping = factorized
                result = (codes[indices], mapping)
                self._codes[name] = result
                return result
        values = self.array(name).tolist()
        mapping: dict = {}
        codes = _np.empty(self.length, dtype=_np.int64)
        try:
            for position, value in enumerate(values):
                codes[position] = mapping.setdefault(value, len(mapping))
        except TypeError:
            self._codes[name] = None
            return None
        result = (codes, mapping)
        self._codes[name] = result
        return result

    # -- derivations (propagate cached views) ----------------------------------

    def take(self, indices) -> "ColumnStore":
        """Rows at the given coordinates (a slice or an integer array).

        The result is a deferred store: no column is gathered until read.
        Taking from a deferred store composes the coordinates, so derivation
        chains stay one hop from the eager root.
        """
        if not isinstance(indices, (slice, _np.ndarray)):
            indices = _np.asarray(indices, dtype=_np.int64)
        if isinstance(indices, slice):
            length = len(range(*indices.indices(self.length)))
        else:
            if indices.dtype == bool:
                # Boolean masks select rows; the derived length is the number
                # of True entries, not the mask size.
                indices = _np.flatnonzero(indices)
            length = int(indices.shape[0])
        parent, coordinates = self, indices
        if self._source is not None:
            parent, base = self._source
            coordinates = _compose_coordinates(base, indices, parent.length)
        return ColumnStore._deferred(self.schema, parent, coordinates, length)

    def head(self, k: int) -> "ColumnStore":
        return self.take(slice(0, max(k, 0)))

    def project(self, names: Sequence[str]) -> "ColumnStore":
        """Restrict to a subset of columns (arrays and views are shared)."""
        projected = self.schema.project(names)
        if self._source is not None:
            parent, indices = self._source
            derived = ColumnStore._deferred(projected, parent, indices, self.length)
            for position, name in enumerate(names):
                array = self._arrays[self.schema.index_of(name)]
                if array is not None:
                    derived._arrays[position] = array
                if name in self._numeric:
                    derived._numeric[name] = self._numeric[name]
                if name in self._codes:
                    derived._codes[name] = self._codes[name]
            return derived
        derived = ColumnStore(
            projected,
            [self.array(name) for name in names],
            self.length,
        )
        for name in names:
            if name in self._numeric:
                derived._numeric[name] = self._numeric[name]
            if name in self._codes:
                derived._codes[name] = self._codes[name]
        return derived

    def with_column(self, schema: Schema, values: Sequence) -> "ColumnStore":
        """A store extended with one appended column holding ``values``.

        ``schema`` is the extended schema; cached views of the existing
        columns carry over.
        """
        column = _np.empty(self.length, dtype=object)
        for position, value in enumerate(values):
            column[position] = value
        arrays = [self.array(name) for name in self.schema.names]
        derived = ColumnStore(schema, arrays + [column], self.length)
        derived._numeric.update(self._numeric)
        derived._codes.update(self._codes)
        return derived

    def concatenated(self, other: "ColumnStore") -> "ColumnStore":
        """The rows of ``self`` followed by the rows of ``other`` (same schema)."""
        arrays = [
            _np.concatenate([self.array(name), other.array(name)])
            for name in self.schema.names
        ]
        return ColumnStore(self.schema, arrays, self.length + other.length)

    # -- vectorized operators ---------------------------------------------------

    def mask(self, conjunction: Conjunction):
        """Boolean selection mask for a conjunction; ``None`` -> caller fallback."""
        mask = _np.ones(self.length, dtype=bool)
        for predicate in conjunction:
            if isinstance(predicate, NumericalPredicate):
                part = self._numerical_mask(predicate)
            else:
                part = self._categorical_mask(predicate)
            if part is None:
                return None
            mask &= part
        return mask

    def _numerical_mask(self, predicate: NumericalPredicate):
        if predicate.attribute not in self.schema:
            # Row semantics: a missing attribute reads as None, which fails.
            return _np.zeros(self.length, dtype=bool)
        values = self.numeric(predicate.attribute)
        if values is None:
            return None
        constant = predicate.constant
        operator = predicate.operator
        # NaN (was None) compares False under every operator, matching the
        # row path's "missing/None fails" rule.
        if operator is Operator.LESS:
            return values < constant
        if operator is Operator.LESS_EQUAL:
            return values <= constant
        if operator is Operator.EQUAL:
            return values == constant
        if operator is Operator.GREATER:
            return values > constant
        return values >= constant

    def _categorical_mask(self, predicate: CategoricalPredicate):
        if predicate.attribute not in self.schema:
            return _np.full(self.length, None in predicate.values, dtype=bool)
        factorized = self.codes(predicate.attribute)
        if factorized is None:
            return None
        codes, mapping = factorized
        wanted = [mapping[value] for value in predicate.values if value in mapping]
        if not wanted:
            return _np.zeros(self.length, dtype=bool)
        if len(wanted) == 1:
            return codes == wanted[0]
        return _np.isin(codes, _np.array(wanted, dtype=_np.int64))

    def argsort_by(self, name: str, descending: bool):
        """Stable sort order by one column, NULLs last; ``None`` -> fallback.

        NaN (the image of ``None``) sorts to the end of ``argsort`` for both
        the negated and the plain key, which is exactly the deterministic
        "NULLs last" contract.
        """
        values = self.numeric(name)
        if values is None:
            return None
        keys = -values if descending else values
        return _np.argsort(keys, kind="stable")

    def first_occurrence(self, names: Sequence[str]):
        """Positions of the first row for each distinct key, in row order.

        ``None`` when any key column cannot be factorized.
        """
        columns = []
        for name in names:
            factorized = self.codes(name)
            if factorized is None:
                return None
            columns.append(factorized[0])
        if not columns:
            return _np.arange(min(self.length, 1))
        if len(columns) == 1:
            _, first = _np.unique(columns[0], return_index=True)
        else:
            stacked = _np.stack(columns, axis=1)
            _, first = _np.unique(stacked, axis=0, return_index=True)
        return _np.sort(first)

    def count_conditions(self, conditions: Mapping[str, object]):
        """Rows satisfying every ``attribute == value`` condition; ``None`` -> fallback."""
        mask = _np.ones(self.length, dtype=bool)
        for attribute, value in conditions.items():
            factorized = self.codes(attribute)
            if factorized is None:
                return None
            codes, mapping = factorized
            try:
                code = mapping.get(value)
            except TypeError:
                return None
            if code is None:
                return 0
            mask &= codes == code
        return int(mask.sum())


def combined_codes(store: ColumnStore, names: Sequence[str]):
    """A single ``int64`` array identifying each row's key over ``names``.

    Rows with equal values in every key column share a code; codes are
    assigned in first-seen order.  ``None`` when factorization is impossible.
    """
    if not names:
        return None
    parts = []
    for name in names:
        factorized = store.codes(name)
        if factorized is None:
            return None
        parts.append(factorized[0])
    if len(parts) == 1:
        return parts[0]
    mapping: dict = {}
    combined = _np.empty(store.length, dtype=_np.int64)
    for position, key in enumerate(zip(*(part.tolist() for part in parts))):
        combined[position] = mapping.setdefault(key, len(mapping))
    return combined


__all__ = [
    "ColumnStore",
    "combined_codes",
    "numpy_available",
    "rowwise_fallback",
    "vectorization_enabled",
]
