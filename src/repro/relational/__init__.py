"""An in-memory relational engine for conjunctive SPJ queries with ranking.

The paper evaluates refinements over a DBMS (DuckDB).  This subpackage is the
stand-in substrate: it provides schemas, relations, selection predicates,
Select-Project-Join queries with ``ORDER BY`` and ``DISTINCT``, an executor
producing ranked results, and a sqlite-backed executor used to cross-check the
in-memory engine against a real SQL engine.
"""

from repro.relational.schema import Attribute, AttributeKind, Schema
from repro.relational.relation import Relation
from repro.relational.predicates import (
    CategoricalPredicate,
    Conjunction,
    NumericalPredicate,
    Operator,
)
from repro.relational.query import OrderBy, SPJQuery
from repro.relational.database import Database
from repro.relational.executor import QueryExecutor, RankedResult
from repro.relational.sqlgen import render_sql
from repro.relational.sqlite_backend import SQLiteExecutor

__all__ = [
    "Attribute",
    "AttributeKind",
    "CategoricalPredicate",
    "Conjunction",
    "Database",
    "NumericalPredicate",
    "Operator",
    "OrderBy",
    "QueryExecutor",
    "RankedResult",
    "Relation",
    "SPJQuery",
    "SQLiteExecutor",
    "Schema",
    "render_sql",
]
