"""A relational engine for conjunctive SPJ queries with ranking.

The paper evaluates refinements over a DBMS (DuckDB).  This subpackage is the
stand-in substrate: schemas, dual-representation relations (row tuples and a
NumPy column store, converted lazily), selection predicates, and
Select-Project-Join queries with ``ORDER BY`` and ``DISTINCT``.

Queries run through :class:`QueryExecutor`, which offers two byte-identical
execution backends: the in-memory engine (vectorized when NumPy is available,
row-at-a-time otherwise) and a sqlite pushdown backend that evaluates
selection, ordering and DISTINCT inside sqlite and only gathers result row
coordinates back into Python.  Select a backend per executor
(``QueryExecutor(db, backend="sqlite")``) or process-wide via the
``REPRO_EXECUTOR_BACKEND`` environment variable.
"""

from repro.relational.database import Database
from repro.relational.executor import EXECUTOR_BACKENDS, QueryExecutor, RankedResult
from repro.relational.predicates import (
    CategoricalPredicate,
    Conjunction,
    NumericalPredicate,
    Operator,
)
from repro.relational.query import OrderBy, SPJQuery
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeKind, Schema
from repro.relational.sqlgen import render_sql
from repro.relational.sqlite_backend import SQLiteExecutor

__all__ = [
    "Attribute",
    "AttributeKind",
    "CategoricalPredicate",
    "Conjunction",
    "Database",
    "EXECUTOR_BACKENDS",
    "NumericalPredicate",
    "Operator",
    "OrderBy",
    "QueryExecutor",
    "RankedResult",
    "Relation",
    "SPJQuery",
    "SQLiteExecutor",
    "Schema",
    "render_sql",
]
