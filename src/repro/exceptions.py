"""Exception hierarchy shared across the ``repro`` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ModelError(ReproError):
    """Raised when a MILP model is malformed (bad bounds, unknown variable, ...)."""


class SolverError(ReproError):
    """Raised when a MILP backend fails unexpectedly."""


class InfeasibleError(SolverError):
    """Raised when a model is proven infeasible and the caller required a solution."""


class SchemaError(ReproError):
    """Raised on schema violations in the relational layer."""


class QueryError(ReproError):
    """Raised when a query references unknown attributes/relations or is malformed."""


class RefinementError(ReproError):
    """Raised when a refinement cannot be applied to a query."""


class ConstraintError(ReproError):
    """Raised when a cardinality constraint is malformed."""


class DatasetError(ReproError):
    """Raised when a dataset generator receives invalid parameters."""


class DeadlineExceeded(ReproError):
    """Raised when a deadline-bounded solve ends with no feasible incumbent.

    Only raised on request (``raise_on_deadline=True`` /
    ``RefineRequest`` wire calls): the anytime contract prefers returning the
    best partial incumbent, and this error marks the case where there is none.
    """


class NoRefinementError(ReproError):
    """Raised when no refinement within the requested maximum deviation exists.

    This corresponds to the "special value" the paper's Definition 2.7 returns
    when the Best Approximation Refinement problem has no feasible answer.
    """
