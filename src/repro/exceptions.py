"""Exception hierarchy shared across the ``repro`` package.

Every error carries a small *taxonomy* contract consumed by the serving
layer and the CLI:

``retryable``
    Whether the same request may succeed if simply sent again (transient
    overload, a locked store, a crashed worker) — fatal errors (malformed
    requests, proven-impossible problems) must not be retried.
``http_status`` / ``error_code``
    How the error serializes onto the wire: the HTTP status the server
    answers with and a stable machine-readable code in the JSON body
    (see :func:`error_payload`).
``retry_after_s``
    Optional client back-off hint; the server emits it as a ``Retry-After``
    header on shed (429/503) responses.

The CLI maps the same taxonomy onto exit codes (:func:`exit_code_for`):
``2`` for fatal errors (the historical behaviour) and ``3`` for retryable
ones, so scripts can distinguish "fix your request" from "try again".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""

    #: Whether retrying the identical request may succeed.
    retryable: bool = False
    #: HTTP status the serving layer answers with.
    http_status: int = 500
    #: Stable machine-readable code serialized into error payloads.
    error_code: str = "internal"
    #: Optional client back-off hint (seconds); ``None`` = no hint.
    retry_after_s: float | None = None


class RetryableError(ReproError):
    """Base class for transient failures: the same request may succeed later."""

    retryable = True
    http_status = 503
    error_code = "retryable"


class ModelError(ReproError, ValueError):
    """Raised when a MILP model is malformed (bad bounds, unknown variable, ...).

    Also a :class:`ValueError`: model-construction mistakes (mismatched block
    arrays, unknown senses) are argument errors, and callers validating
    inputs can catch them with a plain ``except ValueError``.
    """

    error_code = "model"


class SolverError(ReproError):
    """Raised when a MILP backend fails unexpectedly.

    A backend blowing up is transient from the caller's perspective (another
    backend — or the exhaustive fallback the engine degrades to — can still
    answer), so the taxonomy marks it retryable.
    """

    retryable = True
    error_code = "solver"


class InfeasibleError(SolverError):
    """Raised when a model is proven infeasible and the caller required a solution."""

    # A proven-infeasible model stays infeasible: retrying cannot help.
    retryable = False
    error_code = "infeasible"


class SchemaError(ReproError):
    """Raised on schema violations in the relational layer."""

    http_status = 400
    error_code = "schema"


class QueryError(ReproError):
    """Raised when a query references unknown attributes/relations or is malformed."""

    http_status = 400
    error_code = "query"


class RefinementError(ReproError):
    """Raised when a refinement cannot be applied to a query."""

    http_status = 400
    error_code = "refinement"


class ConstraintError(ReproError):
    """Raised when a cardinality constraint is malformed."""

    http_status = 400
    error_code = "constraint"


class DatasetError(ReproError):
    """Raised when a dataset generator receives invalid parameters."""

    http_status = 400
    error_code = "dataset"


class DeadlineExceeded(RetryableError):
    """Raised when a deadline-bounded request ends with no feasible incumbent.

    For portfolio races this is only raised on request
    (``raise_on_deadline=True`` / ``RefineRequest`` wire calls): the anytime
    contract prefers returning the best partial incumbent, and this error
    marks the case where there is none.  The admission layer raises it when a
    request's end-to-end deadline budget is exhausted before (or while)
    solving.
    """

    http_status = 504
    error_code = "deadline"


class AdmissionError(RetryableError):
    """Base class for load-shedding rejections issued before any solve runs."""

    error_code = "admission"


class QueueFullError(AdmissionError):
    """Raised when the admission queue is at capacity: shed with 429."""

    http_status = 429
    error_code = "queue_full"


class AdmissionTimeoutError(AdmissionError):
    """Raised when a queued request waited its whole budget without a slot."""

    http_status = 503
    error_code = "admission_timeout"


class DrainingError(AdmissionError):
    """Raised for new work while the server is draining for shutdown."""

    http_status = 503
    error_code = "draining"


class WorkerPoolError(RetryableError):
    """Raised when the parallel sweep pool is lost beyond recovery."""

    error_code = "worker_pool"


class StoreError(ReproError):
    """Base class for persistent-store failures."""

    error_code = "store"


class StoreLockedError(StoreError, RetryableError):
    """Raised when the sqlite store stays locked past the retry budget."""

    error_code = "store_locked"


class StoreCorruptionError(StoreError, RetryableError):
    """Raised when a corrupted sqlite store could not be rebuilt.

    Retryable: the store is a rebuildable cache, so a later request (or an
    operator removing the file) can recover.
    """

    error_code = "store_corruption"


class BodyTooLargeError(ReproError):
    """Raised when a request body exceeds the server's size guard."""

    http_status = 413
    error_code = "body_too_large"


class MalformedRequestError(ReproError):
    """Raised when a request body is not valid JSON (or not a JSON object)."""

    http_status = 400
    error_code = "malformed_request"


class NoRefinementError(ReproError):
    """Raised when no refinement within the requested maximum deviation exists.

    This corresponds to the "special value" the paper's Definition 2.7 returns
    when the Best Approximation Refinement problem has no feasible answer.
    """

    error_code = "no_refinement"


def error_payload(error: BaseException) -> dict:
    """The wire form of an error: what a server serializes into the body.

    Unknown (non-:class:`ReproError`) exceptions map to a fatal ``internal``
    payload so the handler never emits an untyped 500.
    """
    if isinstance(error, ReproError):
        payload: dict = {
            "error": str(error),
            "code": error.error_code,
            "retryable": error.retryable,
        }
        if error.retry_after_s is not None:
            payload["retry_after_s"] = error.retry_after_s
        return payload
    return {
        "error": f"{type(error).__name__}: {error}",
        "code": "internal",
        "retryable": False,
    }


def http_status_for(error: BaseException) -> int:
    """The HTTP status an error answers with (500 for unknown exceptions)."""
    if isinstance(error, ReproError):
        return error.http_status
    return 500


def exit_code_for(error: BaseException) -> int:
    """CLI exit code: 2 for fatal errors, 3 for retryable (transient) ones."""
    if isinstance(error, ReproError) and error.retryable:
        return 3
    return 2
