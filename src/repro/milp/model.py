"""The :class:`Model` container tying variables, constraints and an objective.

Constraints enter a model through two equivalent front doors:

* :meth:`Model.add_constraint` — one :class:`LinearConstraint` at a time, the
  classic modeling-layer path (kept as the reference semantics);
* :meth:`Model.add_constraint_block` — a *block* of rows described by NumPy
  COO triplets plus per-row senses and right-hand sides.  The refinement
  MILPs emit thousands of structurally identical per-tuple rows; lowering
  them as a handful of blocks avoids building one expression dict per tuple.

Both paths lower into the same :class:`StandardForm`; the block and
per-constraint lowerings of the same program are asserted matrix-identical by
the golden tests.  The lowered form is cached on the model: re-solving an
unchanged model reuses it, and *appending* constraints (no-good cuts,
enumeration loops) extends the cached CSR matrices with just the new rows
instead of re-lowering the whole program.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro import faults
from repro.exceptions import ModelError
from repro.milp.constraint import ConstraintSense, LinearConstraint
from repro.milp.expression import LinearExpression, Variable, VariableKind
from repro.milp.solution import Solution


#: Process-wide solve ordinal feeding the fault-injection hooks below.
_SOLVE_COUNTER = itertools.count()


class ObjectiveSense(enum.Enum):
    """Direction of optimisation."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


#: Integer sense codes used by :meth:`Model.add_constraint_block`.
SENSE_LE = 0
SENSE_GE = 1
SENSE_EQ = 2

_SENSE_TO_CODE = {
    ConstraintSense.LESS_EQUAL: SENSE_LE,
    ConstraintSense.GREATER_EQUAL: SENSE_GE,
    ConstraintSense.EQUAL: SENSE_EQ,
    "<=": SENSE_LE,
    ">=": SENSE_GE,
    "==": SENSE_EQ,
    SENSE_LE: SENSE_LE,
    SENSE_GE: SENSE_GE,
    SENSE_EQ: SENSE_EQ,
}


def _sense_codes(senses, num_rows: int) -> np.ndarray:
    """Normalise ``senses`` into an ``int8`` code array of length ``num_rows``."""
    if isinstance(senses, np.ndarray) and senses.ndim == 1 and senses.dtype.kind in "iu":
        # Fast path: an integer code array (what the builders emit) needs one
        # vectorised validation, not a per-row dict lookup.
        if senses.shape[0] != num_rows:
            raise ModelError(
                f"sense array has {senses.shape[0]} entries for {num_rows} rows"
            )
        # Validate before the int8 cast: a wider value like 256 would
        # otherwise wrap onto a valid code instead of raising.
        valid = np.isin(senses, (SENSE_LE, SENSE_GE, SENSE_EQ))
        if not valid.all():
            bad = senses[~valid][0]
            raise ModelError(f"unknown constraint sense {int(bad)!r}")
        return senses.astype(np.int8, copy=False)
    if isinstance(senses, (str, ConstraintSense, int)) and not isinstance(senses, bool):
        try:
            code = _SENSE_TO_CODE[senses]
        except (KeyError, TypeError):
            raise ModelError(f"unknown constraint sense {senses!r}") from None
        return np.full(num_rows, code, dtype=np.int8)
    codes = np.empty(len(senses), dtype=np.int8)
    for position, sense in enumerate(senses):
        try:
            codes[position] = _SENSE_TO_CODE[sense]
        except (KeyError, TypeError):
            raise ModelError(f"unknown constraint sense {sense!r}") from None
    if codes.shape[0] != num_rows:
        raise ModelError(
            f"sense array has {codes.shape[0]} entries for {num_rows} rows"
        )
    return codes


def _block_floats(values, name: str) -> np.ndarray:
    """Coerce a block array to 1-D float64, raising :class:`ModelError` on junk."""
    try:
        array = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ModelError(f"block {name} must be numeric: {exc}") from None
    if array.ndim != 1:
        raise ModelError(
            f"block {name} must be a one-dimensional array, got shape {array.shape}"
        )
    return array


def _block_indices(values, name: str) -> np.ndarray:
    """Coerce block row/column indices to 1-D int64, rejecting lossy casts."""
    try:
        array = np.asarray(values)
    except (TypeError, ValueError) as exc:  # pragma: no cover - asarray rarely raises
        raise ModelError(f"block {name} must be integer indices: {exc}") from None
    if array.ndim != 1:
        raise ModelError(
            f"block {name} must be a one-dimensional array, got shape {array.shape}"
        )
    if array.size == 0:
        # An empty Python list defaults to float64; there is nothing to
        # truncate, so accept it as the empty index set.
        return np.zeros(0, dtype=np.int64)
    if array.dtype.kind not in "iu":
        # Floats would silently truncate (2.7 -> 2); anything else is junk.
        raise ModelError(
            f"block {name} must be integer indices, got dtype {array.dtype}"
        )
    return array.astype(np.int64, copy=False)


class _ConstraintBlock:
    """A batch of constraint rows stored as COO triplets (internal)."""

    __slots__ = ("rows", "cols", "coeffs", "senses", "rhs", "num_rows")

    def __init__(self, rows, cols, coeffs, senses, rhs, num_variables: int) -> None:
        rhs = _block_floats(rhs, "rhs")
        num_rows = rhs.shape[0]
        self.rows = _block_indices(rows, "row indices")
        self.cols = _block_indices(cols, "column indices")
        self.coeffs = _block_floats(coeffs, "coefficients")
        self.senses = _sense_codes(senses, num_rows)
        self.rhs = rhs
        self.num_rows = num_rows
        if not (self.rows.shape == self.cols.shape == self.coeffs.shape):
            raise ModelError(
                "block triplets must have matching shapes: "
                f"rows={self.rows.shape}, cols={self.cols.shape}, "
                f"coeffs={self.coeffs.shape}"
            )
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= num_rows:
                raise ModelError(
                    f"block row indices must lie in [0, {num_rows}); got "
                    f"[{self.rows.min()}, {self.rows.max()}]"
                )
            if self.cols.min() < 0 or self.cols.max() >= num_variables:
                raise ModelError(
                    f"block column indices must lie in [0, {num_variables}); got "
                    f"[{self.cols.min()}, {self.cols.max()}]"
                )


@dataclass(frozen=True)
class StandardForm:
    """Sparse standard matrix form of a model shared by the solver backends.

    The problem is expressed as::

        minimize    c @ x
        subject to  A_ub @ x <= b_ub
                    A_eq @ x == b_eq
                    lower <= x <= upper
                    x[i] integer for integrality[i] == 1

    Constraint matrices are CSR sparse matrices because the refinement MILPs
    are very sparse (each tuple-level expression touches a handful of
    annotation variables) while the number of rows scales with the data size.
    """

    variables: Sequence[Variable]
    c: np.ndarray
    objective_constant: float
    integrality: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    maximize: bool


class Model:
    """A mixed-integer linear program under construction.

    The API mirrors common modeling layers (PuLP, docplex): create variables
    through the ``*_var`` factories, add :class:`LinearConstraint` objects
    produced by comparison operators (or row blocks through
    :meth:`add_constraint_block`), set an objective, then :meth:`solve`.

    The lowered :class:`StandardForm` is cached.  Cache rules:

    * adding a variable or (re)setting the objective invalidates the cache;
    * *appending* constraints keeps it — the next lowering extends the cached
      CSR matrices with only the new rows (``incremental_extensions`` counts
      these; ``full_lowerings`` counts rebuilds from scratch);
    * mutating a :class:`Variable`'s bounds after a lowering is not tracked —
      call :meth:`invalidate` explicitly in that case.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: list[Variable] = []
        self._names: set[str] = set()
        self._indices: dict[Variable, int] = {}
        self._entries: list[LinearConstraint | _ConstraintBlock] = []
        self._num_rows = 0
        self._objective: LinearExpression = LinearExpression()
        self._sense: ObjectiveSense = ObjectiveSense.MINIMIZE
        self._form: StandardForm | None = None
        self._form_entries = 0
        #: Number of from-scratch lowerings (the perf guards assert on this).
        self.full_lowerings = 0
        #: Number of incremental row-append extensions of the cached form.
        self.incremental_extensions = 0

    # -- variables -----------------------------------------------------------

    def add_variable(self, variable: Variable) -> Variable:
        """Register an externally constructed variable with the model."""
        if variable.name in self._names:
            raise ModelError(f"duplicate variable name {variable.name!r}")
        self._names.add(variable.name)
        self._indices[variable] = len(self._variables)
        self._variables.append(variable)
        self._form = None
        return variable

    def continuous_var(
        self,
        name: str,
        lower: float | None = 0.0,
        upper: float | None = None,
    ) -> Variable:
        """Create and register a continuous variable."""
        return self.add_variable(
            Variable(name, lower=lower, upper=upper, kind=VariableKind.CONTINUOUS)
        )

    def integer_var(
        self,
        name: str,
        lower: float | None = 0.0,
        upper: float | None = None,
    ) -> Variable:
        """Create and register a general integer variable."""
        return self.add_variable(
            Variable(name, lower=lower, upper=upper, kind=VariableKind.INTEGER)
        )

    def binary_var(self, name: str) -> Variable:
        """Create and register a 0/1 variable."""
        return self.add_variable(Variable(name, kind=VariableKind.BINARY))

    def index_of(self, variable: Variable) -> int:
        """Column index of a registered variable in the standard form."""
        try:
            return self._indices[variable]
        except KeyError:
            raise ModelError(
                f"variable {variable.name!r} is not registered with this model"
            ) from None

    @property
    def variables(self) -> list[Variable]:
        """All registered variables, in insertion order."""
        return list(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_binary_variables(self) -> int:
        return sum(1 for v in self._variables if v.kind is VariableKind.BINARY)

    # -- constraints ----------------------------------------------------------

    def add_constraint(
        self, constraint: LinearConstraint, name: str | None = None
    ) -> LinearConstraint:
        """Add a constraint; returns the (possibly renamed) stored constraint."""
        if not isinstance(constraint, LinearConstraint):
            raise ModelError(
                "add_constraint expects a LinearConstraint (did you use <=/>=/== "
                "on expressions?)"
            )
        if name is not None:
            constraint = constraint.named(name)
        self._check_known_variables(constraint.expression)
        self._entries.append(constraint)
        self._num_rows += 1
        return constraint

    def add_constraints(self, constraints: Iterable[LinearConstraint]) -> None:
        """Add several constraints at once."""
        for constraint in constraints:
            self.add_constraint(constraint)

    def add_constraint_block(self, rows, cols, coeffs, senses, rhs) -> None:
        """Append a block of constraint rows described by COO triplets.

        Parameters
        ----------
        rows, cols, coeffs:
            Parallel arrays: entry ``i`` contributes ``coeffs[i]`` to column
            ``cols[i]`` (a variable index, see :meth:`index_of`) of local row
            ``rows[i]``.  Duplicate ``(row, col)`` pairs sum, mirroring how
            expression dicts accumulate coefficients.
        senses:
            Per-row sense — an array of ``SENSE_LE``/``SENSE_GE``/``SENSE_EQ``
            codes (``"<="``/``">="``/``"=="`` strings and
            :class:`ConstraintSense` members are also accepted), or a single
            scalar applied to every row.
        rhs:
            Per-row right-hand side; its length defines the number of rows.

        The block occupies the same position in the lowering order as the
        equivalent sequence of :meth:`add_constraint` calls, which is what
        makes the two paths matrix-identical.
        """
        block = _ConstraintBlock(rows, cols, coeffs, senses, rhs, len(self._variables))
        self._entries.append(block)
        self._num_rows += block.num_rows

    @property
    def constraints(self) -> list[LinearConstraint]:
        """Constraints added one at a time (block rows are not materialised)."""
        return [e for e in self._entries if isinstance(e, LinearConstraint)]

    @property
    def num_constraints(self) -> int:
        """Total constraint *rows*, counting every row of every block."""
        return self._num_rows

    # -- objective ------------------------------------------------------------

    def minimize(self, expression: LinearExpression | Variable) -> None:
        """Set a minimisation objective."""
        self.set_objective(expression, ObjectiveSense.MINIMIZE)

    def maximize(self, expression: LinearExpression | Variable) -> None:
        """Set a maximisation objective."""
        self.set_objective(expression, ObjectiveSense.MAXIMIZE)

    def set_objective(
        self,
        expression: LinearExpression | Variable,
        sense: ObjectiveSense = ObjectiveSense.MINIMIZE,
    ) -> None:
        if isinstance(expression, Variable):
            expression = expression.to_expression()
        if not isinstance(expression, LinearExpression):
            raise ModelError("objective must be a LinearExpression or Variable")
        self._check_known_variables(expression)
        self._objective = expression
        self._sense = sense
        self._form = None

    @property
    def objective(self) -> LinearExpression:
        return self._objective

    @property
    def objective_sense(self) -> ObjectiveSense:
        return self._sense

    # -- solving ---------------------------------------------------------------

    def solve(self, solver: str = "auto", **options) -> Solution:
        """Solve the model with the named backend (see :func:`get_solver`).

        ``solver="auto"`` honours the ``REPRO_MILP_BACKEND`` environment
        variable before falling back to the best available backend.
        """
        from repro.milp.solvers import get_solver

        if faults.armed():
            # Chaos hooks: every backend solve funnels through here, so this
            # is the one site that can model a slow or crashing solver.  The
            # process-wide solve counter keys rate-based decisions and lets
            # `attempts=N` arm only the first N solves.
            n = next(_SOLVE_COUNTER)
            faults.fire("slow-solve", key=n, attempt=n)
            faults.fire("backend-raise", key=n, attempt=n)
        backend = get_solver(solver)
        return backend.solve(self, **options)

    def invalidate(self) -> None:
        """Drop the cached standard form (e.g. after mutating variable bounds)."""
        self._form = None

    def to_standard_form(self) -> StandardForm:
        """Lower the model into the sparse matrix form shared by backends.

        Returns the cached form when the model is unchanged; extends it with
        only the new rows when constraints were appended since the last call.
        """
        if self._form is not None:
            if self._form_entries == len(self._entries):
                return self._form
            return self._extend_form()
        return self._full_lowering()

    def _full_lowering(self) -> StandardForm:
        variables = self._variables
        n = len(variables)

        c = np.zeros(n)
        for var, coeff in self._objective.iter_terms():
            c[self._indices[var]] = coeff
        maximize = self._sense is ObjectiveSense.MAXIMIZE
        if maximize:
            c = -c

        integrality = np.array(
            [1 if var.is_integral else 0 for var in variables], dtype=np.int64
        )
        lower = np.array(
            [-np.inf if var.lower is None else float(var.lower) for var in variables]
        )
        upper = np.array(
            [np.inf if var.upper is None else float(var.upper) for var in variables]
        )

        a_ub, b_ub, a_eq, b_eq = self._lower_entries(self._entries)

        form = StandardForm(
            variables=variables,
            c=c,
            objective_constant=self._objective.constant,
            integrality=integrality,
            lower=lower,
            upper=upper,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            maximize=maximize,
        )
        self._form = form
        self._form_entries = len(self._entries)
        self.full_lowerings += 1
        return form

    def _extend_form(self) -> StandardForm:
        """Lower only the entries appended since the cached form was built."""
        cached = self._form
        new_entries = self._entries[self._form_entries :]
        a_ub_new, b_ub_new, a_eq_new, b_eq_new = self._lower_entries(new_entries)
        a_ub, b_ub = cached.a_ub, cached.b_ub
        a_eq, b_eq = cached.a_eq, cached.b_eq
        if b_ub_new.shape[0]:
            a_ub = sparse.vstack([a_ub, a_ub_new], format="csr")
            b_ub = np.concatenate([b_ub, b_ub_new])
        if b_eq_new.shape[0]:
            a_eq = sparse.vstack([a_eq, a_eq_new], format="csr")
            b_eq = np.concatenate([b_eq, b_eq_new])
        form = StandardForm(
            variables=cached.variables,
            c=cached.c,
            objective_constant=cached.objective_constant,
            integrality=cached.integrality,
            lower=cached.lower,
            upper=cached.upper,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            maximize=cached.maximize,
        )
        self._form = form
        self._form_entries = len(self._entries)
        self.incremental_extensions += 1
        return form

    def _lower_entries(self, entries):
        """Lower a sequence of entries into ``(a_ub, b_ub, a_eq, b_eq)``.

        Rows are numbered in entry order (block rows in their local order), so
        a block and the equivalent ``add_constraint`` sequence produce the
        same matrices.  COO triplets carry explicit row ids, so legacy
        constraints accumulate into Python lists while blocks contribute NumPy
        slices; the concatenation order of the parts is irrelevant.
        """
        n = len(self._variables)
        index = self._indices
        ub_parts_r: list[np.ndarray] = []
        ub_parts_c: list[np.ndarray] = []
        ub_parts_d: list[np.ndarray] = []
        eq_parts_r: list[np.ndarray] = []
        eq_parts_c: list[np.ndarray] = []
        eq_parts_d: list[np.ndarray] = []
        ub_rows_idx: list[int] = []
        ub_cols_idx: list[int] = []
        ub_data: list[float] = []
        eq_rows_idx: list[int] = []
        eq_cols_idx: list[int] = []
        eq_data: list[float] = []
        # Right-hand sides in row order: legacy scalars accumulate into the
        # current list part, block slices land as array parts in between.
        ub_rhs_parts: list = [[]]
        eq_rhs_parts: list = [[]]
        ub_count = 0
        eq_count = 0

        for entry in entries:
            if isinstance(entry, LinearConstraint):
                rhs = entry.rhs
                if entry.sense is ConstraintSense.LESS_EQUAL:
                    for var, coeff in entry.iter_coefficients():
                        ub_rows_idx.append(ub_count)
                        ub_cols_idx.append(index[var])
                        ub_data.append(coeff)
                    ub_rhs_parts[-1].append(rhs)
                    ub_count += 1
                elif entry.sense is ConstraintSense.GREATER_EQUAL:
                    for var, coeff in entry.iter_coefficients():
                        ub_rows_idx.append(ub_count)
                        ub_cols_idx.append(index[var])
                        ub_data.append(-coeff)
                    ub_rhs_parts[-1].append(-rhs)
                    ub_count += 1
                else:
                    for var, coeff in entry.iter_coefficients():
                        eq_rows_idx.append(eq_count)
                        eq_cols_idx.append(index[var])
                        eq_data.append(coeff)
                    eq_rhs_parts[-1].append(rhs)
                    eq_count += 1
                continue

            senses = entry.senses
            is_eq_row = senses == SENSE_EQ
            ub_locals = np.flatnonzero(~is_eq_row)
            eq_locals = np.flatnonzero(is_eq_row)
            if ub_locals.size:
                # >= rows are negated into <= form, exactly like the legacy path.
                row_sign = np.where(senses == SENSE_GE, -1.0, 1.0)
                ub_map = np.empty(entry.num_rows, dtype=np.int64)
                ub_map[ub_locals] = ub_count + np.arange(ub_locals.size)
                mask = ~is_eq_row[entry.rows]
                masked_rows = entry.rows[mask]
                ub_parts_r.append(ub_map[masked_rows])
                ub_parts_c.append(entry.cols[mask])
                ub_parts_d.append(entry.coeffs[mask] * row_sign[masked_rows])
                ub_rhs_parts.append(entry.rhs[ub_locals] * row_sign[ub_locals])
                ub_rhs_parts.append([])
                ub_count += ub_locals.size
            if eq_locals.size:
                eq_map = np.empty(entry.num_rows, dtype=np.int64)
                eq_map[eq_locals] = eq_count + np.arange(eq_locals.size)
                mask = is_eq_row[entry.rows]
                eq_parts_r.append(eq_map[entry.rows[mask]])
                eq_parts_c.append(entry.cols[mask])
                eq_parts_d.append(entry.coeffs[mask])
                eq_rhs_parts.append(entry.rhs[eq_locals])
                eq_rhs_parts.append([])
                eq_count += eq_locals.size

        if ub_rows_idx:
            ub_parts_r.append(np.asarray(ub_rows_idx, dtype=np.int64))
            ub_parts_c.append(np.asarray(ub_cols_idx, dtype=np.int64))
            ub_parts_d.append(np.asarray(ub_data, dtype=np.float64))
        if eq_rows_idx:
            eq_parts_r.append(np.asarray(eq_rows_idx, dtype=np.int64))
            eq_parts_c.append(np.asarray(eq_cols_idx, dtype=np.int64))
            eq_parts_d.append(np.asarray(eq_data, dtype=np.float64))

        def assemble(parts_r, parts_c, parts_d, count):
            if parts_r:
                rows = np.concatenate(parts_r)
                cols = np.concatenate(parts_c)
                data = np.concatenate(parts_d)
            else:
                rows = cols = np.zeros(0, dtype=np.int64)
                data = np.zeros(0)
            return sparse.csr_matrix((data, (rows, cols)), shape=(count, n))

        def assemble_rhs(parts):
            arrays = [np.asarray(part, dtype=np.float64) for part in parts if len(part)]
            if not arrays:
                return np.zeros(0)
            return np.concatenate(arrays)

        a_ub = assemble(ub_parts_r, ub_parts_c, ub_parts_d, ub_count)
        a_eq = assemble(eq_parts_r, eq_parts_c, eq_parts_d, eq_count)
        return a_ub, assemble_rhs(ub_rhs_parts), a_eq, assemble_rhs(eq_rhs_parts)

    # -- diagnostics -------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Size statistics used by the benchmark harness and tests."""
        return {
            "variables": self.num_variables,
            "binary_variables": self.num_binary_variables,
            "constraints": self.num_constraints,
        }

    def _check_known_variables(self, expression: LinearExpression) -> None:
        for var in expression.variables:
            if var.name not in self._names:
                raise ModelError(
                    f"expression references variable {var.name!r} that was not "
                    "registered with this model"
                )

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, variables={self.num_variables}, "
            f"constraints={self.num_constraints})"
        )
