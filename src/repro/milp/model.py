"""The :class:`Model` container tying variables, constraints and an objective."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import ModelError
from repro.milp.constraint import ConstraintSense, LinearConstraint
from repro.milp.expression import LinearExpression, Variable, VariableKind
from repro.milp.solution import Solution


class ObjectiveSense(enum.Enum):
    """Direction of optimisation."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


@dataclass(frozen=True)
class StandardForm:
    """Sparse standard matrix form of a model shared by the solver backends.

    The problem is expressed as::

        minimize    c @ x
        subject to  A_ub @ x <= b_ub
                    A_eq @ x == b_eq
                    lower <= x <= upper
                    x[i] integer for integrality[i] == 1

    Constraint matrices are CSR sparse matrices because the refinement MILPs
    are very sparse (each tuple-level expression touches a handful of
    annotation variables) while the number of rows scales with the data size.
    """

    variables: Sequence[Variable]
    c: np.ndarray
    objective_constant: float
    integrality: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    maximize: bool


class Model:
    """A mixed-integer linear program under construction.

    The API mirrors common modeling layers (PuLP, docplex): create variables
    through the ``*_var`` factories, add :class:`LinearConstraint` objects
    produced by comparison operators, set an objective, then :meth:`solve`.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: list[Variable] = []
        self._names: set[str] = set()
        self._constraints: list[LinearConstraint] = []
        self._objective: LinearExpression = LinearExpression()
        self._sense: ObjectiveSense = ObjectiveSense.MINIMIZE

    # -- variables -----------------------------------------------------------

    def add_variable(self, variable: Variable) -> Variable:
        """Register an externally constructed variable with the model."""
        if variable.name in self._names:
            raise ModelError(f"duplicate variable name {variable.name!r}")
        self._names.add(variable.name)
        self._variables.append(variable)
        return variable

    def continuous_var(
        self,
        name: str,
        lower: float | None = 0.0,
        upper: float | None = None,
    ) -> Variable:
        """Create and register a continuous variable."""
        return self.add_variable(
            Variable(name, lower=lower, upper=upper, kind=VariableKind.CONTINUOUS)
        )

    def integer_var(
        self,
        name: str,
        lower: float | None = 0.0,
        upper: float | None = None,
    ) -> Variable:
        """Create and register a general integer variable."""
        return self.add_variable(
            Variable(name, lower=lower, upper=upper, kind=VariableKind.INTEGER)
        )

    def binary_var(self, name: str) -> Variable:
        """Create and register a 0/1 variable."""
        return self.add_variable(Variable(name, kind=VariableKind.BINARY))

    @property
    def variables(self) -> list[Variable]:
        """All registered variables, in insertion order."""
        return list(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_binary_variables(self) -> int:
        return sum(1 for v in self._variables if v.kind is VariableKind.BINARY)

    # -- constraints ----------------------------------------------------------

    def add_constraint(
        self, constraint: LinearConstraint, name: str | None = None
    ) -> LinearConstraint:
        """Add a constraint; returns the (possibly renamed) stored constraint."""
        if not isinstance(constraint, LinearConstraint):
            raise ModelError(
                "add_constraint expects a LinearConstraint (did you use <=/>=/== "
                "on expressions?)"
            )
        if name is not None:
            constraint = constraint.named(name)
        self._check_known_variables(constraint.expression)
        self._constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[LinearConstraint]) -> None:
        """Add several constraints at once."""
        for constraint in constraints:
            self.add_constraint(constraint)

    @property
    def constraints(self) -> list[LinearConstraint]:
        return list(self._constraints)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    # -- objective ------------------------------------------------------------

    def minimize(self, expression: LinearExpression | Variable) -> None:
        """Set a minimisation objective."""
        self.set_objective(expression, ObjectiveSense.MINIMIZE)

    def maximize(self, expression: LinearExpression | Variable) -> None:
        """Set a maximisation objective."""
        self.set_objective(expression, ObjectiveSense.MAXIMIZE)

    def set_objective(
        self,
        expression: LinearExpression | Variable,
        sense: ObjectiveSense = ObjectiveSense.MINIMIZE,
    ) -> None:
        if isinstance(expression, Variable):
            expression = expression.to_expression()
        if not isinstance(expression, LinearExpression):
            raise ModelError("objective must be a LinearExpression or Variable")
        self._check_known_variables(expression)
        self._objective = expression
        self._sense = sense

    @property
    def objective(self) -> LinearExpression:
        return self._objective

    @property
    def objective_sense(self) -> ObjectiveSense:
        return self._sense

    # -- solving ---------------------------------------------------------------

    def solve(self, solver: str = "auto", **options) -> Solution:
        """Solve the model with the named backend (see :func:`get_solver`)."""
        from repro.milp.solvers import get_solver

        backend = get_solver(solver)
        return backend.solve(self, **options)

    def to_standard_form(self) -> StandardForm:
        """Lower the model into the dense matrix form shared by backends."""
        variables = self._variables
        index = {var: i for i, var in enumerate(variables)}
        n = len(variables)

        c = np.zeros(n)
        for var, coeff in self._objective.terms.items():
            c[index[var]] = coeff
        maximize = self._sense is ObjectiveSense.MAXIMIZE
        if maximize:
            c = -c

        integrality = np.array(
            [1 if var.is_integral else 0 for var in variables], dtype=np.int64
        )
        lower = np.array(
            [-np.inf if var.lower is None else float(var.lower) for var in variables]
        )
        upper = np.array(
            [np.inf if var.upper is None else float(var.upper) for var in variables]
        )

        ub_data: list[float] = []
        ub_rows_idx: list[int] = []
        ub_cols_idx: list[int] = []
        ub_rhs: list[float] = []
        eq_data: list[float] = []
        eq_rows_idx: list[int] = []
        eq_cols_idx: list[int] = []
        eq_rhs: list[float] = []
        for constraint in self._constraints:
            rhs = constraint.rhs
            coefficients = constraint.coefficients()
            if constraint.sense is ConstraintSense.LESS_EQUAL:
                row = len(ub_rhs)
                for var, coeff in coefficients.items():
                    ub_rows_idx.append(row)
                    ub_cols_idx.append(index[var])
                    ub_data.append(coeff)
                ub_rhs.append(rhs)
            elif constraint.sense is ConstraintSense.GREATER_EQUAL:
                row = len(ub_rhs)
                for var, coeff in coefficients.items():
                    ub_rows_idx.append(row)
                    ub_cols_idx.append(index[var])
                    ub_data.append(-coeff)
                ub_rhs.append(-rhs)
            else:
                row = len(eq_rhs)
                for var, coeff in coefficients.items():
                    eq_rows_idx.append(row)
                    eq_cols_idx.append(index[var])
                    eq_data.append(coeff)
                eq_rhs.append(rhs)

        a_ub = sparse.csr_matrix(
            (ub_data, (ub_rows_idx, ub_cols_idx)), shape=(len(ub_rhs), n)
        )
        b_ub = np.array(ub_rhs) if ub_rhs else np.zeros(0)
        a_eq = sparse.csr_matrix(
            (eq_data, (eq_rows_idx, eq_cols_idx)), shape=(len(eq_rhs), n)
        )
        b_eq = np.array(eq_rhs) if eq_rhs else np.zeros(0)

        return StandardForm(
            variables=variables,
            c=c,
            objective_constant=self._objective.constant,
            integrality=integrality,
            lower=lower,
            upper=upper,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            maximize=maximize,
        )

    # -- diagnostics -------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Size statistics used by the benchmark harness and tests."""
        return {
            "variables": self.num_variables,
            "binary_variables": self.num_binary_variables,
            "constraints": self.num_constraints,
        }

    def _check_known_variables(self, expression: LinearExpression) -> None:
        for var in expression.variables:
            if var.name not in self._names:
                raise ModelError(
                    f"expression references variable {var.name!r} that was not "
                    "registered with this model"
                )

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, variables={self.num_variables}, "
            f"constraints={self.num_constraints})"
        )
