"""Decision variables and affine (linear) expressions for the MILP layer.

A :class:`LinearExpression` is an affine form ``sum_i coeff_i * var_i +
constant``.  Expressions support the usual arithmetic operators and the
comparison operators ``<=``, ``>=`` and ``==`` which build
:class:`~repro.milp.constraint.LinearConstraint` objects, so models read like
the mathematical formulation in the paper.
"""

from __future__ import annotations

import enum
import itertools
import math
from typing import Iterable, Mapping, Union

from repro.exceptions import ModelError

Number = Union[int, float]

_INFINITY = math.inf


class VariableKind(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Variable:
    """A single decision variable.

    Variables are created through :class:`repro.milp.model.Model` factory
    methods in normal use; constructing them directly is supported for tests.

    Parameters
    ----------
    name:
        Unique (within a model) human-readable identifier.
    lower, upper:
        Bounds; ``None`` means unbounded in that direction.  Binary variables
        are always clamped to ``[0, 1]``.
    kind:
        One of :class:`VariableKind`.
    """

    _ids = itertools.count()

    __slots__ = ("name", "lower", "upper", "kind", "_uid")

    def __init__(
        self,
        name: str,
        lower: Number | None = 0.0,
        upper: Number | None = None,
        kind: VariableKind = VariableKind.CONTINUOUS,
    ) -> None:
        if not name:
            raise ModelError("variable name must be a non-empty string")
        if kind is VariableKind.BINARY:
            lower, upper = 0.0, 1.0
        if lower is not None and upper is not None and lower > upper:
            raise ModelError(
                f"variable {name!r}: lower bound {lower} exceeds upper bound {upper}"
            )
        self.name = name
        self.lower = lower
        self.upper = upper
        self.kind = kind
        self._uid = next(Variable._ids)

    # -- identity ----------------------------------------------------------

    def __hash__(self) -> int:
        return self._uid

    def __eq__(self, other: object):  # type: ignore[override]
        # ``==`` on variables builds a constraint (var == expr); identity is
        # checked with ``is``.  This mirrors PuLP/CPLEX modeling APIs.
        return self.to_expression() == other

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, kind={self.kind.value})"

    # -- conversion / arithmetic -------------------------------------------

    @property
    def is_integral(self) -> bool:
        """Whether the variable must take integer values."""
        return self.kind in (VariableKind.INTEGER, VariableKind.BINARY)

    def to_expression(self) -> "LinearExpression":
        """Return this variable as a single-term :class:`LinearExpression`."""
        return LinearExpression._make({self: 1.0}, 0.0)

    def __add__(self, other):
        return self.to_expression() + other

    def __radd__(self, other):
        return self.to_expression() + other

    def __sub__(self, other):
        return self.to_expression() - other

    def __rsub__(self, other):
        return (-self.to_expression()) + other

    def __mul__(self, other):
        return self.to_expression() * other

    def __rmul__(self, other):
        return self.to_expression() * other

    def __neg__(self):
        return self.to_expression() * -1.0

    def __le__(self, other):
        return self.to_expression() <= other

    def __ge__(self, other):
        return self.to_expression() >= other


class LinearExpression:
    """An affine form over :class:`Variable` objects.

    Instances are immutable from the caller's perspective: every arithmetic
    operation returns a new expression.
    """

    __slots__ = ("_terms", "_constant")

    def __init__(
        self,
        terms: Mapping[Variable, Number] | None = None,
        constant: Number = 0.0,
    ) -> None:
        cleaned: dict[Variable, float] = {}
        if terms:
            for var, coeff in terms.items():
                if not isinstance(var, Variable):
                    raise ModelError(f"expected Variable, got {type(var).__name__}")
                coeff = float(coeff)
                if coeff != 0.0:
                    cleaned[var] = cleaned.get(var, 0.0) + coeff
        self._terms = cleaned
        self._constant = float(constant)

    @classmethod
    def _make(cls, terms: dict["Variable", float], constant: float) -> "LinearExpression":
        """Trusted constructor: takes ownership of an already-cleaned dict.

        Internal fast path used by the arithmetic operators and
        :func:`linear_sum`.  ``terms`` must map :class:`Variable` to non-zero
        ``float`` coefficients; the caller hands over ownership (the dict must
        not be mutated afterwards).
        """
        self = cls.__new__(cls)
        self._terms = terms
        self._constant = constant
        return self

    # -- accessors ----------------------------------------------------------

    @property
    def terms(self) -> dict[Variable, float]:
        """Mapping from variable to coefficient (zero coefficients removed)."""
        return dict(self._terms)

    def iter_terms(self):
        """Iterate ``(variable, coefficient)`` pairs without copying the dict."""
        return self._terms.items()

    @property
    def constant(self) -> float:
        """The additive constant of the affine form."""
        return self._constant

    @property
    def variables(self) -> list[Variable]:
        """The variables appearing with a non-zero coefficient."""
        return list(self._terms)

    def coefficient(self, var: Variable) -> float:
        """Coefficient of ``var`` in this expression (0.0 when absent)."""
        return self._terms.get(var, 0.0)

    def is_constant(self) -> bool:
        """True when the expression contains no variables."""
        return not self._terms

    def evaluate(self, assignment: Mapping[Variable, Number]) -> float:
        """Evaluate the expression under a variable assignment.

        Missing variables are treated as 0, matching solver conventions for
        variables that do not appear in the reported solution.
        """
        total = self._constant
        for var, coeff in self._terms.items():
            total += coeff * float(assignment.get(var, 0.0))
        return total

    # -- arithmetic ----------------------------------------------------------

    @staticmethod
    def _coerce(value) -> "LinearExpression":
        if isinstance(value, LinearExpression):
            return value
        if isinstance(value, Variable):
            return value.to_expression()
        if isinstance(value, (int, float)):
            return LinearExpression._make({}, float(value))
        raise ModelError(f"cannot use {type(value).__name__} in a linear expression")

    def __add__(self, other) -> "LinearExpression":
        other = self._coerce(other)
        a, b = self._terms, other._terms
        constant = self._constant + other._constant
        if not b:
            return LinearExpression._make(dict(a), constant)
        if not a:
            return LinearExpression._make(dict(b), constant)
        if a.keys().isdisjoint(b):
            # Fast path: no overlapping variables, a plain dict merge suffices
            # (no per-term get/accumulate and no cancellation to clean up).
            return LinearExpression._make({**a, **b}, constant)
        merged = dict(a)
        for var, coeff in b.items():
            value = merged.get(var, 0.0) + coeff
            if value == 0.0:
                del merged[var]
            else:
                merged[var] = value
        return LinearExpression._make(merged, constant)

    def __radd__(self, other) -> "LinearExpression":
        return self.__add__(other)

    def __sub__(self, other) -> "LinearExpression":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinearExpression":
        return (self * -1.0).__add__(other)

    def __mul__(self, factor) -> "LinearExpression":
        if isinstance(factor, (LinearExpression, Variable)):
            raise ModelError("products of variables are not linear")
        factor = float(factor)
        if factor == 0.0:
            return LinearExpression._make({}, self._constant * factor)
        terms = {var: coeff * factor for var, coeff in self._terms.items()}
        return LinearExpression._make(terms, self._constant * factor)

    def __rmul__(self, factor) -> "LinearExpression":
        return self.__mul__(factor)

    def __truediv__(self, divisor) -> "LinearExpression":
        if isinstance(divisor, (LinearExpression, Variable)):
            raise ModelError("dividing by a variable is not linear")
        return self.__mul__(1.0 / float(divisor))

    def __neg__(self) -> "LinearExpression":
        return self.__mul__(-1.0)

    # -- comparisons build constraints ---------------------------------------

    def __le__(self, other):
        from repro.milp.constraint import ConstraintSense, LinearConstraint

        return LinearConstraint(self - self._coerce(other), ConstraintSense.LESS_EQUAL)

    def __ge__(self, other):
        from repro.milp.constraint import ConstraintSense, LinearConstraint

        return LinearConstraint(
            self - self._coerce(other), ConstraintSense.GREATER_EQUAL
        )

    def __eq__(self, other):  # type: ignore[override]
        from repro.milp.constraint import ConstraintSense, LinearConstraint

        return LinearConstraint(self - self._coerce(other), ConstraintSense.EQUAL)

    def __hash__(self):  # pragma: no cover - expressions are not hashable keys
        raise TypeError("LinearExpression objects are unhashable")

    def __repr__(self) -> str:
        parts = [f"{coeff:+g}*{var.name}" for var, coeff in self._terms.items()]
        if self._constant or not parts:
            parts.append(f"{self._constant:+g}")
        return "LinearExpression(" + " ".join(parts) + ")"


def linear_sum(items: Iterable) -> LinearExpression:
    """Sum an iterable of variables/expressions/numbers into one expression.

    Python's built-in :func:`sum` builds ``O(n)`` intermediate expressions and
    copies the growing terms dict on every ``+`` (``O(n²)`` dict work for an
    n-term sum); this helper accumulates in a single dictionary and hands it
    to the expression without another cleaning copy, which matters for the
    tuple-level expressions built over large datasets.
    """
    terms: dict[Variable, float] = {}
    constant = 0.0
    for item in items:
        if isinstance(item, Variable):
            terms[item] = terms.get(item, 0.0) + 1.0
        elif isinstance(item, LinearExpression):
            for var, coeff in item._terms.items():
                terms[var] = terms.get(var, 0.0) + coeff
            constant += item._constant
        elif isinstance(item, (int, float)):
            constant += float(item)
        else:
            raise ModelError(f"cannot sum object of type {type(item).__name__}")
    cancelled = [var for var, coeff in terms.items() if coeff == 0.0]
    for var in cancelled:
        del terms[var]
    return LinearExpression._make(terms, constant)
