"""A small mixed-integer linear programming (MILP) toolkit.

The paper models Best Approximation Refinement as a MILP and solves it with
CPLEX through PuLP.  Neither is available offline, so this subpackage provides
the substrate from scratch:

* a modeling layer (:class:`Variable`, :class:`LinearExpression`,
  :class:`LinearConstraint`, :class:`Model`) with a PuLP-like feel, and
* two interchangeable exact backends — :mod:`repro.milp.solvers.scipy_backend`
  (HiGHS via :func:`scipy.optimize.milp`) and
  :mod:`repro.milp.solvers.branch_and_bound` (pure-Python best-first branch
  and bound over LP relaxations).

Typical usage::

    from repro.milp import Model, Variable

    model = Model("example")
    x = model.binary_var("x")
    y = model.continuous_var("y", lower=0.0, upper=10.0)
    model.add_constraint(2 * x + y <= 8, name="cap")
    model.minimize(-3 * x - y)
    solution = model.solve()
    assert solution.is_optimal
"""

from repro.milp.constraint import ConstraintSense, LinearConstraint
from repro.milp.expression import (
    LinearExpression,
    Variable,
    VariableKind,
    linear_sum,
)
from repro.milp.model import (
    SENSE_EQ,
    SENSE_GE,
    SENSE_LE,
    Model,
    ObjectiveSense,
    StandardForm,
)
from repro.milp.solution import Solution, SolveStatus
from repro.milp.solvers import BACKEND_ENV_VAR, available_solvers, get_solver

__all__ = [
    "BACKEND_ENV_VAR",
    "ConstraintSense",
    "LinearConstraint",
    "LinearExpression",
    "Model",
    "ObjectiveSense",
    "SENSE_EQ",
    "SENSE_GE",
    "SENSE_LE",
    "Solution",
    "SolveStatus",
    "StandardForm",
    "Variable",
    "VariableKind",
    "available_solvers",
    "get_solver",
    "linear_sum",
]
