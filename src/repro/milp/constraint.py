"""Linear constraints for the MILP modeling layer."""

from __future__ import annotations

import enum
from typing import Mapping

from repro.exceptions import ModelError
from repro.milp.expression import LinearExpression, Variable


class ConstraintSense(enum.Enum):
    """Relation between the constraint body and zero."""

    LESS_EQUAL = "<="
    GREATER_EQUAL = ">="
    EQUAL = "=="


class LinearConstraint:
    """A constraint of the form ``expression (<=|>=|==) 0``.

    Comparison operators on :class:`~repro.milp.expression.LinearExpression`
    normalise both sides into a single expression compared against zero, which
    simplifies the solver backends.
    """

    __slots__ = ("expression", "sense", "name")

    def __init__(
        self,
        expression: LinearExpression,
        sense: ConstraintSense,
        name: str | None = None,
    ) -> None:
        if not isinstance(expression, LinearExpression):
            raise ModelError("constraint body must be a LinearExpression")
        if expression.is_constant():
            # Constant constraints are legal (e.g. produced by degenerate data)
            # but flag impossible ones early to aid debugging.
            value = expression.constant
            feasible = {
                ConstraintSense.LESS_EQUAL: value <= 1e-9,
                ConstraintSense.GREATER_EQUAL: value >= -1e-9,
                ConstraintSense.EQUAL: abs(value) <= 1e-9,
            }[sense]
            if not feasible:
                raise ModelError(
                    f"constraint {name or ''} is trivially infeasible: "
                    f"{value} {sense.value} 0"
                )
        self.expression = expression
        self.sense = sense
        self.name = name

    def named(self, name: str) -> "LinearConstraint":
        """Return a copy of this constraint carrying ``name``."""
        return LinearConstraint(self.expression, self.sense, name)

    @property
    def rhs(self) -> float:
        """Right-hand side once the constant is moved across the relation."""
        return -self.expression.constant

    def coefficients(self) -> dict[Variable, float]:
        """Per-variable coefficients of the left-hand side."""
        return self.expression.terms

    def iter_coefficients(self):
        """Iterate ``(variable, coefficient)`` pairs without copying.

        The standard-form lowering walks every constraint of a model; a dict
        copy per constraint (what :meth:`coefficients` returns for external
        callers) is measurable there.
        """
        return self.expression.iter_terms()

    def is_satisfied(
        self, assignment: Mapping[Variable, float], tolerance: float = 1e-6
    ) -> bool:
        """Check the constraint under a concrete assignment."""
        value = self.expression.evaluate(assignment)
        if self.sense is ConstraintSense.LESS_EQUAL:
            return value <= tolerance
        if self.sense is ConstraintSense.GREATER_EQUAL:
            return value >= -tolerance
        return abs(value) <= tolerance

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"LinearConstraint({self.expression!r} {self.sense.value} 0{label})"
