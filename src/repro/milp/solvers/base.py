"""Abstract interface implemented by every MILP backend."""

from __future__ import annotations

import abc

from repro.milp.solution import Solution


class SolverBackend(abc.ABC):
    """Common interface of the MILP backends.

    Backends are stateless; a new instance may be created per solve.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def solve(self, model, time_limit: float | None = None, **options) -> Solution:
        """Solve ``model`` and return a :class:`Solution`.

        Parameters
        ----------
        model:
            A :class:`repro.milp.model.Model`.
        time_limit:
            Optional wall-clock limit in seconds.
        options:
            Backend-specific keyword options.
        """

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"
