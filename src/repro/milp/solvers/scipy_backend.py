"""MILP backend built on :func:`scipy.optimize.milp` (HiGHS)."""

from __future__ import annotations

import time
import warnings

import numpy as np

from repro.exceptions import SolverError
from repro.milp.solution import Solution, SolveStatus
from repro.milp.solvers.base import SolverBackend


def scipy_milp_available() -> bool:
    """Whether the installed SciPy exposes :func:`scipy.optimize.milp`."""
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:  # pragma: no cover - depends on environment
        return False
    return True


# HiGHS status codes documented by scipy.optimize.milp.
_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.TIME_LIMIT,  # iteration/time limit reached
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


class ScipySolver(SolverBackend):
    """Exact MILP solves through SciPy's HiGHS bindings."""

    name = "scipy"

    def solve(
        self,
        model,
        time_limit: float | None = None,
        mip_rel_gap: float = 0.0,
        presolve: bool | None = None,
        known_lower_bound: float | None = None,
        **options,
    ) -> Solution:
        """Solve ``model`` through :func:`scipy.optimize.milp`.

        ``mip_rel_gap``/``presolve``/``time_limit`` map to the HiGHS options
        of the same names; anything HiGHS-specific beyond those can be passed
        verbatim via ``options["highs_options"]`` (a dict).  On a
        ``TIME_LIMIT``/``NODE_LIMIT`` stop the best incumbent found so far is
        returned (``res.x`` is present), not an empty solution, so callers —
        and the benchmark rows — still see the best-found objective.

        ``known_lower_bound`` — a proven bound no feasible solution can beat
        (the cut loop's round bound, a portfolio race's published proof) —
        maps to the HiGHS ``objective_target``: HiGHS stops the moment an
        incumbent reaches it.  SciPy's wrapper extracts the solution vector
        only for a fixed allowlist of model statuses that does not include
        the target stop (HiGHS status 12), so when that stop fires the
        incumbent comes back as ``res.x is None`` with an error code.  The
        stop itself proves the optimum equals the bound, so the backend
        re-solves once without the target to recover the incumbent — the
        guidance then costs one extra (early-stopped) solve instead of
        returning an empty ``ERROR`` solution.
        """
        try:
            from scipy.optimize import Bounds, LinearConstraint, milp
        except ImportError as exc:  # pragma: no cover - depends on environment
            raise SolverError(
                "scipy.optimize.milp is unavailable; use the branch_and_bound solver"
            ) from exc

        form = model.to_standard_form()
        n = len(form.variables)
        if n == 0:
            return Solution(
                status=SolveStatus.OPTIMAL,
                objective_value=form.objective_constant,
                values={},
                solver_name=self.name,
            )

        constraints = []
        if form.a_ub.shape[0]:
            constraints.append(
                LinearConstraint(form.a_ub, -np.inf * np.ones(form.a_ub.shape[0]), form.b_ub)
            )
        if form.a_eq.shape[0]:
            constraints.append(LinearConstraint(form.a_eq, form.b_eq, form.b_eq))

        bounds = Bounds(lb=form.lower, ub=form.upper)
        solver_options: dict[str, object] = {"mip_rel_gap": mip_rel_gap}
        if time_limit is not None:
            solver_options["time_limit"] = float(time_limit)
        if presolve is not None:
            solver_options["presolve"] = bool(presolve)
        solver_options.update(options.get("highs_options", {}))
        if known_lower_bound is not None:
            # Translate the external-objective bound into HiGHS's internal
            # minimisation units (constant stripped, sign flipped when the
            # model maximises).
            target = float(known_lower_bound) - form.objective_constant
            if form.maximize:
                target = -target
            solver_options["objective_target"] = target

        started = time.perf_counter()
        with warnings.catch_warnings():
            # scipy.optimize.milp warns about options it does not recognise
            # before passing them to HiGHS verbatim; objective_target is one
            # of those, and the pass-through is exactly what we want.
            warnings.filterwarnings(
                "ignore", message="Unrecognized options detected"
            )
            result = milp(
                c=form.c,
                constraints=constraints,
                integrality=form.integrality,
                bounds=bounds,
                options=solver_options,
            )
            if result.x is None and "objective_target" in solver_options:
                # HiGHS stopped because an incumbent reached the objective
                # target, but scipy discards the solution vector for that
                # model status.  Reaching the target proves the optimum
                # equals the known bound, so an ordinary re-solve recovers
                # the incumbent.
                retry_options = dict(solver_options)
                del retry_options["objective_target"]
                result = milp(
                    c=form.c,
                    constraints=constraints,
                    integrality=form.integrality,
                    bounds=bounds,
                    options=retry_options,
                )
        elapsed = time.perf_counter() - started

        status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
        values: dict = {}
        objective = None
        if result.x is not None:
            x = np.asarray(result.x, dtype=float)
            values = {var: self._clean(var, x[i]) for i, var in enumerate(form.variables)}
            raw_objective = float(form.c @ x)
            if form.maximize:
                raw_objective = -raw_objective
            objective = raw_objective + form.objective_constant
            if status is not SolveStatus.OPTIMAL:
                # An incumbent exists even though the solver stopped early.
                status = SolveStatus.TIME_LIMIT
        return Solution(
            status=status,
            objective_value=objective,
            values=values,
            solver_name=self.name,
            solve_seconds=elapsed,
        )

    @staticmethod
    def _clean(variable, value: float) -> float:
        """Snap integral variables to the nearest integer to remove noise."""
        if variable.is_integral:
            return float(round(value))
        return float(value)
