"""A pure-Python branch-and-bound MILP solver.

The solver performs a best-first search over LP relaxations solved with
:func:`scipy.optimize.linprog` (HiGHS LP).  It is exact: it terminates with
``OPTIMAL`` once the best node bound matches the incumbent, and with
``INFEASIBLE`` when no integral assignment satisfies the constraints.  It is
intentionally simple — no cutting planes, no presolve beyond what HiGHS does
for each relaxation — because its role in this repository is to cross-check
the primary SciPy/HiGHS MILP backend and to keep the library functional when
``scipy.optimize.milp`` is unavailable.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro.milp.solution import Solution, SolveStatus
from repro.milp.solvers.base import SolverBackend

_INTEGRALITY_TOLERANCE = 1e-6


@dataclass(order=True)
class _Node:
    """A subproblem in the branch-and-bound tree, ordered by its LP bound."""

    bound: float
    tie_breaker: int = field(compare=True)
    lower: np.ndarray = field(compare=False, default=None)
    upper: np.ndarray = field(compare=False, default=None)


class BranchAndBoundSolver(SolverBackend):
    """Best-first branch and bound over LP relaxations."""

    name = "branch_and_bound"

    def solve(
        self,
        model,
        time_limit: float | None = None,
        node_limit: int = 200_000,
        absolute_gap: float = 1e-6,
        warm_start_values=None,
        warm_start_tolerance: float = 1e-6,
        known_lower_bound: float | None = None,
        **_options,
    ) -> Solution:
        """Solve ``model``; exact unless a limit interrupts the search.

        ``warm_start_values`` may carry a variable → value mapping (e.g. the
        incumbent of a previous solve).  It is *checked* against the current
        constraints before use, so passing a solution that newer rows (no-good
        cuts) exclude is safe — it is simply discarded.  When it is feasible
        it seeds the incumbent, letting best-first search prune immediately.

        ``known_lower_bound`` is a proven lower bound on the optimal objective
        (in :class:`Solution` units, i.e. including the objective constant and
        the model's sense).  Enumeration loops know one: appending constraints
        can only increase a minimum, so the previous optimum is a valid bound.
        The search stops as soon as the incumbent matches it.
        """
        form = model.to_standard_form()
        n = len(form.variables)
        started = time.perf_counter()
        if n == 0:
            return Solution(
                status=SolveStatus.OPTIMAL,
                objective_value=form.objective_constant,
                values={},
                solver_name=self.name,
            )

        integral_indices = np.flatnonzero(form.integrality == 1)
        counter = itertools.count()

        internal_lower = -np.inf
        if known_lower_bound is not None:
            internal_lower = float(known_lower_bound) - form.objective_constant
            if form.maximize:
                internal_lower = -internal_lower

        # Check the warm start *before* touching any LP: a warm incumbent that
        # already matches a proven lower bound is optimal, and the solve must
        # terminate immediately (zero relaxations) — the portfolio racer leans
        # on this when one engine's proof reaches another's launch.
        incumbent_value = np.inf
        incumbent_x: np.ndarray | None = None
        warm_x = self._feasible_warm_start(form, warm_start_values, warm_start_tolerance)
        if warm_x is not None:
            incumbent_value = float(form.c @ warm_x)
            incumbent_x = warm_x

        heap: list[_Node] = []
        if incumbent_x is None or incumbent_value > internal_lower + absolute_gap:
            root_relaxation = self._solve_relaxation(form, form.lower, form.upper)
            if root_relaxation is None:
                if incumbent_x is None:
                    return Solution(
                        status=SolveStatus.INFEASIBLE,
                        solver_name=self.name,
                        solve_seconds=time.perf_counter() - started,
                    )
                # A feasible warm start refutes root-LP infeasibility (numerics);
                # fall through and return the incumbent.
            else:
                root_bound, _ = root_relaxation
                heap = [
                    _Node(
                        root_bound, next(counter), form.lower.copy(), form.upper.copy()
                    )
                ]
        nodes_explored = 0
        status = SolveStatus.OPTIMAL

        while heap:
            if incumbent_x is not None and incumbent_value <= internal_lower + absolute_gap:
                # The incumbent matches a proven lower bound: optimal.
                break
            if time_limit is not None and time.perf_counter() - started > time_limit:
                status = SolveStatus.TIME_LIMIT
                break
            if nodes_explored >= node_limit:
                status = SolveStatus.NODE_LIMIT
                break

            node = heapq.heappop(heap)
            if node.bound >= incumbent_value - absolute_gap:
                # Bound cannot improve on the incumbent; search is complete
                # because the heap is ordered by bound.
                break

            relaxation = self._solve_relaxation(form, node.lower, node.upper)
            nodes_explored += 1
            if relaxation is None:
                continue
            bound, x = relaxation
            if bound >= incumbent_value - absolute_gap:
                continue

            branch_index = self._most_fractional(x, integral_indices)
            if branch_index is None:
                # Integral solution: new incumbent.
                if bound < incumbent_value:
                    incumbent_value = bound
                    incumbent_x = x
                continue

            floor_value = np.floor(x[branch_index])
            # "Down" child: x_i <= floor(value)
            down_upper = node.upper.copy()
            down_upper[branch_index] = floor_value
            if node.lower[branch_index] <= down_upper[branch_index]:
                heapq.heappush(
                    heap, _Node(bound, next(counter), node.lower.copy(), down_upper)
                )
            # "Up" child: x_i >= floor(value) + 1
            up_lower = node.lower.copy()
            up_lower[branch_index] = floor_value + 1
            if up_lower[branch_index] <= node.upper[branch_index]:
                heapq.heappush(
                    heap, _Node(bound, next(counter), up_lower, node.upper.copy())
                )

        elapsed = time.perf_counter() - started
        if incumbent_x is None:
            terminal = (
                SolveStatus.INFEASIBLE if status is SolveStatus.OPTIMAL else status
            )
            return Solution(
                status=terminal,
                solver_name=self.name,
                solve_seconds=elapsed,
                nodes_explored=nodes_explored,
            )

        values = {}
        for i, var in enumerate(form.variables):
            value = float(incumbent_x[i])
            if var.is_integral:
                value = float(round(value))
            values[var] = value
        objective = incumbent_value
        if form.maximize:
            objective = -objective
        objective += form.objective_constant
        return Solution(
            status=status,
            objective_value=objective,
            values=values,
            solver_name=self.name,
            solve_seconds=elapsed,
            nodes_explored=nodes_explored,
        )

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _feasible_warm_start(form, values, tolerance: float = 1e-6):
        """Vector for a warm-start mapping if it satisfies ``form``, else ``None``."""
        if not values:
            return None
        x = np.array([float(values.get(var, 0.0)) for var in form.variables])
        integral = form.integrality == 1
        x[integral] = np.round(x[integral])
        if np.any(x < form.lower - tolerance) or np.any(x > form.upper + tolerance):
            return None
        if form.a_ub.shape[0] and np.any(form.a_ub @ x > form.b_ub + tolerance):
            return None
        if form.a_eq.shape[0] and np.any(np.abs(form.a_eq @ x - form.b_eq) > tolerance):
            return None
        return x

    @staticmethod
    def _solve_relaxation(form, lower: np.ndarray, upper: np.ndarray):
        """Solve the LP relaxation; return ``(objective, x)`` or ``None``."""
        bounds = list(zip(lower, upper))
        result = linprog(
            c=form.c,
            A_ub=form.a_ub if form.a_ub.shape[0] else None,
            b_ub=form.b_ub if form.a_ub.shape[0] else None,
            A_eq=form.a_eq if form.a_eq.shape[0] else None,
            b_eq=form.b_eq if form.a_eq.shape[0] else None,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            return None
        return float(result.fun), np.asarray(result.x, dtype=float)

    @staticmethod
    def _most_fractional(x: np.ndarray, integral_indices: np.ndarray):
        """Index of the integral variable farthest from an integer, or None."""
        if integral_indices.size == 0:
            return None
        fractional_parts = np.abs(
            x[integral_indices] - np.round(x[integral_indices])
        )
        worst = int(np.argmax(fractional_parts))
        if fractional_parts[worst] <= _INTEGRALITY_TOLERANCE:
            return None
        return int(integral_indices[worst])
