"""Solver backends for the MILP modeling layer.

Two exact backends are provided:

``"scipy"``
    Wraps :func:`scipy.optimize.milp` (the HiGHS branch-and-cut solver).  This
    is the default when SciPy exposes ``milp``.

``"branch_and_bound"``
    A pure-Python best-first branch-and-bound over LP relaxations solved with
    :func:`scipy.optimize.linprog`.  It is exact but slower; it exists as an
    independent cross-check of the HiGHS results and as the fallback when a
    SciPy build lacks ``milp``.

``get_solver("auto")`` picks ``scipy`` when available, otherwise
``branch_and_bound``.
"""

from __future__ import annotations

from repro.exceptions import SolverError
from repro.milp.solvers.base import SolverBackend
from repro.milp.solvers.branch_and_bound import BranchAndBoundSolver
from repro.milp.solvers.scipy_backend import ScipySolver, scipy_milp_available

_REGISTRY: dict[str, type[SolverBackend]] = {
    "scipy": ScipySolver,
    "highs": ScipySolver,
    "branch_and_bound": BranchAndBoundSolver,
    "bnb": BranchAndBoundSolver,
}


def available_solvers() -> list[str]:
    """Names of backends that can run in the current environment."""
    names = ["branch_and_bound"]
    if scipy_milp_available():
        names.insert(0, "scipy")
    return names


def get_solver(name: str = "auto") -> SolverBackend:
    """Instantiate a solver backend by name (``"auto"`` picks the best)."""
    key = name.lower()
    if key == "auto":
        key = "scipy" if scipy_milp_available() else "branch_and_bound"
    if key not in _REGISTRY:
        raise SolverError(
            f"unknown solver {name!r}; available: {sorted(set(_REGISTRY))}"
        )
    return _REGISTRY[key]()


__all__ = [
    "BranchAndBoundSolver",
    "ScipySolver",
    "SolverBackend",
    "available_solvers",
    "get_solver",
]
