"""Solver backends for the MILP modeling layer.

Two exact backends are provided:

``"scipy"``
    Wraps :func:`scipy.optimize.milp` (the HiGHS branch-and-cut solver).  This
    is the default when SciPy exposes ``milp``.

``"branch_and_bound"``
    A pure-Python best-first branch-and-bound over LP relaxations solved with
    :func:`scipy.optimize.linprog`.  It is exact but slower; it exists as an
    independent cross-check of the HiGHS results and as the fallback when a
    SciPy build lacks ``milp``.

``get_solver("auto")`` first honours the ``REPRO_MILP_BACKEND`` environment
variable (any registered backend name), then picks ``scipy`` when available,
otherwise ``branch_and_bound``.
"""

from __future__ import annotations

import os

from repro.exceptions import SolverError
from repro.milp.solvers.base import SolverBackend
from repro.milp.solvers.branch_and_bound import BranchAndBoundSolver
from repro.milp.solvers.scipy_backend import ScipySolver, scipy_milp_available

_REGISTRY: dict[str, type[SolverBackend]] = {
    "scipy": ScipySolver,
    "highs": ScipySolver,
    "branch_and_bound": BranchAndBoundSolver,
    "bnb": BranchAndBoundSolver,
}


def available_solvers() -> list[str]:
    """Names of backends that can run in the current environment."""
    names = ["branch_and_bound"]
    if scipy_milp_available():
        names.insert(0, "scipy")
    return names


#: Environment variable consulted by ``get_solver("auto")``; lets CI and
#: benchmark runs force the fallback backend without touching call sites.
BACKEND_ENV_VAR = "REPRO_MILP_BACKEND"


def get_solver(name: str = "auto") -> SolverBackend:
    """Instantiate a solver backend by name (``"auto"`` picks the best).

    ``"auto"`` resolves, in order: the ``REPRO_MILP_BACKEND`` environment
    variable (when set and non-empty; an unknown value raises
    :class:`~repro.exceptions.SolverError` rather than being silently
    ignored), then ``"scipy"`` when SciPy exposes ``milp``, then the
    pure-Python ``"branch_and_bound"`` fallback.
    """
    key = name.lower()
    if key == "auto":
        override = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
        if override:
            if override not in _REGISTRY:
                raise SolverError(
                    f"unknown {BACKEND_ENV_VAR} backend {override!r}; "
                    f"available: {sorted(set(_REGISTRY))}"
                )
            key = override
        else:
            key = "scipy" if scipy_milp_available() else "branch_and_bound"
    if key not in _REGISTRY:
        raise SolverError(
            f"unknown solver {name!r}; available: {sorted(set(_REGISTRY))}"
        )
    return _REGISTRY[key]()


__all__ = [
    "BACKEND_ENV_VAR",
    "BranchAndBoundSolver",
    "ScipySolver",
    "SolverBackend",
    "available_solvers",
    "get_solver",
]
