"""Solution and status objects returned by the MILP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.milp.expression import LinearExpression, Variable


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"
    ERROR = "error"


@dataclass(frozen=True)
class Solution:
    """The result of solving a :class:`repro.milp.model.Model`.

    Attributes
    ----------
    status:
        Terminal :class:`SolveStatus` of the solve.
    objective_value:
        Objective value of the incumbent (``None`` when no incumbent exists).
    values:
        Mapping from :class:`Variable` to its value in the incumbent.
    solver_name:
        Which backend produced the solution.
    solve_seconds:
        Wall-clock time spent inside the backend.
    nodes_explored:
        Number of branch-and-bound nodes (0 for direct HiGHS solves).
    """

    status: SolveStatus
    objective_value: float | None = None
    values: Mapping[Variable, float] = field(default_factory=dict)
    solver_name: str = ""
    solve_seconds: float = 0.0
    nodes_explored: int = 0

    @property
    def is_optimal(self) -> bool:
        """True when the solver proved optimality."""
        return self.status is SolveStatus.OPTIMAL

    @property
    def has_incumbent(self) -> bool:
        """True when the solution carries an assignment, whatever the status.

        Weaker than :attr:`is_feasible` by design: a time- or node-limited
        solve that found *any* integral assignment has an incumbent, which is
        exactly what an anytime caller (the portfolio racer) wants to read.
        """
        return bool(self.values)

    @property
    def is_feasible(self) -> bool:
        """True when an incumbent assignment is available."""
        return self.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.NODE_LIMIT,
            SolveStatus.TIME_LIMIT,
        ) and bool(self.values)

    def value(self, item: Variable | LinearExpression, default: float = 0.0) -> float:
        """Value of a variable or linear expression under this solution."""
        if isinstance(item, Variable):
            return float(self.values.get(item, default))
        if isinstance(item, LinearExpression):
            return item.evaluate(self.values)
        raise TypeError(f"cannot evaluate object of type {type(item).__name__}")

    def rounded(self, item: Variable, tolerance: float = 1e-6) -> int:
        """Integer value of an integral variable, guarding against round-off."""
        raw = self.value(item)
        nearest = round(raw)
        if abs(raw - nearest) > 1e-4:
            # Keep the raw value visible in the error; this indicates either a
            # non-integral variable or a solver tolerance issue.
            raise ValueError(
                f"variable {item.name!r} has non-integral value {raw!r}"
            )
        return int(nearest)
