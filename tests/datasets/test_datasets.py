"""Tests for the dataset generators and the mini-SDV synthesizer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    TableSynthesizer,
    astronauts_database,
    astronauts_query,
    law_students_database,
    law_students_query,
    load_dataset,
    meps_database,
    meps_query,
    scale_database,
    students_database,
    tpch_database,
    tpch_q5,
)
from repro.datasets.registry import DATASET_BUILDERS
from repro.exceptions import DatasetError
from repro.provenance import annotate
from repro.relational import QueryExecutor


class TestStudents:
    def test_table_sizes_match_paper(self):
        database = students_database()
        assert len(database.relation("Students")) == 14
        assert len(database.relation("Activities")) == 14

    def test_table1_values(self):
        students = students_database().relation("Students")
        first = students.row_as_dict(0)
        assert first == {"ID": "t1", "Gender": "M", "Income": "Medium", "GPA": 3.7, "SAT": 1590}
        last = students.row_as_dict(13)
        assert last["ID"] == "t14" and last["SAT"] == 1410


class TestAstronauts:
    def test_row_count_and_domain_sizes(self):
        database = astronauts_database()
        astronauts = database.relation("Astronauts")
        assert len(astronauts) == 357
        majors = astronauts.domain("Graduate Major")
        assert 100 <= len(majors) <= 114
        assert "Physics" in majors

    def test_gender_share_is_roughly_calibrated(self):
        astronauts = astronauts_database(seed=7).relation("Astronauts")
        female = astronauts.count_where(lambda row: row["Gender"] == "F")
        assert 0.08 <= female / len(astronauts) <= 0.25

    def test_query_returns_physicists_with_walk_range(self):
        database = astronauts_database()
        result = QueryExecutor(database).evaluate(astronauts_query())
        assert len(result) > 0
        for row in result.relation.iter_dicts():
            assert row["Graduate Major"] == "Physics"
            assert 1 <= row["Space Walks"] <= 3

    def test_determinism_per_seed(self):
        first = astronauts_database(seed=3).relation("Astronauts").rows
        second = astronauts_database(seed=3).relation("Astronauts").rows
        assert first == second
        different = astronauts_database(seed=4).relation("Astronauts").rows
        assert first != different

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            astronauts_database(num_rows=0)
        with pytest.raises(DatasetError):
            astronauts_database(female_share=1.5)


class TestLawStudents:
    def test_row_count_and_groups(self):
        database = law_students_database(num_rows=2000, seed=11)
        students = database.relation("LawStudents")
        assert len(students) == 2000
        races = set(students.domain("Race"))
        assert {"White", "Black", "Asian"} <= races
        female_share = students.count_where(lambda r: r["Sex"] == "F") / 2000
        assert 0.35 <= female_share <= 0.55

    def test_query_selects_gl_region_with_gpa_window(self):
        database = law_students_database(num_rows=1000, seed=11)
        result = QueryExecutor(database).evaluate(law_students_query())
        assert len(result) > 0
        for row in result.relation.iter_dicts():
            assert row["Region"] == "GL"
            assert 3.5 <= row["GPA"] <= 4.0

    def test_lineage_class_count_matches_paper_order_of_magnitude(self):
        database = law_students_database(num_rows=21_790, seed=11)
        annotated = annotate(law_students_query(), database)
        # The paper reports roughly 240-290 lineage classes for Law Students.
        assert 100 <= annotated.num_lineage_classes <= 400


class TestMEPS:
    def test_row_count_and_utilization_definition(self):
        database = meps_database(num_rows=1500, seed=13)
        meps = database.relation("MEPS")
        assert len(meps) == 1500
        for row in list(meps.iter_dicts())[:200]:
            expected = (
                row["OfficeVisits"]
                + row["ERVisits"]
                + row["InpatientNights"]
                + row["HomeHealthVisits"]
            )
            assert row["Utilization"] == pytest.approx(expected)

    def test_query_filters_age_and_family_size(self):
        database = meps_database(num_rows=1500, seed=13)
        result = QueryExecutor(database).evaluate(meps_query())
        assert len(result) > 0
        for row in result.relation.iter_dicts():
            assert row["Age"] > 22 and row["Family Size"] >= 4


class TestTPCH:
    def test_schema_and_scaling(self):
        database = tpch_database(scale_factor=0.2, seed=17)
        assert {"Region", "Nation", "Customer", "Orders", "Lineitem", "Supplier"} <= set(
            database.names
        )
        assert len(database.relation("Region")) == 5
        assert len(database.relation("Nation")) == 25
        bigger = tpch_database(scale_factor=0.4, seed=17)
        assert len(bigger.relation("Orders")) == 2 * len(database.relation("Orders"))

    def test_q5_joins_and_filters_asia(self):
        database = tpch_database(scale_factor=0.1, seed=17)
        result = QueryExecutor(database).evaluate(tpch_q5())
        assert len(result) > 0
        for row in result.relation.iter_dicts():
            assert row["Region"] == "ASIA"

    def test_q5_has_exactly_five_lineage_classes(self):
        """The paper highlights that Q5 yields only 5 lineage equivalence classes."""
        database = tpch_database(scale_factor=0.1, seed=17)
        annotated = annotate(tpch_q5(), database)
        assert annotated.num_lineage_classes == 5

    def test_invalid_scale_factor(self):
        with pytest.raises(DatasetError):
            tpch_database(scale_factor=0)


class TestRegistry:
    def test_all_bundles_evaluate(self):
        for name in DATASET_BUILDERS:
            parameters = {}
            if name in ("law_students", "meps"):
                parameters["num_rows"] = 300
            if name == "tpch":
                parameters["scale_factor"] = 0.05
            bundle = load_dataset(name, **parameters)
            result = QueryExecutor(bundle.database).evaluate(bundle.query)
            assert len(result) > 0, name

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("imdb")


class TestSynthesizer:
    def test_sample_preserves_schema_and_size(self):
        relation = law_students_database(num_rows=400, seed=1).relation("LawStudents")
        synthesizer = TableSynthesizer(relation, identifier="ID", seed=0)
        sampled = synthesizer.sample(900)
        assert len(sampled) == 900
        assert sampled.schema == relation.schema

    def test_identifier_column_stays_unique(self):
        relation = law_students_database(num_rows=300, seed=1).relation("LawStudents")
        sampled = TableSynthesizer(relation, identifier="ID", seed=0).sample(600)
        ids = sampled.column("ID")
        assert len(set(ids)) == 600

    def test_categorical_marginals_are_roughly_preserved(self):
        relation = law_students_database(num_rows=3000, seed=1).relation("LawStudents")
        sampled = TableSynthesizer(relation, identifier="ID", seed=0).sample(3000)
        original_share = relation.count_where(lambda r: r["Sex"] == "F") / len(relation)
        sampled_share = sampled.count_where(lambda r: r["Sex"] == "F") / len(sampled)
        assert abs(original_share - sampled_share) < 0.08

    def test_numerical_values_stay_within_observed_range(self):
        relation = law_students_database(num_rows=500, seed=1).relation("LawStudents")
        sampled = TableSynthesizer(relation, identifier="ID", seed=0).sample(1000)
        low, high = relation.min_max("LSAT")
        sampled_low, sampled_high = sampled.min_max("LSAT")
        assert sampled_low >= low - 1e-9 and sampled_high <= high + 1e-9

    def test_empty_relation_rejected(self):
        from repro.relational import Relation, Schema
        from repro.relational.schema import categorical

        with pytest.raises(DatasetError):
            TableSynthesizer(Relation("empty", Schema([categorical("a")]), []))

    def test_scale_database_scales_selected_relations_only(self):
        database = tpch_database(scale_factor=0.05, seed=17)
        scaled = scale_database(
            database, 2.0, identifiers={"Orders": "OrderKey"}, only=["Orders"], seed=1
        )
        assert len(scaled.relation("Orders")) == 2 * len(database.relation("Orders"))
        assert len(scaled.relation("Region")) == len(database.relation("Region"))

    def test_scale_database_rejects_nonpositive_factor(self):
        database = students_database()
        with pytest.raises(DatasetError):
            scale_database(database, 0.0)


@settings(deadline=None, max_examples=10)
@given(factor=st.floats(min_value=0.5, max_value=3.0), seed=st.integers(0, 20))
def test_property_scaling_changes_row_counts_proportionally(factor, seed):
    """Property: scale_database multiplies every relation's size by the factor."""
    database = law_students_database(num_rows=200, seed=3)
    scaled = scale_database(database, factor, identifiers={"LawStudents": "ID"}, seed=seed)
    expected = int(round(200 * factor))
    assert len(scaled.relation("LawStudents")) == expected
