"""Integration tests reproducing the worked examples and theorems of the paper."""

from __future__ import annotations

import pytest

from repro.core import (
    ConstraintSet,
    PredicateDistance,
    RefinementSolver,
    at_least,
)
from repro.relational import (
    CategoricalPredicate,
    Conjunction,
    Database,
    NumericalPredicate,
    OrderBy,
    QueryExecutor,
    Relation,
    Schema,
    SPJQuery,
)
from repro.relational.schema import categorical, numerical


class TestRunningExampleEndToEnd:
    """Examples 1.1-1.3 and 2.2-2.4, solved through the full pipeline."""

    def test_original_query_violates_both_constraints(
        self, students_db, scholarship, scholarship_constraints
    ):
        result = QueryExecutor(students_db).evaluate(scholarship)
        assert not scholarship_constraints.is_satisfied(result)

    def test_example_12_is_found_under_predicate_distance(
        self, students_db, scholarship, scholarship_constraints
    ):
        solution = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0, distance="pred"
        ).solve()
        assert solution.feasible
        # The optimal refinement is the one from Example 1.2: add 'SO'.
        assert solution.refinement.categorical["Activity"] == frozenset({"RB", "SO"})
        assert solution.distance_value == pytest.approx(0.5)
        # Its output satisfies both constraints: 3 women in the top-6, at most
        # one high-income student in the top-3.
        assert solution.constraint_counts["l[Gender=F,k=6]=3"] == 3
        assert solution.constraint_counts["u[Income=High,k=3]=1"] <= 1

    def test_example_13_is_dominated_under_predicate_distance(
        self, students_db, scholarship
    ):
        """DIS_pred(Q, Q'') ~ 0.527 > 0.5 = DIS_pred(Q, Q'), as Example 2.2 computes."""
        distance = PredicateDistance()
        q_prime = scholarship.with_where(
            Conjunction(
                [
                    NumericalPredicate("GPA", ">=", 3.7),
                    CategoricalPredicate("Activity", {"RB", "SO"}),
                ]
            )
        )
        q_double_prime = scholarship.with_where(
            Conjunction(
                [
                    NumericalPredicate("GPA", ">=", 3.6),
                    CategoricalPredicate("Activity", {"RB", "GD"}),
                ]
            )
        )
        assert distance.evaluate_queries(scholarship, q_prime) < distance.evaluate_queries(
            scholarship, q_double_prime
        )

    def test_outcome_based_solution_satisfies_constraints_with_more_overlap(
        self, students_db, scholarship, scholarship_constraints
    ):
        """Under DIS_Jaccard the solver keeps at least 5 of the original top-6."""
        solution = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0, distance="jaccard"
        ).solve()
        original = QueryExecutor(students_db).evaluate(scholarship)
        original_top6 = set(original.top_k_keys(6))
        refined_top6 = set(solution.refined_result.top_k_keys(6))
        assert len(original_top6 & refined_top6) >= 5
        assert solution.deviation == pytest.approx(0.0)


class TestTheorem25Instance:
    """The Table 3 instance proving that exact satisfaction may be impossible."""

    @pytest.fixture()
    def table3(self):
        schema = Schema([categorical("X"), categorical("Y"), numerical("Z")])
        rows = [
            ("A", "C", 6),
            ("A", "D", 5),
            ("A", "D", 4),
            ("B", "C", 3),
            ("A", "C", 2),
            ("B", "D", 1),
        ]
        return Database([Relation("Table3", schema, rows)])

    @pytest.fixture()
    def table3_query(self):
        return SPJQuery(
            tables=["Table3"],
            where=Conjunction([CategoricalPredicate("Y", {"C", "D"})]),
            order_by=OrderBy("Z", descending=True),
            name="theorem25",
        )

    def test_no_refinement_satisfies_the_constraint_exactly(self, table3, table3_query):
        """l_{X=B, k=3} = 2 cannot be met by any refinement (Theorem 2.5)."""
        constraints = ConstraintSet([at_least(2, 3, X="B")])
        result = RefinementSolver(
            table3, table3_query, constraints, epsilon=0.0, distance="pred"
        ).solve()
        assert not result.feasible

    def test_best_approximation_is_returned_with_slack(self, table3, table3_query):
        """With eps = 0.5 the solver returns a refinement with one B tuple in the top-3."""
        constraints = ConstraintSet([at_least(2, 3, X="B")])
        result = RefinementSolver(
            table3, table3_query, constraints, epsilon=0.5, distance="pred"
        ).solve()
        assert result.feasible
        assert result.deviation == pytest.approx(0.5)
        refined = QueryExecutor(table3).evaluate(result.refined_query)
        b_in_top3 = refined.count_in_top_k(3, lambda row: row["X"] == "B")
        assert b_in_top3 == 1

    def test_original_query_has_no_b_in_top3(self, table3, table3_query):
        result = QueryExecutor(table3).evaluate(table3_query)
        assert result.count_in_top_k(3, lambda row: row["X"] == "B") == 0


class TestCrossDatasetSmoke:
    """End-to-end solves on small instances of every benchmark dataset."""

    @pytest.mark.parametrize(
        "name,parameters,constraint",
        [
            ("astronauts", {"num_rows": 200}, {"Gender": "F"}),
            ("law_students", {"num_rows": 800}, {"Sex": "F"}),
            ("meps", {"num_rows": 800}, {"Sex": "F"}),
            ("tpch", {"scale_factor": 0.05}, {"MktSegment": "BUILDING"}),
        ],
    )
    def test_milp_opt_finds_acceptable_refinement(self, name, parameters, constraint):
        from repro.datasets import load_dataset

        bundle = load_dataset(name, **parameters)
        constraints = ConstraintSet(
            [at_least(3, 10, **constraint)]
        )
        result = RefinementSolver(
            bundle.database, bundle.query, constraints, epsilon=0.5, distance="pred",
            method="milp+opt",
        ).solve()
        assert result.feasible
        assert result.deviation <= 0.5 + 1e-9
        # The refined query must still be executable and return at least k* rows.
        refined = QueryExecutor(bundle.database).evaluate(result.refined_query)
        assert len(refined) >= 10

    def test_milp_and_milp_opt_agree_on_law_students(self):
        from repro.datasets import load_dataset

        bundle = load_dataset("law_students", num_rows=600)
        constraints = ConstraintSet([at_least(5, 10, Sex="F")])
        optimized = RefinementSolver(
            bundle.database, bundle.query, constraints, epsilon=0.5, method="milp+opt"
        ).solve()
        unoptimized = RefinementSolver(
            bundle.database, bundle.query, constraints, epsilon=0.5, method="milp"
        ).solve()
        assert optimized.feasible and unoptimized.feasible
        assert optimized.distance_value == pytest.approx(
            unoptimized.distance_value, abs=1e-6
        )

    def test_optimized_model_is_smaller(self):
        from repro.datasets import load_dataset

        bundle = load_dataset("law_students", num_rows=1200)
        constraints = ConstraintSet([at_least(5, 10, Sex="F")])
        optimized = RefinementSolver(
            bundle.database, bundle.query, constraints, epsilon=0.5, method="milp+opt"
        ).solve()
        unoptimized = RefinementSolver(
            bundle.database, bundle.query, constraints, epsilon=0.5, method="milp"
        ).solve()
        assert (
            optimized.model_statistics["variables"]
            < unoptimized.model_statistics["variables"]
        )
        assert (
            optimized.model_statistics["constraints"]
            < unoptimized.model_statistics["constraints"]
        )
