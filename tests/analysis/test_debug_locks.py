"""The REPRO_DEBUG_LOCKS proxies: fire on unguarded access, stay silent when off."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.analysis.debug_locks import (
    DEBUG_ENV_VAR,
    LockAssertionError,
    guard_mapping,
)
from repro.relational import Database, QueryExecutor, Relation, Schema, SPJQuery
from repro.relational.schema import categorical, numerical
from repro.service.coalesce import RequestCoalescer


@pytest.fixture
def debug_on(monkeypatch):
    monkeypatch.setenv(DEBUG_ENV_VAR, "1")


def build_executor():
    schema = Schema([categorical("id"), numerical("score")])
    database = Database([Relation("r", schema, [("a", 1.0), ("b", 2.0)])])
    query = SPJQuery(tables=["r"], where=(), order_by="score", name="q")
    return QueryExecutor(database, backend="memory"), query


class TestGuardMapping:
    def test_disabled_mode_returns_the_same_object(self, monkeypatch):
        monkeypatch.delenv(DEBUG_ENV_VAR, raising=False)
        mapping = {}
        assert guard_mapping(mapping, threading.Lock(), "x") is mapping

    def test_proxy_fires_on_every_unguarded_operation(self, debug_on):
        lock = threading.RLock()
        table = guard_mapping({}, lock, "fixture.table")
        with lock:
            table["a"] = 1
        for operation in (
            lambda: table["a"],
            lambda: table.get("a"),
            lambda: len(table),
            lambda: "a" in table,
            lambda: list(table.items()),
            lambda: table.pop("a"),
        ):
            with pytest.raises(LockAssertionError):
                operation()
        with lock:
            assert table["a"] == 1

    def test_plain_lock_satisfied_while_held_by_anyone(self, debug_on):
        lock = threading.Lock()
        table = guard_mapping({}, lock, "fixture.table")
        with pytest.raises(LockAssertionError):
            table["a"] = 1
        with lock:
            table["a"] = 1
            assert table["a"] == 1

    def test_ordered_dict_proxy_checks_move_to_end(self, debug_on):
        from collections import OrderedDict

        lock = threading.RLock()
        table = guard_mapping(OrderedDict(), lock, "fixture.lru")
        with lock:
            table["a"] = 1
            table["b"] = 2
            table.move_to_end("a")
            assert list(table) == ["b", "a"]
        with pytest.raises(LockAssertionError):
            table.move_to_end("b")


class TestExecutorIntegration:
    def test_unguarded_cache_poke_raises(self, debug_on):
        executor, _ = build_executor()
        with pytest.raises(LockAssertionError):
            executor._join_cache["shape"] = object()
        with pytest.raises(LockAssertionError):
            executor._sqlite_pool._executors.get(0)

    def test_normal_evaluation_takes_its_locks(self, debug_on):
        executor, query = build_executor()
        assert len(executor.evaluate(query)) == 2
        # Warm second evaluation reads the caches -- still under the lock.
        assert len(executor.evaluate(query)) == 2

    def test_pickle_roundtrip_rearms_the_proxies(self, debug_on):
        executor, query = build_executor()
        executor.evaluate(query)
        clone = pickle.loads(pickle.dumps(executor))
        with pytest.raises(LockAssertionError):
            clone._join_cache.get(("r",))
        assert len(clone.evaluate(query)) == 2

    def test_reset_connections_keeps_the_proxies_armed(self, debug_on):
        executor, query = build_executor()
        executor.evaluate(query)
        executor.reset_connections()
        with pytest.raises(LockAssertionError):
            executor._join_cache.get(("r",))
        assert len(executor.evaluate(query)) == 2


class TestCoalescerIntegration:
    def test_inflight_map_is_guarded(self, debug_on):
        coalescer = RequestCoalescer()
        with pytest.raises(LockAssertionError):
            coalescer._inflight.get("key")
        assert coalescer.run("key", lambda: 42) == 42
        assert coalescer.started == 1
