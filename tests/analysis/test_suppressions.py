"""Suppression-comment semantics: reasons required, usage tracked."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import parse_suppressions
from repro.analysis.engine import (
    BAD_SUPPRESSION,
    UNKNOWN_SUPPRESSION,
    UNUSED_SUPPRESSION,
    run_lint,
)
from repro.analysis.rules import NoMutableDefaultRule

FIXTURES = Path(__file__).parent / "fixtures"


def lint(name: str):
    return run_lint(
        [str(FIXTURES / name)], config=LintConfig(), rules=[NoMutableDefaultRule()]
    )


class TestSuppressionApplication:
    def test_reasoned_suppressions_silence_and_are_counted(self):
        report = lint("suppressed_ok.py")
        assert report.diagnostics == []
        assert len(report.suppressed) == 2
        assert len(report.suppressions) == 2
        assert all(s.used_for == {"no-mutable-default"} for s in report.suppressions)
        assert report.exit_code == 0

    def test_standalone_comment_covers_the_next_line(self):
        source = (FIXTURES / "suppressed_ok.py").read_text(encoding="utf-8")
        suppressions = parse_suppressions("suppressed_ok.py", source)
        standalone = [s for s in suppressions if s.standalone]
        assert len(standalone) == 1
        assert standalone[0].covered_lines == (
            standalone[0].line,
            standalone[0].line + 1,
        )

    def test_suppressed_diagnostics_appear_in_text_report(self):
        report = lint("suppressed_ok.py")
        rendered = report.render_text(show_suppressed=True)
        assert "suppressed:" in rendered
        assert "2 suppressed" in rendered


class TestSuppressionHygiene:
    def test_reasonless_suppression_is_an_error(self):
        report = lint("suppressed_no_reason.py")
        assert [d.rule_id for d in report.diagnostics] == [BAD_SUPPRESSION]
        # It still silences the original diagnostic -- the complaint is about
        # the missing reason, not a double report.
        assert len(report.suppressed) == 1
        assert report.exit_code == 1

    def test_stale_suppression_is_an_error(self):
        report = lint("suppressed_unused.py")
        assert [d.rule_id for d in report.diagnostics] == [UNUSED_SUPPRESSION]

    def test_unknown_rule_id_is_an_error(self):
        report = lint("suppressed_unknown.py")
        assert [d.rule_id for d in report.diagnostics] == [UNKNOWN_SUPPRESSION]
        assert "not-a-rule" in report.diagnostics[0].message
