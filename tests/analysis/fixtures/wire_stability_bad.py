"""Fixture: a wire dataclass with an unserializable field and a timing leak."""

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class Msg:
    name: str
    stamp: set[str]

    def canonical_dict(self):
        return {"name": self.name, "at": time.time()}
