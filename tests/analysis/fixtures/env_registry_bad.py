"""Fixture: undeclared, wrong-namespace, and unresolvable environment keys."""

import os

MODE = os.environ.get("REPRO_FIXTURE_UNDECLARED", "0")
OTHER = os.getenv("SOME_OTHER_TOOL_FLAG")


def read(name):
    return os.environ[name]
