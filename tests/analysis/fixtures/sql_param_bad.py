"""Fixture: predicate values interpolated straight into SQL text."""


def render(predicate):
    return f"score >= {predicate.constant}"


def render_in(predicate, quote):
    values = sorted(predicate.values)
    return "name IN (" + ", ".join(quote(value) for value in values) + ")"
