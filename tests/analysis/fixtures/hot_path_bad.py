"""Fixture: row-wise iteration and per-row dicts in a hot module."""


def slow_scan(relation, member):
    total = 0
    for row in relation.iter_dicts():
        if member(row):
            total += 1
    return total


def build(rows):
    out = []
    for row in rows:
        out.append({"id": row[0], "score": row[1]})
    return out
