"""Fixture: a bare except and a silently swallowed Exception."""


def run(task):
    try:
        task()
    except:
        return None


def swallow(task):
    try:
        task()
    except Exception:
        pass
