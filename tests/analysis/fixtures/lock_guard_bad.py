"""Fixture: a guarded table read outside its lock (one seeded violation)."""

import threading


class GuardedThing:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = {}

    def bad_read(self, key):
        return self._table.get(key)

    def good_write(self, key, value):
        with self._lock:
            self._table[key] = value
