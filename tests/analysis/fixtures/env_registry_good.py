"""Fixture: declared keys, one via a module-level constant."""

import os

KNOWN = "REPRO_FIXTURE_KNOWN"

MODE = os.environ.get(KNOWN, "0")
ALSO = os.getenv("REPRO_FIXTURE_ALSO")
