"""Fixture: every guarded access is locked or in an exempt method."""

import threading


class GuardedThing:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = {}

    def write(self, key, value):
        with self._lock:
            self._table[key] = value

    def read(self, key):
        with self._lock:
            return self._table.get(key)

    def size_locked(self):
        return len(self._table)

    def __getstate__(self):
        return {"table": dict(self._table)}
