"""Fixture: the None-gated idiom."""


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
