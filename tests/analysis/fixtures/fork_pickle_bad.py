"""Fixture: a lock owner without pickle hygiene (one seeded violation)."""

import threading


class BadOwner:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = []
