"""Fixture: columnar evaluation; dicts only outside explicit loops."""


def fast_scan(mask):
    return int(mask.sum())


def build(rows):
    return [{"id": row[0], "score": row[1]} for row in rows]


def index(names):
    lookup = {name: position for position, name in enumerate(names)}
    return lookup
