"""Fixture: a suppression without a reason (itself an error)."""


def collect(item, bucket=[]):  # repro-lint: disable=no-mutable-default
    bucket.append(item)
    return bucket
