"""Fixture: a stale suppression that silences nothing."""


def clean(item, bucket=None):  # repro-lint: disable=no-mutable-default -- fixture: stale, nothing to silence
    return [item] if bucket is None else bucket + [item]
