"""Fixture: violations silenced by suppressions that carry reasons."""


def collect(item, bucket=[]):  # repro-lint: disable=no-mutable-default -- fixture: intentional shared accumulator
    bucket.append(item)
    return bucket


# repro-lint: disable=no-mutable-default -- fixture: standalone form covers the next line
def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts
