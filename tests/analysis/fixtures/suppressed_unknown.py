"""Fixture: a suppression naming a rule id that does not exist."""


def clean():  # repro-lint: disable=not-a-rule -- fixture: typo in the rule id
    return None
