"""Fixture: handlers that name their exceptions or act on them."""


def run(task):
    try:
        task()
    except ValueError:
        return None


def log_and_continue(task, log):
    try:
        task()
    except Exception as error:
        log.append(error)
