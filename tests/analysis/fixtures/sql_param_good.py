"""Fixture: the same clauses with values bound as '?' parameters."""


def render(predicate):
    return "score >= ?", (predicate.constant,)


def render_in(predicate):
    non_null = [value for value in predicate.values if value is not None]
    placeholders = ", ".join(["?"] * len(non_null))
    return "name IN (" + placeholders + ")", tuple(non_null)
