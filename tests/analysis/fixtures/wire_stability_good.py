"""Fixture: a wire dataclass with JSON-clean fields and canonical form."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Msg:
    name: str
    tags: tuple[str, ...]
    count: int | None = None

    def canonical_dict(self):
        return {"name": self.name, "tags": list(self.tags), "count": self.count}
