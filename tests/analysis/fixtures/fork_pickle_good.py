"""Fixture: a lock owner that drops the lock when pickled, plus an exempt one."""

import threading


class GoodOwner:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = []

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_lock"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


class ExemptOwner:
    """On the exemption list in the test's config."""

    def __init__(self):
        self._lock = threading.RLock()
