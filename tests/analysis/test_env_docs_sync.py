"""The README environment table is generated from the registry -- no drift."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.debug_locks import DEBUG_ENV_VAR
from repro.analysis.env_registry import (
    ENV_VARS,
    registered_names,
    render_markdown_table,
)

ROOT = Path(__file__).resolve().parents[2]
BEGIN = "<!-- env-table:begin -->"
END = "<!-- env-table:end -->"


def test_readme_env_table_matches_registry():
    text = (ROOT / "README.md").read_text(encoding="utf-8")
    assert BEGIN in text and END in text, (
        "README.md is missing the env-table markers; "
        "run scripts/generate_env_docs.py"
    )
    block = text.split(BEGIN, 1)[1].split(END, 1)[0].strip()
    assert block == render_markdown_table(), (
        "README.md env table is out of date; run scripts/generate_env_docs.py"
    )


def test_registry_names_are_namespaced_and_unique():
    names = [var.name for var in ENV_VARS]
    assert len(names) == len(set(names))
    assert all(name.startswith("REPRO_") for name in names)
    assert all(var.description.strip() for var in ENV_VARS)


def test_debug_locks_variable_is_declared():
    assert DEBUG_ENV_VAR in registered_names()
