"""Per-rule pass/fail tests against the committed fixture files.

Every rule gets at least one fixture that must trip it and one that must stay
clean.  The fixtures are real files (not inline strings) so the exact bytes
the rules see are reviewable in the repository.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.config import LintConfig
from repro.analysis.engine import run_lint
from repro.analysis.registry import GuardSpec
from repro.analysis.rules import (
    EnvVarRegistryRule,
    ForkPickleRule,
    HotPathRowwiseRule,
    LockGuardRule,
    NoBareExceptRule,
    NoMutableDefaultRule,
    SqlParameterizationRule,
    WireStabilityRule,
)

FIXTURES = Path(__file__).parent / "fixtures"


def fixture(name: str) -> str:
    path = FIXTURES / name
    assert path.exists(), f"missing fixture {name}"
    return str(path)


def lint(name: str, rule, config: LintConfig):
    return run_lint([fixture(name)], config=config, rules=[rule])


class TestLockGuard:
    CONFIG = LintConfig(
        lock_guards={
            "GuardedThing": GuardSpec(
                lock="_lock", attributes=("_table",), note="fixture"
            )
        }
    )

    def test_catches_seeded_violation(self):
        report = lint("lock_guard_bad.py", LockGuardRule(), self.CONFIG)
        assert [d.rule_id for d in report.diagnostics] == ["lock-guard"]
        assert "_table" in report.diagnostics[0].message

    def test_locked_and_exempt_accesses_pass(self):
        report = lint("lock_guard_good.py", LockGuardRule(), self.CONFIG)
        assert report.diagnostics == []


class TestForkPickle:
    CONFIG = LintConfig(fork_pickle_exempt={"ExemptOwner": "fixture: never pickled"})

    def test_catches_seeded_violation(self):
        report = lint("fork_pickle_bad.py", ForkPickleRule(), self.CONFIG)
        assert [d.rule_id for d in report.diagnostics] == ["fork-pickle-hygiene"]
        assert "BadOwner" in report.diagnostics[0].message

    def test_hygienic_and_exempt_owners_pass(self):
        report = lint("fork_pickle_good.py", ForkPickleRule(), self.CONFIG)
        assert report.diagnostics == []


class TestSqlParameterization:
    CONFIG = LintConfig(
        sql_modules=("sql_param_bad.py", "sql_param_good.py"),
        sql_value_helpers=("_quote_literal",),
        sql_value_attributes=("constant", "values"),
    )

    def test_catches_interpolated_values(self):
        report = lint("sql_param_bad.py", SqlParameterizationRule(), self.CONFIG)
        rules = {d.rule_id for d in report.diagnostics}
        assert rules == {"sql-parameterization"}
        assert len(report.diagnostics) >= 2  # the f-string and the '+' splice

    def test_parameterized_rendering_passes(self):
        report = lint("sql_param_good.py", SqlParameterizationRule(), self.CONFIG)
        assert report.diagnostics == []

    def test_rule_is_scoped_to_sql_modules(self):
        config = LintConfig(
            sql_modules=("some_other_module.py",),
            sql_value_attributes=("constant", "values"),
        )
        report = lint("sql_param_bad.py", SqlParameterizationRule(), config)
        assert report.diagnostics == []


class TestHotPathRowwise:
    CONFIG = LintConfig(hot_modules=("hot_path_bad.py", "hot_path_good.py"))

    def test_catches_rowwise_patterns(self):
        report = lint("hot_path_bad.py", HotPathRowwiseRule(), self.CONFIG)
        messages = " ".join(d.message for d in report.diagnostics)
        assert len(report.diagnostics) == 2
        assert "iter_dicts" in messages
        assert "dict literal" in messages

    def test_columnar_code_passes(self):
        report = lint("hot_path_good.py", HotPathRowwiseRule(), self.CONFIG)
        assert report.diagnostics == []


class TestWireStability:
    CONFIG = LintConfig(
        wire_modules=("wire_stability_bad.py", "wire_stability_good.py"),
        wire_classes=("Msg",),
        wire_forbidden_names=("time", "timings"),
    )

    def test_catches_bad_field_and_timing_leak(self):
        report = lint("wire_stability_bad.py", WireStabilityRule(), self.CONFIG)
        messages = " ".join(d.message for d in report.diagnostics)
        assert "stamp" in messages
        assert "canonical_dict" in messages

    def test_json_clean_dataclass_passes(self):
        report = lint("wire_stability_good.py", WireStabilityRule(), self.CONFIG)
        assert report.diagnostics == []


class TestEnvVarRegistry:
    CONFIG = LintConfig(
        env_var_names=frozenset({"REPRO_FIXTURE_KNOWN", "REPRO_FIXTURE_ALSO"})
    )

    def test_catches_undeclared_foreign_and_dynamic_keys(self):
        report = lint("env_registry_bad.py", EnvVarRegistryRule(), self.CONFIG)
        messages = [d.message for d in report.diagnostics]
        assert len(messages) == 3
        assert any("REPRO_FIXTURE_UNDECLARED" in m for m in messages)
        assert any("SOME_OTHER_TOOL_FLAG" in m for m in messages)
        assert any("string literal" in m for m in messages)

    def test_declared_keys_pass_including_module_constants(self):
        report = lint("env_registry_good.py", EnvVarRegistryRule(), self.CONFIG)
        assert report.diagnostics == []


class TestNoBareExcept:
    CONFIG = LintConfig()

    def test_catches_bare_and_swallowed(self):
        report = lint("bare_except_bad.py", NoBareExceptRule(), self.CONFIG)
        assert len(report.diagnostics) == 2

    def test_named_and_handled_exceptions_pass(self):
        report = lint("bare_except_good.py", NoBareExceptRule(), self.CONFIG)
        assert report.diagnostics == []


class TestNoMutableDefault:
    CONFIG = LintConfig()

    def test_catches_mutable_defaults(self):
        report = lint("mutable_default_bad.py", NoMutableDefaultRule(), self.CONFIG)
        assert len(report.diagnostics) == 2

    def test_none_gated_idiom_passes(self):
        report = lint("mutable_default_good.py", NoMutableDefaultRule(), self.CONFIG)
        assert report.diagnostics == []


@pytest.mark.parametrize(
    "bad",
    [
        "lock_guard_bad.py",
        "fork_pickle_bad.py",
        "sql_param_bad.py",
        "hot_path_bad.py",
        "wire_stability_bad.py",
        "env_registry_bad.py",
        "bare_except_bad.py",
        "mutable_default_bad.py",
    ],
)
def test_every_bad_fixture_fails_the_run(bad):
    config = LintConfig(
        lock_guards={
            "GuardedThing": GuardSpec(lock="_lock", attributes=("_table",), note="f")
        },
        hot_modules=("hot_path_bad.py",),
        sql_modules=("sql_param_bad.py",),
        sql_value_attributes=("constant", "values"),
        wire_modules=("wire_stability_bad.py",),
        wire_classes=("Msg",),
        wire_forbidden_names=("time",),
        env_var_names=frozenset(),
    )
    report = run_lint([fixture(bad)], config=config)
    assert report.exit_code == 1
    assert report.errors
