"""Meta-tests: the committed source tree satisfies its own linter."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import main, run_lint
from repro.analysis.rules import ALL_RULES

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"
FIXTURES = Path(__file__).parent / "fixtures"


def test_src_tree_is_lint_clean():
    report = run_lint([str(SRC)])
    assert report.errors == [], "\n" + report.render_text()
    assert report.files > 50


def test_src_suppressions_all_carry_reasons():
    report = run_lint([str(SRC)])
    assert all(s.reason for s in report.suppressions)
    assert all(s.used_for for s in report.suppressions)


def test_cli_exits_zero_on_src(capsys):
    assert main([str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_exit_one_on_violations(capsys):
    code = main([str(FIXTURES / "mutable_default_bad.py")])
    assert code == 1
    assert "no-mutable-default" in capsys.readouterr().out


def test_cli_json_format(capsys):
    main([str(FIXTURES / "mutable_default_bad.py"), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 2
    assert {d["rule"] for d in payload["diagnostics"]} == {"no-mutable-default"}


def test_cli_list_rules_covers_every_rule_id(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_cls in ALL_RULES:
        assert rule_cls.rule_id in out
    assert len(ALL_RULES) >= 8


def test_cli_usage_error_on_missing_path(capsys):
    assert main(["no/such/path"]) == 2


def test_rule_ids_are_unique_and_documented():
    ids = [rule_cls.rule_id for rule_cls in ALL_RULES]
    assert len(ids) == len(set(ids))
    for rule_cls in ALL_RULES:
        assert rule_cls.description
        assert rule_cls.invariant
