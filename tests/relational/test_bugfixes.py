"""Regression tests for the relational-layer crash fixes.

1. ``QueryExecutor._join`` raises :class:`QueryError` on an empty table list
   (previously a bare ``IndexError``; a dead ``joined is None`` branch hid it).
2. ``Relation.order_by`` sorts ``None`` ranking values last deterministically
   (previously ``TypeError``), and ``RankedResult.scores`` zeroes them.
3. ``Relation.domain`` keeps mixed ``int``/``float`` numeric domains in one
   ordered run (previously split into two runs by type name).
"""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.relational import (
    Conjunction,
    Database,
    NumericalPredicate,
    QueryExecutor,
    Relation,
    Schema,
    SPJQuery,
)
from repro.relational.columnar import numpy_available, rowwise_fallback
from repro.relational.schema import categorical, numerical


@pytest.fixture
def nullable_scores():
    schema = Schema([categorical("id"), numerical("score")])
    rows = [
        ("a", 2),
        ("b", None),
        ("c", 5),
        ("d", None),
        ("e", 3),
    ]
    return Relation("r", schema, rows)


class TestEmptyJoin:
    def test_join_of_empty_table_list_raises_query_error(self, students_db):
        executor = QueryExecutor(students_db)
        with pytest.raises(QueryError):
            executor._join(())

    def test_query_constructor_still_rejects_empty_tables(self):
        with pytest.raises(QueryError):
            SPJQuery(tables=[], where=(), order_by="x")


class TestJoinCacheInvalidation:
    def test_replacing_a_relation_invalidates_cached_results(self):
        schema = Schema([categorical("id"), numerical("score")])
        database = Database([Relation("r", schema, [("a", 1), ("b", 2)])])
        query = SPJQuery(tables=["r"], where=(), order_by="score", name="q")
        # Pinned to the memory backend: the assertions below are white-box
        # about its join caches (the sqlite backend tracks swaps separately,
        # see test_sqlite_backend_reloads_swapped_relations).
        executor = QueryExecutor(database, backend="memory")
        assert len(executor.evaluate(query)) == 2
        database.add(Relation("r", schema, [("a", 1), ("b", 2), ("c", 3)]))
        assert len(executor.evaluate(query)) == 3
        # The stale entry is replaced, not kept alongside (bounded memory).
        # White-box cache reads hold the cache lock (REPRO_DEBUG_LOCKS).
        with executor._cache_lock:
            assert len(executor._join_cache) == 1
            assert len(executor._ordered_cache) == 1


class TestBackendSelection:
    def _database(self):
        schema = Schema([categorical("id"), numerical("score")])
        return Database([Relation("r", schema, [("a", 1), ("b", 2)])])

    def test_unknown_backend_raises(self):
        with pytest.raises(QueryError):
            QueryExecutor(self._database(), backend="duckdb")

    def test_backend_defaults_to_memory(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
        # REPRO_EXECUTOR_DB implies the sqlite backend, so the memory default
        # only applies with neither variable set.
        monkeypatch.delenv("REPRO_EXECUTOR_DB", raising=False)
        assert QueryExecutor(self._database()).backend == "memory"

    def test_backend_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_BACKEND", "sqlite")
        assert QueryExecutor(self._database()).backend == "sqlite"

    def test_explicit_backend_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_BACKEND", "sqlite")
        assert QueryExecutor(self._database(), backend="memory").backend == "memory"

    def test_sqlite_backend_reloads_swapped_relations(self):
        schema = Schema([categorical("id"), numerical("score")])
        database = Database([Relation("r", schema, [("a", 1), ("b", 2)])])
        query = SPJQuery(tables=["r"], where=(), order_by="score", name="q")
        executor = QueryExecutor(database, backend="sqlite")
        assert len(executor.evaluate(query)) == 2
        database.add(Relation("r", schema, [("a", 1), ("b", 2), ("c", 3)]))
        assert len(executor.evaluate(query)) == 3

    def test_sqlite_backend_survives_relation_id_reuse(self):
        """Repeated swaps where the freed Relation's id is reused must reload.

        The backend holds the loaded Relation objects (not bare ids), so a
        replacement allocated at a recycled address can never look current.
        """
        schema = Schema([categorical("id"), numerical("score")])
        database = Database([Relation("r", schema, [("a", 1), ("b", 2)])])
        query = SPJQuery(tables=["r"], where=(), order_by="score", name="q")
        executor = QueryExecutor(database, backend="sqlite")
        for extra in range(1, 6):
            rows = [("a", 1), ("b", 2)] + [(f"x{i}", 10 + i) for i in range(extra)]
            # The previous relation becomes garbage immediately; CPython often
            # hands its address to the next allocation.
            database.add(Relation("r", schema, rows))
            assert len(executor.evaluate(query)) == 2 + extra

    def test_sqlite_backend_validates_unknown_attributes(self):
        query = SPJQuery(
            tables=["r"],
            where=Conjunction([NumericalPredicate("nope", ">=", 1)]),
            order_by="score",
        )
        with pytest.raises(QueryError):
            QueryExecutor(self._database(), backend="sqlite").evaluate(query)


class TestNullOrdering:
    def test_order_by_descending_puts_nulls_last(self, nullable_scores):
        ordered = nullable_scores.order_by("score")
        assert [row[0] for row in ordered] == ["c", "e", "a", "b", "d"]

    def test_order_by_ascending_puts_nulls_last(self, nullable_scores):
        ordered = nullable_scores.order_by("score", descending=False)
        assert [row[0] for row in ordered] == ["a", "e", "c", "b", "d"]

    def test_rowwise_fallback_agrees_on_null_ordering(self, nullable_scores):
        fast = [row[0] for row in nullable_scores.order_by("score")]
        with rowwise_fallback():
            relation = Relation(
                nullable_scores.name, nullable_scores.schema, nullable_scores.rows
            )
            slow = [row[0] for row in relation.order_by("score")]
        assert fast == slow

    def test_ranked_result_scores_zeroes_nulls(self, nullable_scores):
        database = Database([nullable_scores])
        query = SPJQuery(tables=["r"], where=(), order_by="score", name="nulls")
        result = QueryExecutor(database).evaluate(query)
        assert result.scores() == [5.0, 3.0, 2.0, 0.0, 0.0]

    def test_min_max_ignores_nulls(self, nullable_scores):
        assert nullable_scores.min_max("score") == (2.0, 5.0)

    def test_selection_on_nullable_column_excludes_nulls(self, nullable_scores):
        condition = Conjunction([NumericalPredicate("score", ">=", 0)])
        selected = nullable_scores.select(condition)
        assert [row[0] for row in selected] == ["a", "c", "e"]


class TestOrderingParityAndSelectIdentity:
    @pytest.mark.skipif(not numpy_available(), reason="needs numpy for parity")
    def test_float_parseable_strings_sort_lexicographically_on_both_engines(self):
        schema = Schema([categorical("id")])
        rows = [("1",), ("10",), ("2",)]
        fast = [row[0] for row in Relation("r", schema, rows).order_by("id", descending=False)]
        with rowwise_fallback():
            slow = [row[0] for row in Relation("r", schema, rows).order_by("id", descending=False)]
        assert fast == slow == ["1", "10", "2"]

    def test_empty_conjunction_select_returns_the_relation_itself(self, nullable_scores):
        assert nullable_scores.select(Conjunction()) is nullable_scores

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy for parity")
    def test_zero_column_projection_preserves_row_count(self, nullable_scores):
        fast = nullable_scores.project([]).head(2)
        with rowwise_fallback():
            relation = Relation(
                nullable_scores.name, nullable_scores.schema, nullable_scores.rows
            )
            slow = relation.project([]).head(2)
        assert len(fast) == len(slow) == 2
        assert fast.rows == slow.rows == [(), ()]


class TestNullsThroughTheNaiveBaselines:
    """NULLs in the ranking or predicate attributes must not crash setup."""

    def _database(self):
        schema = Schema([categorical("id"), categorical("grp"), numerical("x"), numerical("s")])
        rows = [
            ("a", "F", 1.0, 10.0),
            ("b", "F", None, 9.0),   # dead: None fails every numerical predicate
            ("c", "M", 2.0, None),   # NULL ranking value: sorts last, scores 0
            ("d", "M", 3.0, 7.0),
            ("e", "F", 4.0, 6.0),
        ]
        return Database([Relation("r", schema, rows)])

    def _query(self):
        return SPJQuery(
            tables=["r"],
            where=[NumericalPredicate("x", ">=", 2)],
            order_by="s",
            name="nullable",
        )

    def test_annotation_drops_dead_tuples_and_zeroes_null_scores(self):
        from repro.provenance.lineage import annotate

        annotated = annotate(self._query(), self._database())
        ids = [t.values["id"] for t in annotated.tuples]
        assert "b" not in ids  # dead tuple omitted, not a float(None) crash
        scores = {t.values["id"]: t.score for t in annotated.tuples}
        assert scores["c"] == 0.0

    def test_naive_searches_run_end_to_end_on_both_engines(self):
        from repro.core import ConstraintSet, NaiveProvenanceSearch, NaiveSearch, at_least

        constraints = ConstraintSet([at_least(1, 3, grp="F")])

        def run(cls):
            return cls(self._database(), self._query(), constraints, epsilon=0.5).search()

        for cls in (NaiveSearch, NaiveProvenanceSearch):
            fast = run(cls)
            with rowwise_fallback():
                slow = run(cls)
            assert fast.feasible and slow.feasible
            assert fast.refinement == slow.refinement
            assert fast.distance_value == slow.distance_value


class TestMixedNumericDomain:
    def test_domain_orders_mixed_int_float_numerically(self):
        schema = Schema([numerical("x")])
        relation = Relation("r", schema, [(1.5,), (1,), (2,), (0.5,), (None,)])
        assert relation.domain("x") == [0.5, 1, 1.5, 2]

    def test_domain_with_non_numeric_values_stays_deterministic(self):
        schema = Schema([categorical("x")])
        relation = Relation("r", schema, [("b",), ("a",), ("b",)])
        assert relation.domain("x") == ["a", "b"]

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy for parity")
    def test_domain_is_engine_independent(self):
        schema = Schema([numerical("x")])
        rows = [(3,), (1.25,), (2,), (1,), (2.5,)]
        fast = Relation("r", schema, rows).domain("x")
        with rowwise_fallback():
            slow = Relation("r", schema, rows).domain("x")
        assert fast == slow == [1, 1.25, 2, 2.5, 3]
