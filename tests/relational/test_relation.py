"""Unit and property tests for the Relation container."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import SchemaError
from repro.relational import Conjunction, NumericalPredicate, Relation, Schema
from repro.relational.schema import Attribute, AttributeKind, categorical, numerical


@pytest.fixture
def people():
    schema = Schema([categorical("name"), categorical("city"), numerical("age")])
    rows = [
        ("ann", "paris", 34),
        ("bob", "rome", 28),
        ("cee", "paris", 41),
        ("dan", "oslo", 28),
    ]
    return Relation("people", schema, rows)


@pytest.fixture
def visits():
    schema = Schema([categorical("name"), categorical("place")])
    rows = [("ann", "louvre"), ("ann", "orsay"), ("cee", "louvre"), ("eve", "tate")]
    return Relation("visits", schema, rows)


class TestConstruction:
    def test_row_width_is_validated(self):
        schema = Schema([categorical("a"), numerical("b")])
        with pytest.raises(SchemaError):
            Relation("r", schema, [("x",)])

    def test_from_dicts_fills_missing_with_none(self):
        schema = Schema([categorical("a"), numerical("b")])
        relation = Relation.from_dicts("r", schema, [{"a": "x"}])
        assert relation.rows == [("x", None)]

    def test_iteration_and_indexing(self, people):
        assert len(people) == 4
        assert people[0] == ("ann", "paris", 34)
        assert list(people)[1][0] == "bob"
        assert people.row_as_dict(2)["city"] == "paris"
        assert people.value(3, "age") == 28
        assert not people.is_empty()


class TestOperators:
    def test_select_with_conjunction(self, people):
        condition = Conjunction([NumericalPredicate("age", ">=", 30)])
        selected = people.select(condition)
        assert [row[0] for row in selected] == ["ann", "cee"]

    def test_select_with_callable(self, people):
        selected = people.select(lambda row: row["city"] == "paris")
        assert len(selected) == 2

    def test_project_and_distinct(self, people):
        projected = people.project(["city"])
        assert len(projected) == 4
        distinct = people.project(["city"], distinct=True)
        assert [row[0] for row in distinct] == ["paris", "rome", "oslo"]

    def test_natural_join(self, people, visits):
        joined = people.natural_join(visits)
        assert joined.schema.names == ["name", "city", "age", "place"]
        assert len(joined) == 3  # ann twice, cee once; eve has no person row
        names = [row[0] for row in joined]
        assert names.count("ann") == 2 and "eve" not in names

    def test_natural_join_without_shared_attributes_is_cartesian(self, people):
        other = Relation("flags", Schema([categorical("flag")]), [("x",), ("y",)])
        product = people.natural_join(other)
        assert len(product) == len(people) * 2

    def test_order_by_descending_and_ascending(self, people):
        descending = people.order_by("age")
        assert [row[2] for row in descending] == [41, 34, 28, 28]
        ascending = people.order_by("age", descending=False)
        assert [row[2] for row in ascending] == [28, 28, 34, 41]

    def test_order_by_is_stable_for_ties(self, people):
        ordered = people.order_by("age", descending=False)
        # bob appears before dan because that is their original order.
        assert [row[0] for row in ordered[:2]] == [("bob", "rome", 28)[0], "dan"]

    def test_head_and_concat(self, people):
        top = people.head(2)
        assert len(top) == 2
        doubled = people.concat(people)
        assert len(doubled) == 8
        with pytest.raises(SchemaError):
            people.concat(Relation("x", Schema([categorical("a")]), []))

    def test_with_column(self, people):
        enriched = people.with_column(
            Attribute("age_next_year", AttributeKind.NUMERICAL),
            lambda row: row["age"] + 1,
        )
        assert enriched.value(0, "age_next_year") == 35
        with pytest.raises(SchemaError):
            enriched.with_column(Attribute("age", AttributeKind.NUMERICAL), lambda row: 0)

    def test_domain_and_min_max(self, people):
        assert people.domain("city") == ["oslo", "paris", "rome"]
        assert people.min_max("age") == (28, 41)
        with pytest.raises(SchemaError):
            people.min_max("city")

    def test_count_where(self, people):
        assert people.count_where(lambda row: row["age"] < 30) == 2

    def test_rename(self, people):
        assert people.rename("persons").name == "persons"


# -- property-based tests -----------------------------------------------------------

_row_strategy = st.tuples(
    st.sampled_from(["a", "b", "c", "d"]),
    st.integers(min_value=0, max_value=50),
)


@given(rows=st.lists(_row_strategy, max_size=30))
def test_property_order_by_produces_sorted_scores(rows):
    schema = Schema([categorical("key"), numerical("score")])
    relation = Relation("r", schema, rows)
    ordered = relation.order_by("score")
    scores = [row[1] for row in ordered]
    assert scores == sorted(scores, reverse=True)
    assert len(ordered) == len(relation)


@given(rows=st.lists(_row_strategy, max_size=30), threshold=st.integers(0, 50))
def test_property_selection_is_idempotent_and_sound(rows, threshold):
    schema = Schema([categorical("key"), numerical("score")])
    relation = Relation("r", schema, rows)
    condition = Conjunction([NumericalPredicate("score", ">=", threshold)])
    once = relation.select(condition)
    twice = once.select(condition)
    assert once.rows == twice.rows
    assert all(row[1] >= threshold for row in once)
    kept_plus_dropped = len(once) + relation.count_where(lambda r: r["score"] < threshold)
    assert kept_plus_dropped == len(relation)


@given(rows=st.lists(_row_strategy, max_size=25))
def test_property_distinct_projection_has_unique_rows(rows):
    schema = Schema([categorical("key"), numerical("score")])
    relation = Relation("r", schema, rows)
    distinct = relation.project(["key"], distinct=True)
    keys = [row[0] for row in distinct]
    assert len(keys) == len(set(keys))
    assert set(keys) == {row[0] for row in relation}


@given(
    left_rows=st.lists(_row_strategy, max_size=15),
    right_rows=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c", "d"]), st.sampled_from(["x", "y"])),
        max_size=15,
    ),
)
def test_property_natural_join_matches_nested_loop_semantics(left_rows, right_rows):
    left = Relation("l", Schema([categorical("key"), numerical("score")]), left_rows)
    right = Relation("r", Schema([categorical("key"), categorical("tag")]), right_rows)
    joined = left.natural_join(right)
    expected = [
        l + (r[1],) for l in left_rows for r in right_rows if l[0] == r[0]
    ]
    assert sorted(joined.rows) == sorted(expected)


class TestColumnarOperatorParity:
    """The derived-column / concat / callable operators must agree across
    representations and keep store-backed inputs columnar."""

    @pytest.fixture
    def store_backed(self, people):
        store = people.column_store()
        if store is None:
            pytest.skip("vectorized engine requires numpy")
        return Relation.from_store("people", store)

    def test_with_column_matches_rowwise(self, people, store_backed):
        from repro.relational.columnar import rowwise_fallback

        attribute = Attribute("senior", AttributeKind.CATEGORICAL)
        compute = lambda row: "yes" if row["age"] >= 30 else "no"
        fast = store_backed.with_column(attribute, compute)
        with rowwise_fallback():
            slow = people.with_column(attribute, compute)
        assert fast.rows == slow.rows
        assert fast.schema == slow.schema
        assert fast.column_store() is not None

    def test_concat_matches_rowwise(self, people, store_backed):
        from repro.relational.columnar import rowwise_fallback

        fast = store_backed.concat(store_backed)
        with rowwise_fallback():
            slow = people.concat(people)
        assert fast.rows == slow.rows
        assert fast.column_store() is not None

    def test_callable_select_stays_columnar(self, store_backed):
        selected = store_backed.select(lambda row: row["city"] == "paris")
        assert [row[0] for row in selected] == ["ann", "cee"]
        assert selected.column_store() is not None

    def test_count_where_agrees_across_representations(self, people, store_backed):
        from repro.relational.columnar import rowwise_fallback

        condition = lambda row: row["age"] < 30
        with rowwise_fallback():
            expected = people.count_where(condition)
        assert store_backed.count_where(condition) == expected == 2

    def test_lazy_take_gathers_identical_rows(self, store_backed, people):
        taken = store_backed.take([2, 0])
        assert taken.rows == [people.rows[2], people.rows[0]]
        head = taken.head(1)
        assert head.rows == [people.rows[2]]
        assert head.column("name") == ["cee"]

    def test_lazy_take_resolves_negative_positions_within_the_window(
        self, store_backed, people
    ):
        # -1 after head(3) must mean "last of the 3-row window", not of the base.
        window = store_backed.head(3)
        assert window.take([-1]).rows == [people.rows[2]]
        assert window.take([-3, 2]).rows == [people.rows[0], people.rows[2]]

    def test_lazy_take_accepts_boolean_masks(self, store_backed, people):
        import numpy as np

        mask = np.array([True, False, True, False])
        taken = store_backed.take(mask)
        assert len(taken) == 2
        assert taken.rows == [people.rows[0], people.rows[2]]
