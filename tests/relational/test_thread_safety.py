"""Regression tests: one QueryExecutor hammered from many threads.

The serving layer shares a single executor per dataset session across all
request-handler threads, so the per-query-shape caches must be locked and the
sqlite backend must hand each thread its own connection.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.datasets import load_dataset
from repro.relational import QueryExecutor

THREADS = 8
ROUNDS = 5


def build_executor(backend: str, tmp_path):
    bundle = load_dataset("students")
    kwargs: dict = {"backend": backend}
    if backend == "sqlite":
        kwargs["db_path"] = str(tmp_path / "threads.sqlite")
    return QueryExecutor(bundle.database, **kwargs), bundle.query


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
class TestExecutorThreadSafety:
    def test_concurrent_evaluate_matches_serial(self, backend, tmp_path):
        executor, query = build_executor(backend, tmp_path)
        serial_rows = executor.evaluate(query).projected.rows
        errors: list[BaseException] = []
        barrier = threading.Barrier(THREADS)

        def hammer():
            try:
                barrier.wait(timeout=30)
                for _ in range(ROUNDS):
                    result = executor.evaluate(query)
                    assert result.projected.rows == serial_rows
                    unfiltered = executor.evaluate_unfiltered(query)
                    assert len(unfiltered.relation) >= len(result)
            except BaseException as error:  # noqa: BLE001 - collected for the assert
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []

    def test_concurrent_first_touch(self, backend, tmp_path):
        """All threads race the very first evaluation (cold caches)."""
        executor, query = build_executor(backend, tmp_path)
        barrier = threading.Barrier(THREADS)

        def cold_evaluate():
            barrier.wait(timeout=30)
            return executor.evaluate(query).projected.rows

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            futures = [pool.submit(cold_evaluate) for _ in range(THREADS)]
            results = [future.result(timeout=60) for future in futures]
        assert all(rows == results[0] for rows in results)


class TestSQLitePerThreadConnections:
    def test_each_thread_gets_its_own_connection(self, tmp_path):
        executor, query = build_executor("sqlite", tmp_path)
        executor.evaluate(query)
        barrier = threading.Barrier(4)

        def touch():
            barrier.wait(timeout=30)
            executor.evaluate(query)
            return threading.get_ident()

        with ThreadPoolExecutor(max_workers=4) as pool:
            idents = {future.result(timeout=60) for future in [
                pool.submit(touch) for _ in range(4)
            ]}
        # One pooled connection per distinct thread that touched the executor
        # (plus the main thread's).  White-box reads of the pool table hold
        # its lock (REPRO_DEBUG_LOCKS enforces this).
        pool_state = executor._sqlite_pool
        with pool_state._lock:
            pooled = set(pool_state._executors)
        assert idents <= pooled
        assert threading.get_ident() in pooled

    def test_pool_is_bounded(self, tmp_path):
        from repro.relational.executor import _SQLiteConnectionPool

        executor, query = build_executor("sqlite", tmp_path)
        cap = _SQLiteConnectionPool.MAX_CONNECTIONS

        def touch():
            executor.evaluate(query)

        for _ in range(cap + 8):
            thread = threading.Thread(target=touch)
            thread.start()
            thread.join(timeout=60)
        with executor._sqlite_pool._lock:
            assert len(executor._sqlite_pool._executors) <= cap

    def test_close_connections_clears_pool(self, tmp_path):
        executor, query = build_executor("sqlite", tmp_path)
        executor.evaluate(query)
        assert executor._sqlite_pool.get() is not None
        executor.close_connections()
        assert executor._sqlite_pool.get() is None
        # The executor reopens lazily and stays correct.
        assert executor.evaluate(query).projected.rows
