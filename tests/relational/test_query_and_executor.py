"""Tests for SPJ queries, the in-memory executor, SQL generation and sqlite."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import law_students_database, law_students_query
from repro.exceptions import QueryError
from repro.relational import (
    CategoricalPredicate,
    Conjunction,
    Database,
    NumericalPredicate,
    OrderBy,
    QueryExecutor,
    Relation,
    Schema,
    SPJQuery,
    SQLiteExecutor,
    render_sql,
)
from repro.relational.schema import categorical, numerical
from repro.relational.sqlgen import render_predicate, render_where


class TestSPJQuery:
    def test_requires_tables_and_order_by(self):
        with pytest.raises(QueryError):
            SPJQuery(tables=[], where=(), order_by="x")
        with pytest.raises(QueryError):
            SPJQuery(tables=["t"], where=(), order_by=None)

    def test_order_by_string_shorthand(self):
        query = SPJQuery(tables=["t"], where=(), order_by="score")
        assert query.order_by == OrderBy("score", descending=True)

    def test_predicate_accessors(self, scholarship):
        assert [p.attribute for p in scholarship.numerical_predicates] == ["GPA"]
        assert [p.attribute for p in scholarship.categorical_predicates] == ["Activity"]
        assert scholarship.predicate_attributes == ["GPA", "Activity"]
        assert scholarship.num_predicates == 2

    def test_with_where_keeps_everything_else(self, scholarship):
        new_where = Conjunction([NumericalPredicate("GPA", ">=", 3.5)])
        refined = scholarship.with_where(new_where)
        assert refined.tables == scholarship.tables
        assert refined.select == scholarship.select
        assert refined.distinct == scholarship.distinct
        assert refined.order_by == scholarship.order_by
        assert refined.where == new_where

    def test_without_selection_drops_predicates_and_distinct(self, scholarship):
        unfiltered = scholarship.without_selection()
        assert len(unfiltered.where) == 0
        assert not unfiltered.distinct
        assert unfiltered.order_by == scholarship.order_by


class TestExecutor:
    def test_scholarship_ranking_matches_paper(self, students_executor, scholarship):
        """Example 1.1: the ranking is [t4, t7, t8, t10, t11, t12] (then t14)."""
        result = students_executor.evaluate(scholarship)
        ids = [row[0] for row in result.projected.rows]
        assert ids == ["t4", "t7", "t8", "t10", "t11", "t12", "t14"]

    def test_example_12_refined_query_ranking(self, students_executor, scholarship):
        """Example 1.2: adding SO produces top-6 = t1, t2, t4, t6, t7, t8."""
        refined_where = Conjunction(
            [
                NumericalPredicate("GPA", ">=", 3.7),
                CategoricalPredicate("Activity", {"RB", "SO"}),
            ]
        )
        result = students_executor.evaluate(scholarship.with_where(refined_where))
        ids = [row[0] for row in result.projected.rows[:6]]
        assert ids == ["t1", "t2", "t4", "t6", "t7", "t8"]

    def test_example_13_refined_query_ranking(self, students_executor, scholarship):
        """Example 1.3: GPA>=3.6 and {RB, GD} gives top-6 t3, t4, t7, t8, t10, t11."""
        refined_where = Conjunction(
            [
                NumericalPredicate("GPA", ">=", 3.6),
                CategoricalPredicate("Activity", {"RB", "GD"}),
            ]
        )
        result = students_executor.evaluate(scholarship.with_where(refined_where))
        ids = [row[0] for row in result.projected.rows[:6]]
        assert ids == ["t3", "t4", "t7", "t8", "t10", "t11"]

    def test_distinct_keeps_best_ranked_duplicate(self, students_executor, scholarship):
        """t4 and t8 participate in both RB and TU but must appear once."""
        where = Conjunction(
            [
                NumericalPredicate("GPA", ">=", 3.7),
                CategoricalPredicate("Activity", {"RB", "TU"}),
            ]
        )
        result = students_executor.evaluate(scholarship.with_where(where))
        ids = [row[0] for row in result.projected.rows]
        assert ids.count("t4") == 1 and ids.count("t8") == 1

    def test_unfiltered_evaluation_contains_all_join_results(
        self, students_executor, scholarship
    ):
        unfiltered = students_executor.evaluate_unfiltered(scholarship)
        assert len(unfiltered) == 14  # 14 (student, activity) pairs in Table 2

    def test_top_k_and_item_keys(self, students_executor, scholarship):
        result = students_executor.evaluate(scholarship)
        assert len(result.top_k(3)) == 3
        keys = result.top_k_keys(3)
        assert [key[0] for key in keys] == ["t4", "t7", "t8"]

    def test_count_in_top_k(self, students_executor, scholarship):
        result = students_executor.evaluate(scholarship)
        females = result.count_in_top_k(6, lambda row: row["Gender"] == "F")
        assert females == 2  # t8 and t11, as the paper notes

    def test_scores_are_descending(self, students_executor, scholarship):
        result = students_executor.evaluate(scholarship)
        scores = result.scores()
        assert scores == sorted(scores, reverse=True)

    def test_unknown_predicate_attribute_raises(self, students_db):
        query = SPJQuery(
            tables=["Students"],
            where=Conjunction([NumericalPredicate("Nope", ">=", 1)]),
            order_by="SAT",
        )
        with pytest.raises(QueryError):
            QueryExecutor(students_db).evaluate(query)

    def test_unknown_order_by_attribute_raises(self, students_db):
        query = SPJQuery(tables=["Students"], where=(), order_by="Nope")
        with pytest.raises(QueryError):
            QueryExecutor(students_db).evaluate(query)

    def test_unknown_projection_attribute_raises(self, students_db):
        query = SPJQuery(
            tables=["Students"], where=(), order_by="SAT", select=["Nope"]
        )
        with pytest.raises(QueryError):
            QueryExecutor(students_db).evaluate(query)


class TestSQLGeneration:
    def test_render_numerical_predicate(self):
        predicate = NumericalPredicate("GPA", ">=", 3.7)
        assert render_predicate(predicate) == '"GPA" >= 3.7'

    def test_render_categorical_predicate_single_value(self):
        predicate = CategoricalPredicate("Activity", {"RB"})
        assert render_predicate(predicate) == "\"Activity\" = 'RB'"

    def test_render_categorical_predicate_multiple_values_is_disjunction(self):
        predicate = CategoricalPredicate("Activity", {"RB", "SO"})
        rendered = render_predicate(predicate)
        assert rendered.startswith("(") and " OR " in rendered

    def test_render_empty_where(self):
        assert render_where(Conjunction()) == "1 = 1"

    def test_render_sql_for_scholarship_query(self, scholarship):
        sql = render_sql(scholarship)
        assert "SELECT DISTINCT" in sql
        assert '"Students" NATURAL JOIN "Activities"' in sql
        assert '"GPA" >= 3.7' in sql
        assert 'ORDER BY "SAT" DESC' in sql

    def test_literal_escaping(self):
        predicate = CategoricalPredicate("Name", {"O'Brien"})
        assert "''" in render_predicate(predicate)


class TestSQLiteBackend:
    def test_sqlite_matches_in_memory_on_scholarship(self, students_db, scholarship):
        expected = [
            row[0]
            for row in QueryExecutor(students_db).evaluate(scholarship).projected.rows
        ]
        with SQLiteExecutor(students_db) as backend:
            actual = [row[0] for row in backend.execute(scholarship)]
        assert actual == expected

    def test_sqlite_matches_in_memory_on_law_students(self):
        database = law_students_database(num_rows=300, seed=3)
        query = law_students_query()
        memory_ids = [
            row[0] for row in QueryExecutor(database).evaluate(query).relation.rows
        ]
        with SQLiteExecutor(database) as backend:
            sqlite_ids = [row[0] for row in backend.execute(query)]
        assert sqlite_ids == memory_ids

    def test_execute_raw_sql(self, students_db):
        with SQLiteExecutor(students_db) as backend:
            rows = backend.execute_sql("SELECT COUNT(*) FROM Students")
        assert rows == [(14,)]


class TestDatabase:
    def test_add_get_contains(self, students_db):
        assert "Students" in students_db
        assert len(students_db.relation("Students")) == 14
        assert students_db.total_rows() == 14 + 14
        assert students_db.names == ["Activities", "Students"]

    def test_unknown_relation_raises(self, students_db):
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            students_db.relation("Missing")

    def test_csv_round_trip(self, tmp_path, students_db):
        students_db.save_csv(tmp_path)
        reloaded = Database.load_csv(tmp_path)
        assert reloaded.names == students_db.names
        original = students_db.relation("Students")
        restored = reloaded.relation("Students")
        assert len(restored) == len(original)
        assert restored.schema.names == original.schema.names
        assert restored.value(0, "GPA") == pytest.approx(original.value(0, "GPA"))


@settings(deadline=None, max_examples=20)
@given(
    rows=st.lists(
        st.tuples(
            st.sampled_from(["r1", "r2", "r3", "r4"]),
            st.sampled_from(["x", "y", "z"]),
            st.integers(min_value=0, max_value=100),
        ),
        min_size=1,
        max_size=40,
    ),
    threshold=st.integers(min_value=0, max_value=100),
)
def test_property_in_memory_executor_matches_sqlite(rows, threshold):
    """Property: the in-memory executor and sqlite agree on random data/queries."""
    schema = Schema([categorical("id"), categorical("tag"), numerical("score")])
    # Make ids unique so that ordering ties cannot cause spurious mismatches.
    rows = [(f"{row[0]}_{i}", row[1], row[2]) for i, row in enumerate(rows)]
    database = Database([Relation("T", schema, rows)])
    query = SPJQuery(
        tables=["T"],
        where=Conjunction(
            [NumericalPredicate("score", ">=", threshold), CategoricalPredicate("tag", {"x", "y"})]
        ),
        order_by="score",
        name="random",
    )
    memory_rows = QueryExecutor(database).evaluate(query).relation.rows
    memory_scores = [row[2] for row in memory_rows]
    with SQLiteExecutor(database) as backend:
        sqlite_rows = backend.execute(query)
    sqlite_scores = [row[2] for row in sqlite_rows]
    assert memory_scores == sqlite_scores
    assert {row[0] for row in memory_rows} == {row[0] for row in sqlite_rows}
