"""Parity suite: every execution engine must agree byte-for-byte.

Three engines answer the same SPJ queries — the row-based reference path,
the vectorized columnar engine, and the sqlite pushdown backend — and this
suite holds all of them to byte-identical :class:`RankedResult`\\ s (rows,
order, projection, distinct keys, scores) on every registered dataset,
including DISTINCT ranking queries.
"""

from __future__ import annotations

import pytest

from repro.core import ConstraintSet, NaiveProvenanceSearch, at_least
from repro.datasets.registry import DATASET_BUILDERS, load_dataset
from repro.relational import QueryExecutor, SPJQuery
from repro.relational.columnar import (
    numpy_available,
    rowwise_fallback,
    vectorization_enabled,
)

#: Reduced sizes so the whole registry can be evaluated twice per test run.
_SMALL_PARAMETERS = {
    "students": {},
    "astronauts": {"num_rows": 120},
    "law_students": {"num_rows": 400},
    "meps": {"num_rows": 400},
    "tpch": {"scale_factor": 0.05},
}

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="vectorized engine requires numpy"
)


def _bundle(name):
    return load_dataset(name, **_SMALL_PARAMETERS[name])


def _identical(fast, slow):
    """Byte-identical RankedResults: rows, order, projection, distinct keys."""
    assert fast.relation.schema == slow.relation.schema
    assert fast.projected.schema == slow.projected.schema
    assert fast.relation.rows == slow.relation.rows
    assert fast.projected.rows == slow.projected.rows
    # reprs catch type drift that == would mask (e.g. 34 vs 34.0).
    assert list(map(repr, fast.relation.rows)) == list(map(repr, slow.relation.rows))
    assert fast.top_k_keys(25) == slow.top_k_keys(25)
    assert fast.scores() == slow.scores()


@needs_numpy
@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
def test_vectorized_executor_matches_rowwise(name):
    bundle = _bundle(name)
    assert vectorization_enabled()
    fast = QueryExecutor(bundle.database).evaluate(bundle.query)
    with rowwise_fallback():
        assert not vectorization_enabled()
        slow = QueryExecutor(bundle.database).evaluate(bundle.query)
    _identical(fast, slow)


@needs_numpy
@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
def test_vectorized_unfiltered_evaluation_matches_rowwise(name):
    bundle = _bundle(name)
    fast = QueryExecutor(bundle.database).evaluate_unfiltered(bundle.query)
    with rowwise_fallback():
        slow = QueryExecutor(bundle.database).evaluate_unfiltered(bundle.query)
    _identical(fast, slow)


#: DISTINCT projections with plenty of duplicates, per dataset, so the
#: "keep the better-ranked duplicate" semantics is exercised on every engine.
_DISTINCT_SELECTS = {
    "students": ("Gender", "Income"),
    "astronauts": ("Gender", "Status"),
    "law_students": ("Sex", "Race"),
    "meps": ("Sex", "Race"),
    "tpch": ("OrderPriority", "MktSegment"),
}


def _distinct_variant(bundle) -> SPJQuery:
    return SPJQuery(
        tables=bundle.query.tables,
        where=bundle.query.where,
        order_by=bundle.query.order_by,
        select=_DISTINCT_SELECTS[bundle.name],
        distinct=True,
        name=f"{bundle.query.name}_distinct",
    )


@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
def test_sqlite_backend_matches_memory_engines(name):
    """row == columnar == sqlite on the paper query and its unfiltered ~Q."""
    bundle = _bundle(name)
    for query in (bundle.query, bundle.query.without_selection()):
        sqlite = QueryExecutor(bundle.database, backend="sqlite").evaluate(query)
        memory = QueryExecutor(bundle.database, backend="memory").evaluate(query)
        _identical(sqlite, memory)
        with rowwise_fallback():
            rowwise = QueryExecutor(bundle.database, backend="memory").evaluate(query)
        _identical(sqlite, rowwise)


@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
def test_sqlite_backend_matches_memory_engines_on_distinct_ranking(name):
    """row == columnar == sqlite on a DISTINCT ranking projection."""
    bundle = _bundle(name)
    query = _distinct_variant(bundle)
    sqlite = QueryExecutor(bundle.database, backend="sqlite").evaluate(query)
    memory = QueryExecutor(bundle.database, backend="memory").evaluate(query)
    _identical(sqlite, memory)
    with rowwise_fallback():
        rowwise = QueryExecutor(bundle.database, backend="memory").evaluate(query)
        # The sqlite *gather* also has a row-based path; exercise it too.
        sqlite_rowwise = QueryExecutor(bundle.database, backend="sqlite").evaluate(query)
    _identical(sqlite, rowwise)
    _identical(sqlite, sqlite_rowwise)


@needs_numpy
@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
def test_candidate_mask_evaluation_matches_rowwise(name):
    """The Naive+prov fast path and the row-based reference select the same
    tuples for a sample of candidate refinements."""
    bundle = _bundle(name)
    constraints = ConstraintSet([at_least(1, 5, **_any_group(bundle))])
    search = NaiveProvenanceSearch(
        bundle.database, bundle.query, constraints, max_candidates=0
    )
    search.search()  # runs _prepare, examining no candidates
    assert search._fast is not None

    from repro.core.refinement import RefinementSpace
    from repro.provenance.lineage import annotate

    annotated = annotate(bundle.query, bundle.database)
    space = RefinementSpace(bundle.query, annotated)
    for count, refinement in enumerate(space.enumerate()):
        if count >= 40:
            break
        refined_query = refinement.apply(bundle.query)
        fast = search._evaluate(refinement, refined_query)
        slow = search._evaluate_rowwise(refinement, refined_query)
        _identical(fast, slow)


def _any_group(bundle):
    """Pick one categorical attribute/value so a constraint set can be built."""
    categorical = bundle.query.categorical_predicates
    if categorical:
        predicate = categorical[0]
        return {predicate.attribute: sorted(predicate.values, key=str)[0]}
    unfiltered = QueryExecutor(bundle.database).evaluate_unfiltered(bundle.query)
    relation = unfiltered.relation
    for attribute in relation.schema:
        if attribute.is_categorical:
            domain = relation.domain(attribute.name)
            if domain:
                return {attribute.name: domain[0]}
    raise AssertionError("dataset has no categorical attribute to group on")


@needs_numpy
@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
def test_batched_sweep_matches_per_candidate_positions(name):
    """The batched-sweep threshold tables select exactly the per-candidate sets."""
    from repro.core.refinement import RefinementSpace
    from repro.provenance.lineage import annotate

    bundle = _bundle(name)
    constraints = ConstraintSet([at_least(1, 5, **_any_group(bundle))])
    batched = NaiveProvenanceSearch(
        bundle.database, bundle.query, constraints, max_candidates=0
    )
    batched.search()
    assert batched._fast is not None

    annotated = annotate(bundle.query, bundle.database)
    space = RefinementSpace(bundle.query, annotated)
    for count, refinement in enumerate(space.enumerate()):
        if count >= 40:
            break
        refined_query = refinement.apply(bundle.query)
        fast = batched._fast.selected_positions(refined_query, batched=True)
        slow = batched._fast.selected_positions(refined_query, batched=False)
        assert fast.tolist() == slow.tolist()


@needs_numpy
def test_batched_and_per_candidate_search_agree():
    bundle = _bundle("students")
    constraints = ConstraintSet(
        [at_least(3, 6, Gender="F"), at_least(1, 3, Income="High")]
    )

    def run(batched):
        return NaiveProvenanceSearch(
            bundle.database,
            bundle.query,
            constraints,
            max_candidates=400,
            batched_sweeps=batched,
        ).search()

    fast = run(True)
    slow = run(False)
    assert fast.feasible == slow.feasible
    assert fast.candidates_examined == slow.candidates_examined
    assert fast.refinement == slow.refinement
    assert fast.distance_value == slow.distance_value
    assert fast.deviation == slow.deviation


@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
def test_jobs_axis_parity(name):
    """The jobs axis of the engine matrix: sharded == serial on every dataset."""
    bundle = _bundle(name)
    constraints = ConstraintSet([at_least(1, 5, **_any_group(bundle))])

    def run(jobs):
        return NaiveProvenanceSearch(
            bundle.database,
            bundle.query,
            constraints,
            max_candidates=250,
            jobs=jobs,
        ).search()

    serial = run(1)
    sharded = run(2)
    assert sharded.feasible == serial.feasible
    assert sharded.candidates_examined == serial.candidates_examined
    assert sharded.refinement == serial.refinement
    assert sharded.distance_value == serial.distance_value
    assert sharded.deviation == serial.deviation
    assert sharded.exhausted == serial.exhausted


@needs_numpy
def test_full_naive_prov_search_matches_rowwise_result():
    """End-to-end: the fast search picks the same refinement as the row path."""
    bundle = _bundle("students")
    constraints = ConstraintSet(
        [at_least(3, 6, Gender="F"), at_least(1, 3, Income="High")]
    )

    def run():
        return NaiveProvenanceSearch(
            bundle.database, bundle.query, constraints, max_candidates=400
        ).search()

    fast = run()
    with rowwise_fallback():
        slow = run()
    assert fast.feasible == slow.feasible
    assert fast.candidates_examined == slow.candidates_examined
    assert fast.refinement == slow.refinement
    assert fast.distance_value == slow.distance_value
    assert fast.deviation == slow.deviation
