"""Unit tests for schemas and selection predicates."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import QueryError, SchemaError
from repro.relational import (
    Attribute,
    AttributeKind,
    CategoricalPredicate,
    Conjunction,
    NumericalPredicate,
    Operator,
    Schema,
)
from repro.relational.schema import categorical, numerical


class TestSchema:
    def test_attribute_shorthands(self):
        assert categorical("A").kind is AttributeKind.CATEGORICAL
        assert numerical("B").kind is AttributeKind.NUMERICAL

    def test_rejects_empty_attribute_name(self):
        with pytest.raises(SchemaError):
            Attribute("", AttributeKind.CATEGORICAL)

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchemaError):
            Schema([categorical("A"), numerical("A")])

    def test_lookup_and_index(self):
        schema = Schema([categorical("A"), numerical("B")])
        assert schema.index_of("B") == 1
        assert schema.attribute("A").is_categorical
        assert "A" in schema and "C" not in schema
        assert schema.names == ["A", "B"]

    def test_unknown_attribute_raises(self):
        schema = Schema([categorical("A")])
        with pytest.raises(SchemaError):
            schema.index_of("missing")
        with pytest.raises(SchemaError):
            schema.attribute("missing")

    def test_project_preserves_order(self):
        schema = Schema([categorical("A"), numerical("B"), categorical("C")])
        projected = schema.project(["C", "A"])
        assert projected.names == ["C", "A"]

    def test_join_unions_attributes(self):
        left = Schema([categorical("ID"), numerical("X")])
        right = Schema([categorical("ID"), categorical("Y")])
        joined = left.join(right)
        assert joined.names == ["ID", "X", "Y"]
        assert left.common_attributes(right) == ["ID"]

    def test_join_rejects_conflicting_kinds(self):
        left = Schema([categorical("ID")])
        right = Schema([numerical("ID")])
        with pytest.raises(SchemaError):
            left.join(right)


class TestOperator:
    def test_strictness(self):
        assert Operator.LESS.is_strict and Operator.GREATER.is_strict
        assert not Operator.LESS_EQUAL.is_strict
        assert not Operator.GREATER_EQUAL.is_strict
        assert not Operator.EQUAL.is_strict

    def test_bound_direction(self):
        assert Operator.GREATER_EQUAL.is_lower_bound
        assert Operator.GREATER.is_lower_bound
        assert Operator.LESS.is_upper_bound
        assert Operator.LESS_EQUAL.is_upper_bound
        assert not Operator.EQUAL.is_lower_bound and not Operator.EQUAL.is_upper_bound

    @pytest.mark.parametrize(
        "symbol,value,constant,expected",
        [
            ("<", 1, 2, True),
            ("<", 2, 2, False),
            ("<=", 2, 2, True),
            ("=", 2, 2, True),
            ("=", 2.5, 2, False),
            (">", 3, 2, True),
            (">=", 2, 2, True),
            (">=", 1.9, 2, False),
        ],
    )
    def test_compare(self, symbol, value, constant, expected):
        assert Operator.from_symbol(symbol).compare(value, constant) is expected

    def test_unknown_symbol(self):
        with pytest.raises(QueryError):
            Operator.from_symbol("!=")


class TestNumericalPredicate:
    def test_matches_row(self):
        predicate = NumericalPredicate("GPA", ">=", 3.7)
        assert predicate.matches({"GPA": 3.7})
        assert not predicate.matches({"GPA": 3.69})
        assert not predicate.matches({"GPA": None})
        assert not predicate.matches({})

    def test_with_constant_returns_new_predicate(self):
        predicate = NumericalPredicate("GPA", ">=", 3.7)
        refined = predicate.with_constant(3.5)
        assert refined.constant == 3.5
        assert predicate.constant == 3.7
        assert refined.attribute == "GPA" and refined.operator is Operator.GREATER_EQUAL

    def test_equality_and_hash(self):
        a = NumericalPredicate("GPA", ">=", 3.7)
        b = NumericalPredicate("GPA", ">=", 3.7)
        assert a == b and hash(a) == hash(b)
        assert a != NumericalPredicate("GPA", ">", 3.7)


class TestCategoricalPredicate:
    def test_matches_row(self):
        predicate = CategoricalPredicate("Activity", {"RB", "SO"})
        assert predicate.matches({"Activity": "RB"})
        assert not predicate.matches({"Activity": "GD"})
        assert not predicate.matches({})

    def test_rejects_empty_value_set(self):
        with pytest.raises(QueryError):
            CategoricalPredicate("Activity", set())

    def test_with_values(self):
        predicate = CategoricalPredicate("Activity", {"RB"})
        refined = predicate.with_values({"RB", "GD"})
        assert refined.values == frozenset({"RB", "GD"})
        assert predicate.values == frozenset({"RB"})


class TestConjunction:
    def test_partitions_predicates_by_kind(self):
        numerical_predicate = NumericalPredicate("GPA", ">=", 3.7)
        categorical_predicate = CategoricalPredicate("Activity", {"RB"})
        conjunction = Conjunction([numerical_predicate, categorical_predicate])
        assert conjunction.numerical == [numerical_predicate]
        assert conjunction.categorical == [categorical_predicate]
        assert conjunction.attributes == ["GPA", "Activity"]
        assert len(conjunction) == 2

    def test_matches_requires_all_predicates(self):
        conjunction = Conjunction(
            [NumericalPredicate("GPA", ">=", 3.7), CategoricalPredicate("Activity", {"RB"})]
        )
        assert conjunction.matches({"GPA": 3.8, "Activity": "RB"})
        assert not conjunction.matches({"GPA": 3.8, "Activity": "SO"})
        assert not conjunction.matches({"GPA": 3.6, "Activity": "RB"})

    def test_empty_conjunction_matches_everything(self):
        assert Conjunction().matches({"anything": 1})

    def test_replace_swaps_predicate(self):
        original = NumericalPredicate("GPA", ">=", 3.7)
        refined = original.with_constant(3.6)
        conjunction = Conjunction([original])
        replaced = conjunction.replace(original, refined)
        assert replaced.numerical[0].constant == 3.6
        assert conjunction.numerical[0].constant == 3.7

    def test_replace_unknown_predicate_raises(self):
        conjunction = Conjunction([NumericalPredicate("GPA", ">=", 3.7)])
        with pytest.raises(QueryError):
            conjunction.replace(NumericalPredicate("SAT", ">=", 1500), NumericalPredicate("SAT", ">=", 1400))

    def test_without_removes_predicate(self):
        predicate = NumericalPredicate("GPA", ">=", 3.7)
        conjunction = Conjunction([predicate, CategoricalPredicate("Activity", {"RB"})])
        assert len(conjunction.without(predicate)) == 1


@given(
    value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    constant=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
def test_property_lower_and_upper_bounds_partition(value, constant):
    """Property: for any value, >= and < with the same constant never both hold."""
    lower = NumericalPredicate("A", ">=", constant)
    upper = NumericalPredicate("A", "<", constant)
    assert lower.matches_value(value) != upper.matches_value(value)


@given(
    values=st.sets(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1),
    probe=st.sampled_from(["a", "b", "c", "d", "e", "f"]),
)
def test_property_categorical_membership_matches_python_in(values, probe):
    """Property: categorical predicate semantics equal plain set membership."""
    predicate = CategoricalPredicate("A", values)
    assert predicate.matches_value(probe) == (probe in values)
