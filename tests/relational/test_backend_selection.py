"""Executor backend selection and the persistent on-disk sqlite store."""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.executor import QueryExecutor
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeKind, Schema


def _bundle():
    return load_dataset("meps", num_rows=200)


# -- backend selection -----------------------------------------------------------------


def test_invalid_backend_argument_raises_clear_error():
    bundle = _bundle()
    with pytest.raises(QueryError, match="unknown executor backend 'duckdb'"):
        QueryExecutor(bundle.database, backend="duckdb")


def test_invalid_backend_env_var_raises_clear_error(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR_BACKEND", "postgres")
    bundle = _bundle()
    with pytest.raises(QueryError, match="unknown executor backend 'postgres'"):
        QueryExecutor(bundle.database)


def test_backend_env_var_selects_sqlite(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR_BACKEND", "sqlite")
    assert QueryExecutor(_bundle().database).backend == "sqlite"


def test_db_env_var_implies_sqlite_backend(monkeypatch, tmp_path):
    path = str(tmp_path / "exec.sqlite")
    monkeypatch.setenv("REPRO_EXECUTOR_DB", path)
    monkeypatch.delenv("REPRO_EXECUTOR_BACKEND", raising=False)
    executor = QueryExecutor(_bundle().database)
    assert executor.backend == "sqlite"
    assert executor.db_path == path


def test_explicit_backend_wins_over_db_env_var(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_EXECUTOR_DB", str(tmp_path / "exec.sqlite"))
    assert QueryExecutor(_bundle().database, backend="memory").backend == "memory"


# -- persistence -----------------------------------------------------------------------


def test_persisted_database_skips_reload(tmp_path):
    path = str(tmp_path / "meps.sqlite")
    bundle = _bundle()
    cold = QueryExecutor(bundle.database, backend="sqlite", db_path=path)
    cold_result = cold.evaluate(bundle.query)
    assert cold.sqlite_load_count == len(bundle.database.names)

    # A fresh executor over a freshly built (identical) dataset — the stand-in
    # for a second benchmark process — adopts the persisted tables.
    bundle2 = _bundle()
    warm = QueryExecutor(bundle2.database, backend="sqlite", db_path=path)
    warm_result = warm.evaluate(bundle2.query)
    assert warm.sqlite_load_count == 0
    assert warm_result.relation.rows == cold_result.relation.rows
    assert warm_result.scores() == cold_result.scores()


def test_persisted_database_reloads_on_content_change(tmp_path):
    path = str(tmp_path / "db.sqlite")
    schema = Schema(
        [Attribute("K", AttributeKind.CATEGORICAL), Attribute("V", AttributeKind.NUMERICAL)]
    )
    first = Database([Relation("T", schema, [("a", 1.0), ("b", 2.0)])])
    second = Database([Relation("T", schema, [("a", 9.0), ("b", 2.0)])])

    cold = QueryExecutor(first, backend="sqlite", db_path=path)
    cold._ensure_sqlite()
    assert cold.sqlite_load_count == 1

    stale = QueryExecutor(second, backend="sqlite", db_path=path)
    stale._ensure_sqlite()
    assert stale.sqlite_load_count == 1  # fingerprint mismatch -> reloaded


def test_in_process_relation_swap_still_reloads(tmp_path):
    """Within a process, swapped relations are tracked by identity, not hash."""
    path = str(tmp_path / "db.sqlite")
    schema = Schema(
        [Attribute("K", AttributeKind.CATEGORICAL), Attribute("V", AttributeKind.NUMERICAL)]
    )
    database = Database([Relation("T", schema, [("a", 1.0)])])
    executor = QueryExecutor(database, backend="sqlite", db_path=path)
    executor._ensure_sqlite()
    assert executor.sqlite_load_count == 1

    database.add(Relation("T", schema, [("a", 1.0)]))  # same content, new object
    executor._ensure_sqlite()
    assert executor.sqlite_load_count == 2


def test_executor_pickles_without_sqlite_connection(tmp_path):
    import pickle

    bundle = _bundle()
    path = str(tmp_path / "meps.sqlite")
    executor = QueryExecutor(bundle.database, backend="sqlite", db_path=path)
    first = executor.evaluate(bundle.query)
    clone = pickle.loads(pickle.dumps(executor))
    assert clone._sqlite_pool.get() is None
    assert clone.evaluate(bundle.query).relation.rows == first.relation.rows
    assert clone.sqlite_load_count == 0  # reopened warm from the persisted file
