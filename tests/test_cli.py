"""Tests for the command-line interface."""

from __future__ import annotations

import argparse

import pytest

from repro.cli import build_parser, main, parse_constraint
from repro.core import BoundType


class TestConstraintParsing:
    def test_lower_bound(self):
        constraint = parse_constraint("3@6:Gender=F", "lower")
        assert constraint.bound == 3
        assert constraint.k == 6
        assert constraint.bound_type is BoundType.LOWER
        assert constraint.group.conditions == {"Gender": "F"}

    def test_upper_bound_with_conjunctive_group(self):
        constraint = parse_constraint("1@3:Income=High,Gender=M", "upper")
        assert constraint.bound_type is BoundType.UPPER
        assert constraint.group.conditions == {"Income": "High", "Gender": "M"}

    @pytest.mark.parametrize("text", ["3:Gender=F", "x@6:Gender=F", "3@6", "3@6:Gender"])
    def test_invalid_specifications(self, text):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_constraint(text, "lower")


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_refine_defaults(self):
        args = build_parser().parse_args(
            ["refine", "--dataset", "students", "--at-least", "3@6:Gender=F"]
        )
        assert args.epsilon == 0.5
        assert args.distance == "pred"
        assert args.method == "milp+opt"


class TestCommands:
    def test_datasets_lists_all_bundles(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("students", "astronauts", "law_students", "meps", "tpch"):
            assert name in output

    def test_inspect_students(self, capsys):
        exit_code = main(
            ["inspect", "--dataset", "students", "--top", "6", "--group", "Gender=F"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "SELECT DISTINCT" in output
        assert "group Gender=F: 2 of the top-6" in output

    def test_refine_running_example(self, capsys):
        exit_code = main(
            [
                "refine",
                "--dataset", "students",
                "--at-least", "3@6:Gender=F",
                "--at-most", "1@3:Income=High",
                "--epsilon", "0",
                "--distance", "pred",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Activity: +{SO}" in output
        assert "refined query:" in output

    def test_refine_without_constraints_fails(self, capsys):
        exit_code = main(["refine", "--dataset", "students"])
        assert exit_code == 2
        assert "at least one" in capsys.readouterr().err

    def test_refine_infeasible_instance_returns_one(self, capsys):
        exit_code = main(
            [
                "refine",
                "--dataset", "students",
                "--at-least", "6@6:Gender=F",
                "--at-least", "6@6:Gender=M",
                "--epsilon", "0",
            ]
        )
        assert exit_code == 1
        assert "No refinement" in capsys.readouterr().out

    def test_refine_on_scaled_down_dataset(self, capsys):
        exit_code = main(
            [
                "refine",
                "--dataset", "law_students",
                "--rows", "400",
                "--at-least", "4@10:Sex=F",
                "--epsilon", "0.5",
            ]
        )
        assert exit_code == 0
        assert "refined query:" in capsys.readouterr().out
