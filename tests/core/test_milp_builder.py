"""Tests for the MILP construction (Figure 1) and the Section 4 optimizations."""

from __future__ import annotations

import pytest

from repro.core import ConstraintSet, at_least, at_most, get_distance
from repro.core.constraints import BoundType
from repro.core.milp_builder import MILPBuilder, build_model
from repro.core.optimizations import (
    BuilderOptions,
    apply_relevancy_pruning,
    classify_bound_types,
)
from repro.datasets import law_students_database, law_students_query
from repro.exceptions import RefinementError
from repro.provenance import annotate
from repro.relational import (
    Conjunction,
    NumericalPredicate,
    QueryExecutor,
    SPJQuery,
)


@pytest.fixture(scope="module")
def students_setup():
    from repro.datasets import scholarship_query, students_database

    database = students_database()
    query = scholarship_query()
    executor = QueryExecutor(database)
    return {
        "database": database,
        "query": query,
        "annotated": annotate(query, database),
        "original": executor.evaluate(query),
    }


def _build(students_setup, constraints, epsilon=0.0, distance="pred", options=None):
    return build_model(
        query=students_setup["query"],
        annotated=students_setup["annotated"],
        constraints=constraints,
        epsilon=epsilon,
        distance=get_distance(distance),
        original_result=students_setup["original"],
        options=options or BuilderOptions.none(),
    )


class TestModelConstruction:
    def test_variable_counts_for_running_example(self, students_setup, scholarship_constraints):
        artifacts = _build(students_setup, scholarship_constraints)
        statistics = artifacts.statistics
        assert statistics["annotated_tuples"] == 14
        assert statistics["lineage_classes"] == 10
        # One A_v per activity value (5), one A_{v,>=} per distinct GPA (6),
        # one r_t per tuple (14) plus auxiliary objective/denominator binaries.
        assert statistics["binary_variables"] >= 5 + 6 + 14
        assert statistics["constraints"] > statistics["annotated_tuples"]

    def test_epsilon_must_be_nonnegative(self, students_setup, scholarship_constraints):
        with pytest.raises(RefinementError):
            MILPBuilder(
                query=students_setup["query"],
                annotated=students_setup["annotated"],
                constraints=scholarship_constraints,
                epsilon=-0.1,
                distance=get_distance("pred"),
                original_result=students_setup["original"],
            )

    def test_equality_numerical_predicate_is_rejected(self, students_setup, scholarship_constraints):
        query = SPJQuery(
            tables=["Students"],
            where=Conjunction([NumericalPredicate("GPA", "=", 3.7)]),
            order_by="SAT",
        )
        with pytest.raises(RefinementError):
            MILPBuilder(
                query=query,
                annotated=students_setup["annotated"],
                constraints=scholarship_constraints,
                epsilon=0.0,
                distance=get_distance("pred"),
                original_result=students_setup["original"],
            )

    def test_solution_extracts_to_example_12_refinement(
        self, students_setup, scholarship_constraints
    ):
        """The optimal DIS_pred refinement adds SO to the Activity predicate."""
        artifacts = _build(students_setup, scholarship_constraints)
        solution = artifacts.model.solve()
        assert solution.is_optimal
        assert solution.objective_value == pytest.approx(0.5, abs=1e-6)
        refinement = artifacts.extract_refinement(solution)
        assert refinement.categorical["Activity"] == frozenset({"RB", "SO"})
        assert refinement.numerical[("GPA", next(iter(refinement.numerical))[1])] == pytest.approx(3.7)

    def test_infeasible_when_constraints_unreachable(self, students_setup):
        """No refinement can put 7 women in the top-6."""
        constraints = ConstraintSet([at_least(6, 6, Gender="M"), at_least(6, 6, Gender="F")])
        artifacts = _build(students_setup, constraints, epsilon=0.0)
        solution = artifacts.model.solve()
        assert not solution.is_feasible

    def test_outcome_distance_requests_topk_variables(self, students_setup, scholarship_constraints):
        predicate_artifacts = _build(students_setup, scholarship_constraints, distance="pred")
        kendall_artifacts = _build(students_setup, scholarship_constraints, distance="kendall")
        assert (
            kendall_artifacts.statistics["topk_variables"]
            > predicate_artifacts.statistics["topk_variables"]
        )


class TestOptimizations:
    def test_relevancy_pruning_reduces_tuples(self):
        database = law_students_database(num_rows=2000, seed=11)
        query = law_students_query()
        annotated = annotate(query, database)
        pruned = apply_relevancy_pruning(annotated, k_star=10)
        assert len(pruned) < len(annotated)
        assert pruned.categorical_domains == annotated.categorical_domains
        for positions in pruned.lineage_classes.values():
            assert len(positions) <= 10

    def test_relevancy_pruning_keeps_requested_positions(self, students_setup):
        annotated = students_setup["annotated"]
        last_position = annotated.tuples[-1].position
        pruned = apply_relevancy_pruning(annotated, k_star=1, keep_positions=[last_position])
        assert last_position in {t.position for t in pruned.tuples}

    def test_relevancy_pruning_keeps_distinct_duplicates(self, students_setup):
        """If a kept tuple has higher-ranked duplicates, those are kept too."""
        annotated = students_setup["annotated"]
        pruned = apply_relevancy_pruning(annotated, k_star=6)
        kept = {t.position for t in pruned.tuples}
        for position in kept:
            for duplicate in annotated.duplicates_before(position):
                assert duplicate in kept

    def test_classify_bound_types(self, students_setup):
        constraints = ConstraintSet(
            [at_least(3, 6, Gender="F"), at_most(1, 3, Income="High")]
        )
        classification = classify_bound_types(students_setup["annotated"], constraints)
        t8 = next(t for t in students_setup["annotated"].tuples if t.values["ID"] == "t8")
        t7 = next(t for t in students_setup["annotated"].tuples if t.values["ID"] == "t7")
        # t8 is a high-income woman: both bound types; t7 is a low-income man: neither.
        assert classification[t8.position] == {BoundType.LOWER, BoundType.UPPER}
        assert classification[t7.position] == set()

    def test_merged_lineage_variables_shrink_model_for_nondistinct_query(self):
        database = law_students_database(num_rows=1500, seed=11)
        query = law_students_query()
        executor = QueryExecutor(database)
        annotated = annotate(query, database)
        constraints = ConstraintSet([at_least(5, 10, Sex="F")])
        unmerged = build_model(
            query, annotated, constraints, 0.5, get_distance("pred"),
            executor.evaluate(query), BuilderOptions(relevancy_pruning=False, merge_lineage_variables=False, relax_rank_expressions=False),
        )
        merged = build_model(
            query, annotated, constraints, 0.5, get_distance("pred"),
            executor.evaluate(query), BuilderOptions(relevancy_pruning=False, merge_lineage_variables=True, relax_rank_expressions=False),
        )
        assert merged.statistics["binary_variables"] < unmerged.statistics["binary_variables"]

    def test_merging_is_skipped_for_distinct_queries(self, students_setup, scholarship_constraints):
        merged = _build(
            students_setup, scholarship_constraints,
            options=BuilderOptions(relevancy_pruning=False, merge_lineage_variables=True, relax_rank_expressions=False),
        )
        unmerged = _build(students_setup, scholarship_constraints, options=BuilderOptions.none())
        # The scholarship query is DISTINCT, so merging must not change the model size.
        assert merged.statistics["binary_variables"] == unmerged.statistics["binary_variables"]

    def test_all_option_combinations_reach_the_same_optimum(self, students_setup, scholarship_constraints):
        """The optimizations must not change the optimal objective value."""
        objectives = []
        for pruning in (False, True):
            for merging in (False, True):
                for relaxing in (False, True):
                    options = BuilderOptions(
                        relevancy_pruning=False,  # pruning is applied by the solver, not the builder
                        merge_lineage_variables=merging,
                        relax_rank_expressions=relaxing,
                    )
                    annotated = students_setup["annotated"]
                    if pruning:
                        annotated = apply_relevancy_pruning(annotated, scholarship_constraints.k_star)
                    artifacts = build_model(
                        students_setup["query"],
                        annotated,
                        scholarship_constraints,
                        0.0,
                        get_distance("pred"),
                        students_setup["original"],
                        options,
                    )
                    solution = artifacts.model.solve()
                    assert solution.is_optimal
                    objectives.append(solution.objective_value)
        assert max(objectives) - min(objectives) < 1e-6
