"""Parity oracles for the portfolio racer on every registered dataset.

Two contracts, checked against the same reduced instances the jobs-parity
suite uses (``tests/core/test_parallel_jobs.py``):

* **Ample deadline**: the race must return the proven optimum — byte-identical
  distance to the best single engine run at the same budget — because the
  MILP member proves optimality and ends the race.
* **Tiny deadline**: the race must return *something sane* — a verified
  feasible incumbent or a typed ``status="deadline"`` result (raised as
  :class:`DeadlineExceeded` only on request) — and must hand control back
  within deadline + 0.5s.  Never a crash, never an unverified answer.
"""

from __future__ import annotations

import time

import pytest

from repro.core import (
    ConstraintSet,
    NaiveProvenanceSearch,
    RefinementSolver,
    at_least,
)
from repro.core.portfolio import EngineSpec, PortfolioSolver
from repro.datasets.registry import DATASET_BUILDERS, load_dataset
from repro.exceptions import DeadlineExceeded

#: Reduced sizes shared with the jobs-parity suite so every dataset races in
#: seconds rather than minutes.
_SMALL_PARAMETERS = {
    "students": {},
    "astronauts": {"num_rows": 120},
    "law_students": {"num_rows": 400},
    "meps": {"num_rows": 400},
    "tpch": {"scale_factor": 0.05},
}

#: Bounds the astronauts enumeration (~2^100 candidates); the MILP member
#: still proves the optimum, so the parity contract is unaffected.
_CANDIDATE_CAP = 600

_GENEROUS_DEADLINE = 120.0
_TINY_DEADLINE = 0.05


def _bundle(name):
    return load_dataset(name, **_SMALL_PARAMETERS[name])


def _any_constraints(bundle) -> ConstraintSet:
    unfiltered_groups = {
        "students": {"Gender": "F"},
        "astronauts": {"Gender": "F"},
        "law_students": {"Sex": "F"},
        "meps": {"Sex": "F"},
        "tpch": {"MktSegment": "AUTOMOBILE"},
    }
    return ConstraintSet([at_least(2, 10, **unfiltered_groups[bundle.name])])


def _portfolio(bundle, constraints, deadline):
    return PortfolioSolver(
        bundle.database,
        bundle.query,
        constraints,
        epsilon=0.5,
        engines=[
            EngineSpec(method="milp+opt"),
            EngineSpec(method="naive+prov", max_candidates=_CANDIDATE_CAP),
        ],
        deadline=deadline,
    )


@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
def test_generous_deadline_matches_the_best_single_engine(name):
    bundle = _bundle(name)
    constraints = _any_constraints(bundle)

    milp = RefinementSolver(
        bundle.database, bundle.query, constraints, epsilon=0.5, method="milp+opt"
    ).solve()
    naive = NaiveProvenanceSearch(
        bundle.database,
        bundle.query,
        constraints,
        epsilon=0.5,
        max_candidates=_CANDIDATE_CAP,
    ).search()

    started = time.monotonic()
    result = _portfolio(bundle, constraints, _GENEROUS_DEADLINE).solve()
    elapsed = time.monotonic() - started

    assert elapsed < _GENEROUS_DEADLINE + 0.5
    assert result.feasible and result.status == "ok"
    assert result.proven_optimal
    # Byte-identical to the proven single-engine optimum.
    assert milp.feasible
    assert result.distance_value == milp.distance_value
    # ... which is also the best answer any racing engine produced alone.
    single_engine_best = min(
        [milp.distance_value]
        + ([naive.distance_value] if naive.feasible else [])
    )
    assert result.distance_value == single_engine_best
    # The verified winner satisfies the constraints.
    assert result.deviation is not None and result.deviation <= 0.5 + 1e-9
    assert result.refined_query is not None


@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
def test_tiny_deadline_returns_promptly_and_sanely(name):
    bundle = _bundle(name)
    constraints = _any_constraints(bundle)

    started = time.monotonic()
    result = _portfolio(bundle, constraints, _TINY_DEADLINE).solve()
    elapsed = time.monotonic() - started

    # The SLA: hand back within deadline + 0.5s, whatever the engines did.
    assert elapsed < _TINY_DEADLINE + 0.5
    assert result.status in ("ok", "deadline")
    if result.feasible:
        # Any incumbent that survives is verified: within epsilon, full k*.
        assert result.status == "ok"
        assert result.deviation is not None and result.deviation <= 0.5 + 1e-9
        assert result.distance_value is not None
    else:
        assert result.status == "deadline"
        assert result.winner is None
    # Every engine ends in a typed terminal status, never a crash.
    assert set(result.engine_statuses.values()) <= {
        "solved", "incumbent", "timeout", "error", "cancelled"
    }


@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
def test_tiny_deadline_raises_typed_error_only_without_incumbent(name):
    bundle = _bundle(name)
    constraints = _any_constraints(bundle)
    try:
        result = _portfolio(bundle, constraints, _TINY_DEADLINE).solve(
            raise_on_deadline=True
        )
    except DeadlineExceeded:
        return  # the typed outcome for an empty-handed race
    assert result.feasible and result.status == "ok"
