"""Fault injection for the portfolio racer: one bad engine never sinks the race.

Three failure modes, each injected through a solver subclass that replaces a
single engine adapter while the other engines stay real:

* an engine that **raises** — isolated with status ``error`` (the exception
  text lands in the provenance record) while the race completes;
* an engine that **hangs** and only exits via cooperative cancellation — the
  race finishes on the healthy engine's proof and the hung engine parks with
  status ``cancelled``;
* an engine that returns an **infeasible candidate** — the verification stage
  re-evaluates every candidate winner against the database, rejects the lie,
  demotes the engine to status ``error`` and crowns the next-best candidate.
"""

from __future__ import annotations

import time

import pytest

from repro.core import ConstraintSet, at_least
from repro.core.portfolio import (
    EngineReport,
    EngineSpec,
    PortfolioSolver,
)
from repro.core.refinement import Refinement
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def students():
    bundle = load_dataset("students")
    constraints = ConstraintSet([at_least(2, 10, Gender="F")])
    return bundle, constraints


class FaultySolver(PortfolioSolver):
    """A portfolio whose engines labelled boom/hang/liar misbehave on purpose."""

    def _run_engine(self, spec, budget, control, reports):
        if spec.label == "boom":
            raise RuntimeError("engine exploded")
        if spec.label == "hang":
            # Ignores its budget; exits only via cooperative cancellation.
            while not control.should_stop("hang"):
                time.sleep(0.002)
            return EngineReport(label="hang", method=spec.method, status="cancelled")
        if spec.label == "liar":
            # Claims a distance-zero answer backed by the identity refinement,
            # which does not satisfy the constraints (otherwise no refinement
            # would be needed at all).
            return EngineReport(
                label="liar",
                method=spec.method,
                status="incumbent",
                feasible=True,
                distance_value=0.0,
                deviation=0.0,
                refinement=Refinement(),
            )
        return super()._run_engine(spec, budget, control, reports)


def race(students, labels, deadline=30.0, **kwargs):
    bundle, constraints = students
    engines = [
        EngineSpec(method="naive+prov", label=label) if label != "healthy"
        else EngineSpec(method="naive+prov", label="healthy")
        for label in labels
    ]
    solver = FaultySolver(
        bundle.database,
        bundle.query,
        constraints,
        epsilon=0.5,
        engines=engines,
        deadline=deadline,
        **kwargs,
    )
    return solver.solve()


def test_raising_engine_is_isolated_and_the_race_completes(students):
    result = race(students, ["boom", "healthy"])
    assert result.status == "ok"
    assert result.winner == "healthy"
    assert result.proven_optimal
    boom = result.reports["boom"]
    assert boom.status == "error"
    assert boom.error == "RuntimeError: engine exploded"
    assert not boom.feasible
    # The failure is part of the provenance record.
    assert result.race_record()["engines"]["boom"]["error"] == (
        "RuntimeError: engine exploded"
    )


def test_hanging_engine_is_cancelled_when_the_race_is_decided(students):
    started = time.monotonic()
    result = race(students, ["hang", "healthy"])
    elapsed = time.monotonic() - started
    assert result.status == "ok"
    assert result.winner == "healthy"
    # The healthy engine's proof cancelled the hang; it acknowledged within
    # the join grace rather than holding the race open.
    assert result.reports["hang"].status == "cancelled"
    assert elapsed < 10.0


def test_hanging_engine_alone_expires_at_the_deadline(students):
    deadline = 0.3
    started = time.monotonic()
    result = race(students, ["hang"], deadline=deadline)
    elapsed = time.monotonic() - started
    assert result.status == "deadline"
    assert not result.feasible
    # The acceptance bound: the racer returns within deadline + 0.5s even
    # when its only engine never reports voluntarily.
    assert elapsed < deadline + 0.5
    assert result.reports["hang"].status == "cancelled"


def test_infeasible_candidate_is_rejected_and_next_best_wins(students):
    result = race(students, ["liar", "healthy"])
    assert result.status == "ok"
    assert result.winner == "healthy"
    liar = result.reports["liar"]
    assert liar.status == "error"
    assert not liar.feasible
    assert "violates" in (liar.error or "")
    # The verified winner carries the healthy engine's true optimum, not the
    # liar's fantasy distance.
    assert result.distance_value is not None and result.distance_value > 0.0
    assert result.deviation is not None and result.deviation <= 0.5 + 1e-9


def test_every_engine_failing_yields_error_status(students):
    result = race(students, ["liar"], deadline=5.0)
    assert result.status == "error"
    assert not result.feasible
    assert result.winner is None
    assert result.reports["liar"].status == "error"
