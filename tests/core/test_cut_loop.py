"""Tests for the lazy constraint generation subsystem.

Three layers:

* unit tests of the building blocks — :class:`LazyPool` separation/take
  semantics and validation, :class:`RankCompletion` substitution, and the
  deterministic behaviour of :func:`run_cut_loop` under a scripted backend
  (convergence, group closure, deadline expiry with a typed incumbent);
* golden parity — on every registered dataset, for both MILP methods and all
  three distance measures, the cut loop must attain the same model optimum as
  the eager lowering, without ever re-lowering the grown model from scratch
  (``full_lowerings == 1``);
* solver wiring — the ``REPRO_MILP_LAZY`` gate and the cut statistics
  surfaced through ``model_statistics``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConstraintSet, RefinementSolver, at_least
from repro.core.deadline import Deadline
from repro.core.lazy_generation import (
    DEFAULT_TOLERANCE,
    LazyPool,
    RankCompletion,
    run_cut_loop,
)
from repro.core.solver import lazy_generation_default
from repro.datasets import load_dataset
from repro.exceptions import ModelError
from repro.milp.model import SENSE_EQ, SENSE_GE, SENSE_LE, Model
from repro.milp.solution import Solution, SolveStatus

# -- LazyPool -------------------------------------------------------------------------


def two_group_pool() -> LazyPool:
    # Group 7: x0 <= 1 and x0 + x1 >= 1.  Group 9: x1 == 0.
    return LazyPool(
        "test",
        rows=[0, 1, 1, 2],
        cols=[0, 0, 1, 1],
        coeffs=[1.0, 1.0, 1.0, 1.0],
        senses=[SENSE_LE, SENSE_GE, SENSE_EQ],
        rhs=[1.0, 1.0, 0.0],
        group_keys=[7, 7, 9],
    )


class TestLazyPool:
    def test_parallel_array_validation(self):
        with pytest.raises(ModelError, match="parallel arrays"):
            LazyPool("bad", [0], [0], [1.0], [SENSE_LE], [1.0, 2.0], [0, 1])
        with pytest.raises(ModelError, match="parallel arrays"):
            LazyPool("bad", [0, 0], [0], [1.0], [SENSE_LE], [1.0], [0])

    def test_separate_reports_violated_groups_only(self):
        pool = two_group_pool()
        # x = (0, 0): row0 0<=1 ok, row1 0>=1 violated (group 7), row2 0==0 ok.
        assert pool.separate(np.array([0.0, 0.0])).tolist() == [7]
        # x = (1, 1): rows 0-1 ok, row2 1==0 violated (group 9).
        assert pool.separate(np.array([1.0, 1.0])).tolist() == [9]
        # x = (1, 0): everything holds.
        assert pool.separate(np.array([1.0, 0.0])).size == 0

    def test_separate_respects_tolerance(self):
        pool = two_group_pool()
        x = np.array([1.0, DEFAULT_TOLERANCE / 2.0])
        assert pool.separate(x).size == 0
        assert pool.separate(np.array([1.0, 1e-3])).tolist() == [9]

    def test_take_marks_rows_not_pending_and_remaps(self):
        pool = two_group_pool()
        assert pool.num_pending == 3
        rows, cols, coeffs, senses, rhs = pool.take(np.array([9]))
        assert rows.tolist() == [0] and cols.tolist() == [1]
        assert senses.tolist() == [SENSE_EQ] and rhs.tolist() == [0.0]
        assert pool.num_pending == 2
        # The taken group never separates again.
        assert pool.separate(np.array([1.0, 1.0])).size == 0
        # Taking an exhausted or unknown group yields nothing.
        assert pool.take(np.array([9])) is None
        assert pool.take(np.array([123])) is None

    def test_take_whole_pool(self):
        pool = two_group_pool()
        block = pool.take(np.array([7, 9]))
        assert block[4].shape[0] == 3
        assert pool.num_pending == 0
        assert pool.separate(np.array([0.0, 1.0])).size == 0


class TestRankCompletion:
    def test_overwrites_rank_columns_with_implied_values(self):
        # rank (col 2) defined by rank = 5 - 2*x0 - x1.
        completion = RankCompletion(
            rank_cols=[2], rows=[0, 0], cols=[0, 1], coeffs=[2.0, 1.0], rhs=[5.0]
        )
        x = np.array([1.0, 1.0, 99.0])
        completed = completion(x)
        assert completed.tolist() == [1.0, 1.0, 2.0]
        # The input vector is left untouched.
        assert x[2] == 99.0


# -- run_cut_loop under a scripted backend --------------------------------------------


def scripted_model(num_variables: int = 2) -> Model:
    model = Model("scripted")
    for index in range(num_variables):
        model.binary_var(f"x{index}")
    return model


def scripted_solution(model: Model, assignment: list[float], status=SolveStatus.OPTIMAL) -> Solution:
    return Solution(
        status=status,
        objective_value=float(sum(assignment)),
        values=dict(zip(model.variables, assignment)),
        solver_name="scripted",
    )


class TestRunCutLoop:
    def test_converges_when_separation_finds_nothing(self):
        model = scripted_model()
        pool = two_group_pool()
        answers = [
            scripted_solution(model, [0.0, 0.0]),  # violates group 7
            scripted_solution(model, [1.0, 0.0]),  # clean
        ]
        calls = []

        def solve(limit, guidance):
            calls.append(dict(guidance))
            return answers[len(calls) - 1]

        outcome = run_cut_loop(model, [pool], solve)
        assert outcome.proven_optimal
        assert outcome.solution.is_optimal
        assert outcome.rounds == 1
        assert outcome.rows_generated == 2  # both rows of group 7
        assert pool.num_pending == 1
        # Second round was warm-started and carried the proven round-1 bound.
        assert calls[1]["known_lower_bound"] == 0.0
        assert calls[1]["warm_start_values"] == answers[0].values

    def test_group_closure_spans_pools(self):
        model = scripted_model()
        first = two_group_pool()
        # A second pool sharing group key 7 whose rows the candidate satisfies.
        second = LazyPool(
            "other", [0], [1], [1.0], [SENSE_LE], [5.0], [7]
        )
        answers = iter(
            [
                scripted_solution(model, [0.0, 0.0]),
                scripted_solution(model, [1.0, 0.0]),
            ]
        )
        outcome = run_cut_loop(model, [first, second], lambda *_: next(answers))
        # Group 7 was pulled from *both* pools even though only the first
        # pool's rows were violated.
        assert outcome.rows_generated == 3
        assert second.num_pending == 0

    def test_expired_deadline_returns_typed_incumbent(self):
        model = scripted_model()
        pool = two_group_pool()

        def solve(limit, guidance):
            return scripted_solution(model, [0.0, 0.0])  # always violates 7

        outcome = run_cut_loop(
            model, [pool], solve, deadline=Deadline.after(0.0), time_limit=None
        )
        # Round one ran (an expired budget still buys one token solve), its
        # violated rows were added, and the loop returned the incumbent typed
        # as a time-limited stop instead of claiming optimality.
        assert not outcome.proven_optimal
        assert outcome.solution.status is SolveStatus.TIME_LIMIT
        assert outcome.solution.values  # incumbent preserved
        assert outcome.rounds == 1
        assert pool.num_pending == 1

    def test_infeasible_relaxation_passes_through(self):
        model = scripted_model()
        pool = two_group_pool()
        infeasible = Solution(
            status=SolveStatus.INFEASIBLE,
            objective_value=None,
            values={},
            solver_name="scripted",
        )
        outcome = run_cut_loop(model, [pool], lambda *_: infeasible)
        assert outcome.solution.status is SolveStatus.INFEASIBLE
        assert not outcome.proven_optimal
        assert outcome.rounds == 0

    def test_escalation_dumps_all_pending_rows(self):
        model = scripted_model()
        pool = two_group_pool()
        answers = iter(
            [
                scripted_solution(model, [0.0, 0.0]),  # violates 7
                scripted_solution(model, [1.0, 1.0]),  # violates 9
                scripted_solution(model, [1.0, 0.0]),  # clean
            ]
        )
        outcome = run_cut_loop(
            model, [pool], lambda *_: next(answers), escalation_rounds=1
        )
        # Round 2 hit the escalation threshold: every pending row entered the
        # model, so the pool drained even though only group 9 was violated.
        assert outcome.rounds == 2
        assert outcome.rows_generated == 3
        assert pool.num_pending == 0
        assert outcome.proven_optimal

    def test_completion_applied_before_separation(self):
        model = scripted_model(3)
        # Pool row: x2 == 1, keyed group 0.
        pool = LazyPool("ranked", [0], [2], [1.0], [SENSE_EQ], [1.0], [0])
        # x2 is determined as 1 - 0*x0; the backend parks it at 0.
        completion = RankCompletion(
            rank_cols=[2], rows=[0], cols=[0], coeffs=[0.0], rhs=[1.0]
        )
        solution = scripted_solution(model, [1.0, 0.0, 0.0])
        outcome = run_cut_loop(
            model, [pool], lambda *_: solution, completion=completion
        )
        # Without completion the arbitrary x2=0 would flood the pool in;
        # with it the row is satisfied exactly and nothing is generated.
        assert outcome.rounds == 0
        assert outcome.rows_generated == 0
        assert outcome.proven_optimal


# -- golden parity against the eager lowering -----------------------------------------

DATASET_PARAMETERS = {
    "students": {},
    "astronauts": {"num_rows": 120},
    "law_students": {"num_rows": 200},
    "meps": {"num_rows": 200},
    "tpch": {"scale_factor": 0.05},
}

DATASET_CONSTRAINTS = {
    "students": [at_least(3, 6, Gender="F")],
    "astronauts": [at_least(4, 10, Gender="F")],
    "law_students": [at_least(4, 10, Sex="F")],
    "meps": [at_least(4, 10, Sex="F")],
    "tpch": [at_least(2, 10, MktSegment="AUTOMOBILE")],
}


@pytest.mark.parametrize("dataset", sorted(DATASET_PARAMETERS))
@pytest.mark.parametrize("method", ["milp", "milp+opt"])
@pytest.mark.parametrize("distance", ["pred", "jaccard", "kendall"])
def test_cut_loop_matches_eager_optimum(dataset, method, distance):
    bundle = load_dataset(dataset, **DATASET_PARAMETERS[dataset])
    constraints = ConstraintSet(DATASET_CONSTRAINTS[dataset])
    results = {}
    for lazy in (False, True):
        solver = RefinementSolver(
            bundle.database,
            bundle.query,
            constraints,
            epsilon=0.5,
            distance=distance,
            method=method,
            lazy_generation=lazy,
        )
        results[lazy] = solver.solve()
    eager, cut = results[False], results[True]
    assert cut.feasible == eager.feasible
    # The model optimum must match exactly; the *realized* distance_value may
    # differ between equal-objective optima (tie-breaking), so the objective
    # is the golden quantity.
    assert cut.objective_value == pytest.approx(eager.objective_value, abs=1e-6)
    # The grown model extends the cached CSR; it is never re-lowered.
    assert cut.model_statistics["full_lowerings"] == 1
    assert cut.model_statistics["seed_rows"] > 0
    assert cut.model_statistics["lazy_pool_rows"] >= 0
    if cut.model_statistics["lazy_pool_rows"]:
        assert cut.model_statistics["cut_rounds"] >= 0
        assert cut.model_statistics["rows_generated"] >= 0


# -- solver wiring --------------------------------------------------------------------


class TestSolverWiring:
    def test_env_gate_default_and_off_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_MILP_LAZY", raising=False)
        assert lazy_generation_default() is True
        for off in ("0", "false", "off", "no", ""):
            monkeypatch.setenv("REPRO_MILP_LAZY", off)
            assert lazy_generation_default() is False
        monkeypatch.setenv("REPRO_MILP_LAZY", "1")
        assert lazy_generation_default() is True

    def test_env_gate_controls_solver(self, monkeypatch, students_db, scholarship, scholarship_constraints):
        monkeypatch.setenv("REPRO_MILP_LAZY", "0")
        solver = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0
        )
        assert solver.lazy_generation is False
        assert solver.options.lazy_generation is False
        monkeypatch.setenv("REPRO_MILP_LAZY", "1")
        solver = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0
        )
        assert solver.lazy_generation is True
        assert solver.options.lazy_generation is True

    def test_cut_statistics_surface_in_result(self):
        bundle = load_dataset("law_students", num_rows=200)
        constraints = ConstraintSet(DATASET_CONSTRAINTS["law_students"])
        solver = RefinementSolver(
            bundle.database,
            bundle.query,
            constraints,
            epsilon=0.5,
            distance="kendall",
            method="milp+opt",
            lazy_generation=True,
        )
        result = solver.solve()
        assert result.feasible
        statistics = result.model_statistics
        assert statistics["full_lowerings"] == 1
        assert statistics["seed_rows"] > 0
        assert statistics["lazy_pool_rows"] > 0
        assert statistics["cut_rounds"] >= 0
        assert statistics["rows_generated"] >= 0
