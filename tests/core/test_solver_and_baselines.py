"""Tests for the RefinementSolver facade, the exhaustive baselines and Erica."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ConstraintSet,
    EricaBaseline,
    NaiveProvenanceSearch,
    NaiveSearch,
    RefinementProblem,
    RefinementSolver,
    at_least,
)
from repro.core.solver import solve_refinement
from repro.exceptions import NoRefinementError, RefinementError
from repro.relational import QueryExecutor


class TestRefinementSolver:
    @pytest.mark.parametrize("method", ["milp", "milp+opt"])
    def test_paper_example_12_is_the_predicate_optimum(
        self, students_db, scholarship, scholarship_constraints, method
    ):
        solver = RefinementSolver(
            students_db, scholarship, scholarship_constraints,
            epsilon=0.0, distance="pred", method=method,
        )
        result = solver.solve()
        assert result.feasible
        assert result.distance_value == pytest.approx(0.5, abs=1e-6)
        assert result.deviation == pytest.approx(0.0)
        assert result.refinement.categorical["Activity"] == frozenset({"RB", "SO"})
        top6 = [row[0] for row in result.refined_result.projected.rows[:6]]
        assert top6 == ["t1", "t2", "t4", "t6", "t7", "t8"]  # Example 1.2

    def test_result_reports_timings_and_model_statistics(
        self, students_db, scholarship, scholarship_constraints
    ):
        result = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0
        ).solve()
        assert result.setup_seconds > 0
        assert result.total_seconds >= result.solve_seconds
        assert result.model_statistics["annotated_tuples"] > 0
        assert "variables" in result.model_statistics

    def test_sql_rendering_of_refined_query(self, students_db, scholarship, scholarship_constraints):
        result = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0
        ).solve()
        assert "SELECT DISTINCT" in result.sql
        assert "'SO'" in result.sql

    def test_constraint_counts_satisfy_bounds(self, students_db, scholarship, scholarship_constraints):
        result = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0
        ).solve()
        counts = result.constraint_counts
        assert counts["l[Gender=F,k=6]=3"] >= 3
        assert counts["u[Income=High,k=3]=1"] <= 1

    @pytest.mark.parametrize("distance", ["jaccard", "kendall"])
    def test_outcome_distances_satisfy_constraints_exactly(
        self, students_db, scholarship, scholarship_constraints, distance
    ):
        result = RefinementSolver(
            students_db, scholarship, scholarship_constraints,
            epsilon=0.0, distance=distance,
        ).solve()
        assert result.feasible
        assert result.deviation == pytest.approx(0.0)

    def test_jaccard_optimum_keeps_more_of_the_original_output_than_pred(
        self, students_db, scholarship, scholarship_constraints
    ):
        """Example 1.3's insight: outcome-based minimality can prefer a different refinement."""
        executor = QueryExecutor(students_db)
        original = executor.evaluate(scholarship)
        from repro.core import JaccardDistance

        jaccard = JaccardDistance()
        pred_result = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0, distance="pred"
        ).solve()
        jac_result = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0, distance="jaccard"
        ).solve()
        pred_overlap = jaccard.evaluate(
            scholarship, pred_result.refined_query, original, pred_result.refined_result, 6
        )
        jac_overlap = jaccard.evaluate(
            scholarship, jac_result.refined_query, original, jac_result.refined_result, 6
        )
        assert jac_overlap <= pred_overlap + 1e-9

    def test_epsilon_relaxes_the_problem(self, students_db, scholarship):
        """With a large epsilon the original query itself is acceptable (distance 0)."""
        constraints = ConstraintSet([at_least(3, 6, Gender="F")])
        result = RefinementSolver(
            students_db, scholarship, constraints, epsilon=1.0, distance="pred"
        ).solve()
        assert result.feasible
        assert result.distance_value == pytest.approx(0.0)
        assert result.refinement.is_identity(scholarship)

    def test_infeasible_instance_reports_infeasible(self, students_db, scholarship):
        constraints = ConstraintSet(
            [at_least(6, 6, Gender="M"), at_least(6, 6, Gender="F")]
        )
        solver = RefinementSolver(students_db, scholarship, constraints, epsilon=0.0)
        result = solver.solve()
        assert not result.feasible
        assert result.refinement is None and result.sql is None
        with pytest.raises(NoRefinementError):
            solver.solve(raise_on_infeasible=True)

    def test_unknown_method_rejected(self, students_db, scholarship, scholarship_constraints):
        with pytest.raises(RefinementError):
            RefinementSolver(
                students_db, scholarship, scholarship_constraints, method="genetic"
            )

    def test_branch_and_bound_backend_agrees_with_highs(
        self, students_db, scholarship, scholarship_constraints
    ):
        highs = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0, backend="scipy"
        ).solve()
        bnb = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0,
            backend="branch_and_bound",
        ).solve()
        assert highs.feasible and bnb.feasible
        assert highs.distance_value == pytest.approx(bnb.distance_value, abs=1e-6)

    def test_solve_refinement_convenience_wrapper(self, students_db, scholarship, scholarship_constraints):
        result = solve_refinement(students_db, scholarship, scholarship_constraints, epsilon=0.0)
        assert result.feasible

    def test_summary_strings(self, students_db, scholarship, scholarship_constraints):
        result = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0
        ).solve()
        assert "distance" in result.summary()
        infeasible = RefinementSolver(
            students_db, scholarship,
            ConstraintSet([at_least(6, 6, Gender="M"), at_least(6, 6, Gender="F")]),
            epsilon=0.0,
        ).solve()
        assert "no refinement" in infeasible.summary()


class TestRefinementProblem:
    def test_problem_bundles_and_describes(self, students_db, scholarship, scholarship_constraints):
        problem = RefinementProblem(students_db, scholarship, scholarship_constraints, epsilon=0.25)
        assert problem.k_star == 6
        description = problem.describe()
        assert "QD" in description and "eps=0.25" in description


class TestNaiveBaselines:
    def test_naive_agrees_with_milp_optimum(self, students_db, scholarship, scholarship_constraints):
        milp = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0, distance="pred"
        ).solve()
        naive = NaiveSearch(
            students_db, scholarship, scholarship_constraints, epsilon=0.0, distance="pred"
        ).search()
        assert naive.feasible and naive.exhausted
        assert naive.distance_value == pytest.approx(milp.distance_value, abs=1e-6)

    def test_naive_prov_matches_naive(self, students_db, scholarship, scholarship_constraints):
        naive = NaiveSearch(
            students_db, scholarship, scholarship_constraints, epsilon=0.0, distance="pred"
        ).search()
        prov = NaiveProvenanceSearch(
            students_db, scholarship, scholarship_constraints, epsilon=0.0, distance="pred"
        ).search()
        assert prov.feasible
        assert prov.distance_value == pytest.approx(naive.distance_value, abs=1e-6)
        assert prov.candidates_examined == naive.candidates_examined

    @pytest.mark.parametrize("distance", ["jaccard", "kendall"])
    def test_naive_prov_matches_milp_for_outcome_distances(
        self, students_db, scholarship, scholarship_constraints, distance
    ):
        milp = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0, distance=distance
        ).solve()
        prov = NaiveProvenanceSearch(
            students_db, scholarship, scholarship_constraints, epsilon=0.0, distance=distance
        ).search()
        assert prov.feasible and milp.feasible
        assert milp.distance_value <= prov.distance_value + 1e-6

    def test_naive_reports_infeasible_when_no_candidate_fits(self, students_db, scholarship):
        constraints = ConstraintSet(
            [at_least(6, 6, Gender="M"), at_least(6, 6, Gender="F")]
        )
        result = NaiveSearch(students_db, scholarship, constraints, epsilon=0.0).search()
        assert not result.feasible and result.exhausted

    def test_naive_respects_candidate_cap(self, students_db, scholarship, scholarship_constraints):
        result = NaiveSearch(
            students_db, scholarship, scholarship_constraints, epsilon=0.0,
            max_candidates=5,
        ).search()
        assert result.candidates_examined == 5
        assert not result.exhausted

    def test_naive_respects_timeout(self, students_db, scholarship, scholarship_constraints):
        result = NaiveSearch(
            students_db, scholarship, scholarship_constraints, epsilon=0.0, timeout=0.0
        ).search()
        assert result.timed_out and not result.exhausted

    def test_space_size_is_reported(self, students_db, scholarship, scholarship_constraints):
        result = NaiveProvenanceSearch(
            students_db, scholarship, scholarship_constraints, epsilon=0.0
        ).search()
        assert result.space_size == result.candidates_examined  # fully enumerated here


class TestEricaBaseline:
    def test_erica_finds_exact_satisfying_refinement(self, students_db, scholarship):
        constraints = ConstraintSet([at_least(3, 100, Gender="F")])
        result = EricaBaseline(students_db, scholarship, constraints).solve()
        assert result.feasible
        best = result.best
        executor = QueryExecutor(students_db)
        refined = executor.evaluate(best.refined_query)
        women = sum(1 for row in refined.relation.iter_dicts() if row["Gender"] == "F")
        assert women >= 3

    def test_erica_output_size_restriction(self, students_db, scholarship):
        constraints = ConstraintSet([at_least(3, 100, Gender="F")])
        result = EricaBaseline(students_db, scholarship, constraints, output_size=6).solve()
        if result.feasible:
            assert result.best.output_size == 6

    def test_erica_enumerates_multiple_solutions_in_distance_order(self, students_db, scholarship):
        constraints = ConstraintSet([at_least(3, 100, Gender="F")])
        result = EricaBaseline(students_db, scholarship, constraints).solve(num_solutions=3)
        assert len(result.refinements) >= 2
        distances = [r.distance_value for r in result.refinements]
        assert distances == sorted(distances)

    def test_erica_solutions_are_distinct(self, students_db, scholarship):
        constraints = ConstraintSet([at_least(3, 100, Gender="F")])
        result = EricaBaseline(students_db, scholarship, constraints).solve(num_solutions=3)
        signatures = {
            (
                tuple(sorted(r.refinement.categorical.get("Activity", frozenset()))),
                tuple(sorted(r.refinement.numerical.items())),
            )
            for r in result.refinements
        }
        assert len(signatures) == len(result.refinements)

    def test_erica_num_solutions_must_be_positive(self, students_db, scholarship):
        constraints = ConstraintSet([at_least(3, 100, Gender="F")])
        with pytest.raises(RefinementError):
            EricaBaseline(students_db, scholarship, constraints).solve(num_solutions=0)


@settings(deadline=None, max_examples=8)
@given(
    lower=st.integers(min_value=1, max_value=3),
    k=st.sampled_from([3, 4, 5, 6]),
    epsilon=st.sampled_from([0.0, 0.25, 0.5]),
)
def test_property_milp_optimum_never_worse_than_naive(lower, k, epsilon):
    """Property: on the running example the MILP matches the exhaustive optimum."""
    from repro.datasets import scholarship_query, students_database

    database = students_database()
    query = scholarship_query()
    constraints = ConstraintSet([at_least(lower, k, Gender="F")])
    milp = RefinementSolver(
        database, query, constraints, epsilon=epsilon, distance="pred"
    ).solve()
    naive = NaiveProvenanceSearch(
        database, query, constraints, epsilon=epsilon, distance="pred"
    ).search()
    assert milp.feasible == naive.feasible
    if milp.feasible:
        assert milp.distance_value == pytest.approx(naive.distance_value, abs=1e-6)
        assert milp.deviation <= epsilon + 1e-9
