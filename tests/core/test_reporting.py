"""Tests for the reporting helpers (distance comparison and result reports)."""

from __future__ import annotations

import pytest

from repro.core import (
    ConstraintSet,
    RefinementSolver,
    at_least,
    compare_distances,
    refinement_report,
)


@pytest.fixture(scope="module")
def comparison():
    from repro.datasets import scholarship_query, students_database
    from repro.core import at_most

    database = students_database()
    query = scholarship_query()
    constraints = ConstraintSet([at_least(3, 6, Gender="F"), at_most(1, 3, Income="High")])
    return compare_distances(
        database, query, constraints, epsilon=0.0, distances=("pred", "jaccard", "kendall")
    ), query


class TestCompareDistances:
    def test_one_row_per_distance(self, comparison):
        report, _ = comparison
        assert [row.distance_code for row in report.rows] == ["QD", "JAC", "KEN"]
        assert set(report.results) == {"QD", "JAC", "KEN"}

    def test_all_rows_feasible_on_running_example(self, comparison):
        report, _ = comparison
        assert all(row.feasible for row in report.rows)
        assert all(row.deviation == pytest.approx(0.0) for row in report.rows)

    def test_overlap_is_reported_out_of_k_star(self, comparison):
        report, _ = comparison
        for row in report.rows:
            assert 0 <= row.top_k_overlap <= 6
        jaccard_row = next(row for row in report.rows if row.distance_code == "JAC")
        predicate_row = next(row for row in report.rows if row.distance_code == "QD")
        # Optimising the output overlap can only keep at least as many items.
        assert jaccard_row.top_k_overlap >= predicate_row.top_k_overlap

    def test_best_returns_smallest_distance(self, comparison):
        report, _ = comparison
        best = report.best()
        assert best is not None
        assert best.distance_value == min(
            row.distance_value for row in report.rows if row.feasible
        )

    def test_text_and_markdown_renderings(self, comparison):
        report, _ = comparison
        text = report.to_text()
        markdown = report.to_markdown()
        assert "QD" in text and "JAC" in text and "KEN" in text
        assert markdown.startswith("| distance |")
        assert markdown.count("\n") >= 4

    def test_infeasible_comparison_has_no_best(self):
        from repro.datasets import scholarship_query, students_database

        database = students_database()
        query = scholarship_query()
        constraints = ConstraintSet(
            [at_least(6, 6, Gender="F"), at_least(6, 6, Gender="M")]
        )
        report = compare_distances(
            database, query, constraints, epsilon=0.0, distances=("pred",)
        )
        assert report.best() is None
        assert "infeasible" in report.to_text()


class TestRefinementReport:
    def test_feasible_report_contains_sql_and_counts(self, students_db, scholarship, scholarship_constraints):
        result = RefinementSolver(
            students_db, scholarship, scholarship_constraints, epsilon=0.0
        ).solve()
        text = refinement_report(result, scholarship, top=6)
        assert "refined query:" in text
        assert "l[Gender=F,k=6]=3" in text
        assert "SELECT DISTINCT" in text
        assert "  6." in text  # six ranked rows are listed

    def test_infeasible_report(self, students_db, scholarship):
        constraints = ConstraintSet(
            [at_least(6, 6, Gender="F"), at_least(6, 6, Gender="M")]
        )
        result = RefinementSolver(students_db, scholarship, constraints, epsilon=0.0).solve()
        text = refinement_report(result, scholarship)
        assert "no refinement" in text
