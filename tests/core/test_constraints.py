"""Tests for groups, cardinality constraints and the deviation measure."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import BoundType, CardinalityConstraint, ConstraintSet, Group, at_least, at_most
from repro.exceptions import ConstraintError


class TestGroup:
    def test_matches_single_condition(self):
        group = Group({"Gender": "F"})
        assert group.matches({"Gender": "F", "Income": "Low"})
        assert not group.matches({"Gender": "M"})
        assert not group.matches({})

    def test_matches_conjunction_of_conditions(self):
        group = Group({"Gender": "F", "Income": "Low"})
        assert group.matches({"Gender": "F", "Income": "Low"})
        assert not group.matches({"Gender": "F", "Income": "High"})

    def test_label_is_sorted_and_readable(self):
        group = Group({"Income": "Low", "Gender": "F"})
        assert group.label() == "Gender=F,Income=Low"

    def test_equality_and_hash(self):
        assert Group({"A": 1, "B": 2}) == Group({"B": 2, "A": 1})
        assert hash(Group({"A": 1})) == hash(Group({"A": 1}))

    def test_empty_group_rejected(self):
        with pytest.raises(ConstraintError):
            Group({})


class TestCardinalityConstraint:
    def test_sign_convention(self):
        assert BoundType.LOWER.sign == 1
        assert BoundType.UPPER.sign == -1

    def test_shortfall_for_lower_bound(self):
        constraint = at_least(3, 6, Gender="F")
        assert constraint.shortfall(1) == 2
        assert constraint.shortfall(3) == 0
        assert constraint.shortfall(5) == 0  # over-satisfaction is not penalised

    def test_shortfall_for_upper_bound(self):
        constraint = at_most(1, 3, Income="High")
        assert constraint.shortfall(3) == 2
        assert constraint.shortfall(1) == 0
        assert constraint.shortfall(0) == 0

    def test_validation(self):
        with pytest.raises(ConstraintError):
            at_least(3, 0, Gender="F")
        with pytest.raises(ConstraintError):
            at_least(-1, 5, Gender="F")
        with pytest.raises(ConstraintError):
            at_least(7, 5, Gender="F")

    def test_counts_on_running_example(self, students_executor, scholarship):
        """The paper: top-6 of the scholarship query has 2 women, top-3 has 2 high income."""
        result = students_executor.evaluate(scholarship)
        women = at_least(3, 6, Gender="F")
        high_income = at_most(1, 3, Income="High")
        assert women.count_in(result) == 2
        assert high_income.count_in(result) == 2
        assert women.deviation(result) == pytest.approx(1 / 3)
        assert high_income.deviation(result) == pytest.approx(1.0)
        assert not women.is_satisfied(result)

    def test_labels(self):
        assert at_least(3, 6, Gender="F").label() == "l[Gender=F,k=6]=3"
        assert at_most(1, 3, Income="High").label() == "u[Income=High,k=3]=1"


class TestConstraintSet:
    def test_requires_at_least_one_constraint(self):
        with pytest.raises(ConstraintError):
            ConstraintSet([])

    def test_k_star_and_k_values(self, scholarship_constraints):
        assert scholarship_constraints.k_star == 6
        assert scholarship_constraints.k_values == [3, 6]

    def test_groups_are_deduplicated(self):
        constraints = ConstraintSet(
            [at_least(1, 5, Gender="F"), at_most(4, 10, Gender="F"), at_least(1, 5, Race="Black")]
        )
        assert len(constraints.groups) == 2

    def test_bound_types_per_group(self):
        constraints = ConstraintSet(
            [at_least(1, 5, Gender="F"), at_most(4, 10, Gender="F"), at_least(1, 5, Race="Black")]
        )
        per_group = constraints.bound_types_per_group()
        assert per_group[Group({"Gender": "F"})] == {BoundType.LOWER, BoundType.UPPER}
        assert per_group[Group({"Race": "Black"})] == {BoundType.LOWER}

    def test_deviation_is_mean_of_constraint_deviations(
        self, students_executor, scholarship, scholarship_constraints
    ):
        result = students_executor.evaluate(scholarship)
        expected = (1 / 3 + 1.0) / 2
        assert scholarship_constraints.deviation(result) == pytest.approx(expected)
        assert not scholarship_constraints.is_satisfied(result)
        assert scholarship_constraints.is_satisfied(result, epsilon=0.7)

    def test_deviation_of_satisfying_ranking_is_zero(self, students_executor, scholarship):
        """Example 1.2's refinement satisfies both constraints."""
        from repro.relational import CategoricalPredicate, Conjunction, NumericalPredicate

        refined = scholarship.with_where(
            Conjunction(
                [
                    NumericalPredicate("GPA", ">=", 3.7),
                    CategoricalPredicate("Activity", {"RB", "SO"}),
                ]
            )
        )
        result = students_executor.evaluate(refined)
        constraints = ConstraintSet([at_least(3, 6, Gender="F"), at_most(1, 3, Income="High")])
        assert constraints.deviation(result) == pytest.approx(0.0)
        assert constraints.is_satisfied(result)

    def test_counts_report(self, students_executor, scholarship, scholarship_constraints):
        result = students_executor.evaluate(scholarship)
        counts = scholarship_constraints.counts(result)
        assert counts == {"l[Gender=F,k=6]=3": 2, "u[Income=High,k=3]=1": 2}

    def test_subset(self, scholarship_constraints):
        assert len(scholarship_constraints.subset(1)) == 1
        with pytest.raises(ConstraintError):
            scholarship_constraints.subset(3)


@given(
    count=st.integers(min_value=0, max_value=20),
    bound=st.integers(min_value=1, max_value=10),
)
def test_property_lower_bound_shortfall_is_hinge(count, bound):
    """Property: lower-bound shortfall equals max(bound - count, 0)."""
    constraint = CardinalityConstraint(Group({"A": "x"}), k=20, bound=bound, bound_type=BoundType.LOWER)
    assert constraint.shortfall(count) == max(bound - count, 0)


@given(
    count=st.integers(min_value=0, max_value=20),
    bound=st.integers(min_value=1, max_value=10),
)
def test_property_upper_bound_shortfall_is_hinge(count, bound):
    """Property: upper-bound shortfall equals max(count - bound, 0)."""
    constraint = CardinalityConstraint(Group({"A": "x"}), k=20, bound=bound, bound_type=BoundType.UPPER)
    assert constraint.shortfall(count) == max(count - bound, 0)


@given(
    bounds=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4),
    counts=st.lists(st.integers(min_value=0, max_value=8), min_size=4, max_size=4),
)
def test_property_deviation_is_bounded_by_one_for_lower_bounds(bounds, counts):
    """Property: the deviation of any lower-bound-only constraint set is in [0, 1]."""
    constraints = [
        CardinalityConstraint(Group({"A": "x"}), k=10, bound=b, bound_type=BoundType.LOWER)
        for b in bounds
    ]
    total = sum(
        c.shortfall(counts[i % len(counts)]) / max(c.bound, 1) for i, c in enumerate(constraints)
    ) / len(constraints)
    assert 0.0 <= total <= 1.0
