"""Deterministic scheduling tests for the portfolio racer.

The solver's three injection points — clock, policy, runner — are driven by a
:class:`FakeClock` (virtual time, scripted message delivery) and a
:class:`ScriptedRunner` (no threads: a launch schedules the engine's scripted
messages on the fake clock).  Every test in this module therefore runs with
**zero wall-clock sleeps** and produces the identical schedule on every run;
CI repeats the whole module in a loop to prove it.

The scripted engines hand back *real* refinements of the students dataset
(captured from one exhaustive search), so the solver's verification stage —
which re-evaluates every candidate winner against the database — passes for
honest scripts and the assertions pin exact distances.
"""

from __future__ import annotations

import heapq
import itertools
import queue

import pytest

from repro.core import ConstraintSet, NaiveSearch, at_least
from repro.core.portfolio import (
    EngineReport,
    EngineSpec,
    EngineStart,
    IncumbentUpdate,
    PortfolioSolver,
    RaceAllPolicy,
    StaggeredPolicy,
)
from repro.datasets.registry import load_dataset
from repro.exceptions import DeadlineExceeded, RefinementError

# -- the doubles -----------------------------------------------------------------------


class FakeClock:
    """Virtual time plus scripted message delivery.

    ``wait`` never blocks: it advances virtual time to the next scheduled
    event within the timeout horizon and returns that event's message, or
    advances to the horizon and returns ``None``.  Events whose producer
    returns ``None`` (e.g. a cancelled engine suppressing its report) are
    skipped.
    """

    def __init__(self) -> None:
        self.time = 0.0
        self._events: list[tuple[float, int, object]] = []
        self._sequence = itertools.count()

    def now(self) -> float:
        return self.time

    def schedule(self, at: float, produce) -> None:
        heapq.heappush(self._events, (at, next(self._sequence), produce))

    def wait(self, reports: queue.Queue, timeout: float):
        try:
            return reports.get_nowait()
        except queue.Empty:
            pass
        horizon = self.time + max(timeout, 0.0)
        while self._events and self._events[0][0] <= horizon + 1e-12:
            at, _, produce = heapq.heappop(self._events)
            self.time = max(self.time, at)
            message = produce()
            if message is not None:
                return message
        self.time = max(self.time, horizon)
        return None


class ScriptedRunner:
    """Turns launches into scheduled messages — no threads, no ``join``.

    ``scripts`` maps an engine label to ``[(delay, produce), ...]`` where
    ``produce(control)`` returns the message to deliver (or ``None``).  The
    runner records every launch time and keeps the race control visible so
    tests can assert on cancellation state after the race.
    """

    def __init__(self, clock: FakeClock, scripts: dict) -> None:
        self.clock = clock
        self.scripts = scripts
        self.launches: list[tuple[str, float]] = []
        self.controls: dict = {}

    def launch(self, start: EngineStart, control, reports, run) -> None:
        label = start.spec.label
        now = self.clock.now()
        self.launches.append((label, now))
        self.controls[label] = control
        for delay, produce in self.scripts.get(label, []):
            self.clock.schedule(
                now + delay, lambda produce=produce, control=control: produce(control)
            )


# -- script event producers ------------------------------------------------------------


def streams_incumbent(label, distance, deviation, refinement):
    """An engine streaming a (non-terminal) incumbent, publishing it first."""

    def produce(control):
        control.publish_incumbent(label, distance)
        return IncumbentUpdate(
            label=label,
            distance_value=distance,
            deviation=deviation,
            refinement=refinement,
        )

    return produce


def proves_optimal(label, method, distance, deviation, refinement):
    """An engine terminating with a proven-optimal answer (unless cancelled)."""

    def produce(control):
        if control.should_stop(label):
            return EngineReport(label=label, method=method, status="cancelled")
        control.publish_incumbent(label, distance)
        control.publish_lower_bound(label, distance)
        return EngineReport(
            label=label,
            method=method,
            status="solved",
            feasible=True,
            proven_optimal=True,
            distance_value=distance,
            deviation=deviation,
            refinement=refinement,
        )

    return produce


def proves_infeasible(label, method):
    def produce(control):
        return EngineReport(
            label=label,
            method=method,
            status="solved",
            proven_infeasible=True,
        )

    return produce


# -- the shared problem instance -------------------------------------------------------


@pytest.fixture(scope="module")
def problem():
    """The students instance plus the real incumbent trail of one full search."""
    bundle = load_dataset("students")
    constraints = ConstraintSet([at_least(2, 10, Gender="F")])
    incumbents = []
    result = NaiveSearch(
        bundle.database,
        bundle.query,
        constraints,
        epsilon=0.5,
        on_incumbent=lambda d, r, dev: incumbents.append((d, r, dev)),
    ).search()
    assert result.exhausted and result.feasible
    assert len(incumbents) >= 2, "the harness needs a worse-then-better trail"
    return {
        "bundle": bundle,
        "constraints": constraints,
        "worse": incumbents[0],  # (distance, refinement, deviation)
        "best": incumbents[-1],
        "optimum": result.distance_value,
    }


def scripted_solver(problem, scripts, engines, deadline, policy=None):
    clock = FakeClock()
    runner = ScriptedRunner(clock, scripts)
    solver = PortfolioSolver(
        problem["bundle"].database,
        problem["bundle"].query,
        problem["constraints"],
        epsilon=0.5,
        engines=engines,
        deadline=deadline,
        clock=clock,
        policy=policy,
        runner=runner,
    )
    return solver, clock, runner


# -- winner selection ------------------------------------------------------------------


class TestWinnerSelection:
    def test_proof_beats_earlier_incumbent_and_cancels_the_loser(self, problem):
        worse_d, worse_r, worse_dev = problem["worse"]
        best_d, best_r, best_dev = problem["best"]
        scripts = {
            "a": [(1.0, streams_incumbent("a", worse_d, worse_dev, worse_r))],
            "b": [(2.0, proves_optimal("b", "milp+opt", best_d, best_dev, best_r))],
        }
        engines = [
            EngineSpec(method="naive", label="a"),
            EngineSpec(method="milp+opt", label="b"),
        ]
        solver, clock, runner = scripted_solver(problem, scripts, engines, deadline=10.0)
        result = solver.solve()

        assert result.status == "ok"
        assert result.winner == "b"
        assert result.proven_optimal
        assert result.distance_value == best_d
        assert result.deviation == best_dev
        # The proof ended the race at virtual t=2.0 — well before the deadline
        # and without a single real sleep.
        assert result.elapsed == 2.0
        assert clock.time == 2.0
        # The loser never reported: it is cancelled, not timed out.
        assert result.engine_statuses == {"a": "cancelled", "b": "solved"}
        assert runner.controls["a"].should_stop("a")
        # The bounds timeline records both engines' publications in order.
        assert result.bounds_timeline == [
            (1.0, "a", worse_d),
            (2.0, "b", best_d),
        ]

    def test_best_streamed_incumbent_wins_without_any_proof(self, problem):
        worse_d, worse_r, worse_dev = problem["worse"]
        best_d, best_r, best_dev = problem["best"]
        scripts = {
            "a": [(0.5, streams_incumbent("a", worse_d, worse_dev, worse_r))],
            "b": [(0.8, streams_incumbent("b", best_d, best_dev, best_r))],
        }
        engines = [
            EngineSpec(method="naive", label="a"),
            EngineSpec(method="naive+prov", label="b"),
        ]
        solver, clock, _ = scripted_solver(problem, scripts, engines, deadline=2.0)
        result = solver.solve()

        assert result.status == "ok"
        assert result.winner == "b"
        assert result.distance_value == best_d
        assert not result.proven_optimal
        # Nobody terminated: the race ran to its (virtual) deadline.
        assert result.elapsed == 2.0
        assert result.engine_statuses == {"a": "timeout", "b": "timeout"}

    def test_equal_distances_tie_break_on_plan_order(self, problem):
        best_d, best_r, best_dev = problem["best"]
        scripts = {
            "second": [(0.4, streams_incumbent("second", best_d, best_dev, best_r))],
            "first": [(0.6, streams_incumbent("first", best_d, best_dev, best_r))],
        }
        engines = [
            EngineSpec(method="naive", label="first"),
            EngineSpec(method="naive+prov", label="second"),
        ]
        solver, _, _ = scripted_solver(problem, scripts, engines, deadline=1.0)
        result = solver.solve()
        # "second" reported first, but plan order breaks the distance tie.
        assert result.winner == "first"


# -- deadline expiry -------------------------------------------------------------------


class TestDeadlineExpiry:
    def test_partial_incumbent_survives_the_deadline(self, problem):
        worse_d, worse_r, worse_dev = problem["worse"]
        scripts = {
            "a": [(0.4, streams_incumbent("a", worse_d, worse_dev, worse_r))],
            "b": [],  # silent until (after) the deadline
        }
        engines = [
            EngineSpec(method="naive", label="a"),
            EngineSpec(method="milp", label="b"),
        ]
        solver, clock, _ = scripted_solver(problem, scripts, engines, deadline=1.0)
        result = solver.solve()

        assert result.status == "ok"
        assert result.feasible
        assert result.winner == "a"
        assert result.distance_value == worse_d
        assert not result.proven_optimal
        assert result.elapsed == 1.0
        assert clock.time == 1.0
        assert result.engine_statuses == {"a": "timeout", "b": "timeout"}

    def test_no_incumbent_returns_deadline_status(self, problem):
        engines = [EngineSpec(method="naive", label="a")]
        solver, clock, _ = scripted_solver(problem, {"a": []}, engines, deadline=1.0)
        result = solver.solve()
        assert result.status == "deadline"
        assert not result.feasible
        assert result.winner is None
        assert clock.time == 1.0

    def test_no_incumbent_raises_when_asked(self, problem):
        engines = [EngineSpec(method="naive", label="a")]
        solver, _, _ = scripted_solver(problem, {"a": []}, engines, deadline=1.0)
        with pytest.raises(DeadlineExceeded, match="deadline"):
            solver.solve(raise_on_deadline=True)

    def test_proven_infeasibility_ends_the_race(self, problem):
        scripts = {
            "a": [],
            "b": [(0.7, proves_infeasible("b", "milp+opt"))],
        }
        engines = [
            EngineSpec(method="naive", label="a"),
            EngineSpec(method="milp+opt", label="b"),
        ]
        solver, clock, _ = scripted_solver(problem, scripts, engines, deadline=10.0)
        result = solver.solve()
        assert result.status == "infeasible"
        assert not result.feasible
        assert clock.time == 0.7
        assert result.engine_statuses == {"a": "cancelled", "b": "solved"}


# -- bound propagation -----------------------------------------------------------------


class TestBoundPropagation:
    def test_later_engine_sees_bounds_published_before_its_launch(self, problem):
        """Staggered starts inherit the earlier engines' published bounds."""
        worse_d, worse_r, worse_dev = problem["worse"]
        observed = {}

        def snoop(control):
            observed["upper"] = control.best_incumbent_distance()
            observed["lower"] = control.known_lower_bound()
            return None

        def publish_bound(control):
            # An engine that proved a lower bound but keeps running (the
            # branch-and-bound backend between time slices behaves like this).
            control.publish_lower_bound("a", problem["optimum"])
            return streams_incumbent("a", worse_d, worse_dev, worse_r)(control)

        scripts = {"a": [(1.0, publish_bound)], "b": [(0.5, snoop)]}
        engines = [
            EngineSpec(method="naive+prov", label="a"),
            EngineSpec(method="milp+opt", label="b"),
        ]
        solver, clock, runner = scripted_solver(
            problem, scripts, engines, deadline=5.0, policy=StaggeredPolicy(3.0)
        )
        result = solver.solve()

        assert runner.launches == [("a", 0.0), ("b", 3.0)]
        # b's snoop ran at t=3.5, after a published at t=1.0.
        assert observed == {"upper": worse_d, "lower": problem["optimum"]}
        assert result.winner == "a"
        assert result.elapsed == 5.0

    def test_incumbent_matching_proven_bound_is_optimal(self, problem):
        """A winner whose distance meets the proven lower bound is optimal
        even when the prover itself is a different engine."""
        best_d, best_r, best_dev = problem["best"]

        def prove_then_stream(control):
            control.publish_lower_bound("a", best_d)
            return streams_incumbent("b", best_d, best_dev, best_r)(control)

        scripts = {"a": [], "b": [(0.5, prove_then_stream)]}
        engines = [
            EngineSpec(method="milp+opt", label="a"),
            EngineSpec(method="naive+prov", label="b"),
        ]
        solver, _, _ = scripted_solver(problem, scripts, engines, deadline=1.0)
        result = solver.solve()
        assert result.winner == "b"
        assert result.proven_optimal

    def test_exhaustive_engine_stops_at_a_propagated_cutoff(self, problem):
        """The real naive adapter reads the live bound and stops early,
        reporting a *proven* answer without exhausting the space."""
        clock = FakeClock()
        solver, _, _ = scripted_solver(
            problem, {}, [EngineSpec(method="naive+prov")], deadline=60.0
        )
        from repro.core.portfolio import RaceControl

        control = RaceControl(clock, 0.0)
        control.publish_lower_bound("other", problem["optimum"])
        reports: queue.Queue = queue.Queue()
        report = solver._run_exhaustive(
            EngineSpec(method="naive+prov"), 60.0, control, reports
        )
        assert report.status == "solved"
        assert report.proven_optimal
        assert report.distance_value == problem["optimum"]
        # The cutoff fired before the enumeration finished the whole space.
        assert (
            report.statistics["candidates_examined"]
            < report.statistics["space_size"]
        )


# -- scheduling policies and validation ------------------------------------------------


class TestSchedulingAndValidation:
    def test_race_all_launches_in_spec_order_at_time_zero(self, problem):
        engines = [
            EngineSpec(method="naive", label="x"),
            EngineSpec(method="milp", label="y"),
            EngineSpec(method="naive+prov", label="z"),
        ]
        solver, _, runner = scripted_solver(
            problem, {}, engines, deadline=0.5, policy=RaceAllPolicy()
        )
        solver.solve()
        assert runner.launches == [("x", 0.0), ("y", 0.0), ("z", 0.0)]

    def test_policy_planning_wrong_engines_is_rejected(self, problem):
        class BadPolicy:
            def plan(self, specs, deadline):
                return (EngineStart(EngineSpec(method="naive", label="ghost")),)

        engines = [EngineSpec(method="naive", label="a")]
        solver, _, _ = scripted_solver(
            problem, {}, engines, deadline=1.0, policy=BadPolicy()
        )
        with pytest.raises(RefinementError, match="planned engines"):
            solver.solve()

    def test_unknown_method_rejected(self):
        with pytest.raises(RefinementError, match="unknown portfolio engine"):
            EngineSpec(method="erica")

    def test_duplicate_labels_rejected(self, problem):
        with pytest.raises(RefinementError, match="unique"):
            scripted_solver(
                problem,
                {},
                [EngineSpec(method="naive"), EngineSpec(method="naive")],
                deadline=1.0,
            )

    def test_missing_or_non_positive_deadline_rejected(self, problem):
        bundle = problem["bundle"]
        for bad in (None, 0.0, -1.0):
            with pytest.raises(RefinementError, match="deadline"):
                PortfolioSolver(
                    bundle.database, bundle.query, problem["constraints"], deadline=bad
                )

    def test_negative_stagger_rejected(self):
        with pytest.raises(RefinementError, match="non-negative"):
            StaggeredPolicy(-0.1)


# -- determinism -----------------------------------------------------------------------


def test_identical_scripts_produce_identical_races(problem):
    """Three runs of the same scripted race are indistinguishable."""
    worse_d, worse_r, worse_dev = problem["worse"]
    best_d, best_r, best_dev = problem["best"]

    def run():
        scripts = {
            "a": [(1.0, streams_incumbent("a", worse_d, worse_dev, worse_r))],
            "b": [(2.0, proves_optimal("b", "milp+opt", best_d, best_dev, best_r))],
        }
        engines = [
            EngineSpec(method="naive", label="a"),
            EngineSpec(method="milp+opt", label="b"),
        ]
        solver, _, _ = scripted_solver(problem, scripts, engines, deadline=10.0)
        result = solver.solve()
        return (
            result.winner,
            result.status,
            result.distance_value,
            result.elapsed,
            tuple(result.bounds_timeline),
            tuple(sorted(result.engine_statuses.items())),
        )

    first = run()
    assert run() == first
    assert run() == first
